//! Design-space exploration beyond the paper: custom speculation maps.
//!
//! The paper evaluates three speculation placements (none, hybrid, almost
//! full) on an 8x8 MoT and sketches the wider design space for 16x16
//! (Fig 3(d)). This example walks *every* legal per-level speculation map
//! for an 8x8 network — the leaf level must stay non-speculative — and
//! reports latency, header address bits, and leakage for each, showing the
//! power/performance/coding trade-off surface the paper describes.
//!
//! Run with: `cargo run --release --example design_space`

use asynoc::{
    Architecture, Benchmark, Duration, MotSize, Network, NetworkConfig, Phases, RunConfig,
    SimError, SpeculationMap,
};

fn main() -> Result<(), SimError> {
    let size = MotSize::new(8)?;
    println!("All legal 8x8 speculation maps (levels: root,mid,leaf — leaf is always non-spec)");
    println!();
    println!(
        "{:<18} {:>10} {:>14} {:>14} {:>14}",
        "map (S=spec)", "addr bits", "mean latency", "throttled", "leakage (mW)"
    );
    println!("{}", "-".repeat(74));

    // Enumerate root/mid speculation choices; architecture uses optimized
    // nodes, like the paper's design-space case study.
    for mask in 0u32..4 {
        let flags = vec![mask & 1 != 0, mask & 2 != 0, false];
        let map = SpeculationMap::custom(size, flags.clone())
            .expect("leaf level is non-speculative by construction");
        let label: String = flags
            .iter()
            .map(|&speculative| if speculative { 'S' } else { 'n' })
            .collect();

        // Any legal speculation map — canonical or not — is simulated
        // directly via a custom node plan with optimized nodes (the
        // paper's design-space case study uses optimized networks).
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
                .with_speculation_map(&map, true)
                .with_seed(5),
        )?;
        let run = RunConfig::new(Benchmark::Multicast10, 0.35)?
            .with_phases(Phases::new(Duration::from_ns(200), Duration::from_ns(2000)));
        let report = network.run(&run)?;
        println!(
            "{:<18} {:>10} {:>14} {:>14} {:>14.2}",
            label,
            map.address_bits(),
            report.latency.mean().expect("packets measured").to_string(),
            report.flits_throttled,
            network.leakage_mw(),
        );
    }

    println!();
    println!(
        "note: the mid-level-only map (nSn) is legal but not one of the paper's \
         canonical architectures; its address header shrinks to 10 bits (two \
         speculative mid-level nodes), and its redundant copies are throttled \
         one level later than the hybrid's (Snn)."
    );
    println!();
    println!("16x16 projection (address bits per header):");
    let size16 = MotSize::new(16)?;
    for (name, map) in [
        ("non-speculative", SpeculationMap::non_speculative(size16)),
        ("hybrid (Fig 3d)", SpeculationMap::hybrid(size16)),
        ("almost fully spec", SpeculationMap::all_speculative(size16)),
    ] {
        println!(
            "  {:<18} {:>2} bits ({} speculative nodes per tree)",
            name,
            map.address_bits(),
            map.speculative_nodes()
        );
    }
    Ok(())
}
