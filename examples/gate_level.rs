//! Gate-level view of the paper's node control circuits.
//!
//! Builds the two-phase MOUSETRAP pipeline (the style behind the paper's
//! bundled-data switches) and the §4(a) speculative broadcast fork from
//! primitive gates, measures forward latency and cycle time, demonstrates
//! the C-element stall, and writes a VCD waveform you can open in GTKWave.
//!
//! Run with: `cargo run --release --example gate_level`

use asynoc_gates::mousetrap::{baseline_ack_xor, Pipeline, SpeculativeFork, StageDelays};
use asynoc_gates::{vcd, GateSim};
use asynoc_kernel::{Duration, Time};

fn main() -> std::io::Result<()> {
    let delays = StageDelays::default();

    // ------------------------------------------------------------------
    // A self-timed 3-stage MOUSETRAP pipeline.
    // ------------------------------------------------------------------
    let pipeline = Pipeline::self_timed(3, delays, Duration::from_ps(60), Duration::from_ps(60));
    let mut sim = GateSim::new(pipeline.netlist());
    sim.run_until(Time::from_ns(50));
    let tokens = sim.transitions_of(pipeline.last_req()).len();
    let period = sim
        .last_period_of(pipeline.last_req())
        .expect("pipeline free-runs");
    println!(
        "MOUSETRAP pipeline (3 stages, {}-ps latches):",
        delays.latch.as_ps()
    );
    println!("  forward latency : {}", pipeline.forward_latency());
    println!("  cycle time      : {period}");
    println!("  tokens in 50 ns : {tokens}");
    println!(
        "  (the paper's 'sub-cycle' claim: a flit traverses a transparent stage in one \
         latch delay, without waiting for a clock edge)"
    );
    println!();

    // ------------------------------------------------------------------
    // The speculative broadcast fork with its C-element acknowledge.
    // ------------------------------------------------------------------
    let fork = SpeculativeFork::new(delays);
    let mut sim = GateSim::new(fork.netlist());
    sim.settle();
    sim.toggle_at(Time::from_ps(100), fork.req_in());
    sim.run_until_quiet();
    let broadcast_at = sim.transitions_of(fork.branch_req(0))[0];
    let acked_at = sim.transitions_of(fork.ack_out())[0];
    println!("Speculative fork (paper section 4(a)):");
    println!(
        "  request at 100 ps -> broadcast on both branches at {} -> upstream ack at {}",
        broadcast_at, acked_at
    );

    // Stall one branch and watch the C-element withhold the second ack.
    sim.toggle_at(Time::from_ps(300), fork.branch_ack(0));
    sim.toggle_at(Time::from_ps(400), fork.req_in());
    sim.run_until_quiet();
    let acks = sim.transitions_of(fork.ack_out()).len();
    println!(
        "  second request with branch 1 stalled: {} upstream ack(s) — the C-element \
         couples both branches (speculation's congestion cost)",
        acks
    );
    sim.toggle_at(Time::from_ps(900), fork.branch_ack(1));
    sim.run_until_quiet();
    println!(
        "  after branch 1 finally acks: {} upstream acks",
        sim.transitions_of(fork.ack_out()).len()
    );
    println!();

    // Write the fork waveform as VCD.
    let dump = vcd::render(fork.netlist(), &sim, "speculative_fork");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/speculative_fork.vcd", &dump)?;
    println!(
        "VCD waveform written to results/speculative_fork.vcd ({} bytes)",
        dump.len()
    );
    println!();

    // ------------------------------------------------------------------
    // The baseline's XOR acknowledge merge.
    // ------------------------------------------------------------------
    let (netlist, req0, req1, ack) = baseline_ack_xor(Duration::from_ps(12));
    let mut sim = GateSim::new(&netlist);
    sim.settle();
    sim.toggle_at(Time::from_ps(100), req0);
    sim.toggle_at(Time::from_ps(300), req1);
    sim.run_until_quiet();
    let ack_times: Vec<String> = sim
        .transitions_of(ack)
        .iter()
        .map(ToString::to_string)
        .collect();
    println!(
        "Baseline XOR acknowledge (paper section 2): output transactions on either \
         port produce upstream acks at {}",
        ack_times.join(", ")
    );
    Ok(())
}
