//! Latency-vs-load sweep: the classic NoC "hockey stick" curves behind the
//! paper's Table 1 saturation numbers.
//!
//! Sweeps offered load from light to past saturation for three networks
//! under uniform-random traffic and prints mean latency at each point —
//! the curve whose divergence defines saturation.
//!
//! Run with: `cargo run --release --example saturation_sweep`

use asynoc::{
    Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig, SimError,
};

fn main() -> Result<(), SimError> {
    let architectures = [
        Architecture::Baseline,
        Architecture::OptNonSpeculative,
        Architecture::OptAllSpeculative,
    ];
    let loads: Vec<f64> = (1..=14).map(|i| i as f64 * 0.1).collect();

    println!("Mean latency (ns) vs offered load (GF/s per source), Uniform-random");
    println!();
    print!("{:<8}", "load");
    for architecture in architectures {
        print!(" {:>22}", architecture.to_string());
    }
    println!();
    println!("{}", "-".repeat(8 + architectures.len() * 23));

    for &load in &loads {
        print!("{load:<8.1}");
        for architecture in architectures {
            let network = Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(11))?;
            let run = RunConfig::new(Benchmark::UniformRandom, load)?
                .with_phases(Phases::new(Duration::from_ns(200), Duration::from_ns(1500)));
            let report = network.run(&run)?;
            match report.latency.mean() {
                Some(mean) if report.packets_incomplete == 0 => {
                    print!(" {:>22.2}", mean.as_ns_f64());
                }
                Some(mean) => {
                    // Past saturation some measured packets never finished
                    // draining; the mean over finished ones underestimates.
                    print!(" {:>21.2}*", mean.as_ns_f64());
                }
                None => print!(" {:>22}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("* = saturated (some measured packets never completed within the drain cap)");
    Ok(())
}
