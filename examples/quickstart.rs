//! Quickstart: build the paper's headline network, run one multicast
//! benchmark, and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig, SimError};

fn main() -> Result<(), SimError> {
    // The paper's headline configuration: an 8x8 variant Mesh-of-Trees with
    // local speculation in a hybrid fanout network (speculative root level,
    // non-speculative levels below) and the header/tail protocol
    // optimizations of §4(c)/(d).
    let config = NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(7);
    let network = Network::new(config)?;

    println!(
        "network: 8x8 MoT, {} ({} bits of source-routing address per header)",
        network.config().architecture(),
        network
            .config()
            .architecture()
            .address_bits(network.config().size()),
    );
    println!(
        "area: {:.0} um^2 of nodes, leaking {:.2} mW",
        network.area_um2(),
        network.leakage_mw()
    );
    println!();

    // Multicast10: every source injects 10% multicast to random destination
    // subsets, uniform-random unicast otherwise, at 0.4 flits/ns per source.
    let run = RunConfig::new(Benchmark::Multicast10, 0.4)?;
    let report = network.run(&run)?;

    println!("benchmark: {} at 0.4 GF/s per source", run.benchmark());
    println!(
        "packets measured: {} (mean latency {}, p99 {})",
        report.packets_measured,
        report.latency.mean().expect("packets were measured"),
        {
            let mut latency = report.latency.clone();
            latency.p99().expect("packets were measured")
        },
    );
    println!("throughput: {}", report.throughput);
    println!("power: {}", report.power);
    println!(
        "speculation footprint: {} redundant flit copies throttled at non-speculative nodes",
        report.flits_throttled
    );
    Ok(())
}
