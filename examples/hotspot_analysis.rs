//! Bottleneck analysis with per-node activity counters: where does the
//! traffic — and the speculation waste — actually go?
//!
//! Runs Hotspot and Multicast10 on the hybrid network and prints fanin-tree
//! loads, fanout-level throttle counts, and the busiest nodes, showing how
//! `RunReport::activity` supports the kind of bottleneck hunting a NoC
//! architect does daily.
//!
//! Run with: `cargo run --release --example hotspot_analysis`

use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig, SimError};

fn analyze(network: &Network, benchmark: Benchmark, rate: f64) -> Result<(), SimError> {
    let report = network.run(&RunConfig::new(benchmark, rate)?)?;
    println!("{benchmark} at {rate} GF/s per source:");
    println!(
        "  accepted {:.0}% of offered load, mean latency {}",
        100.0 * report.acceptance(),
        report.latency.mean().expect("packets measured"),
    );

    let per_tree = report.activity.fanin_tree_fires();
    let total: u64 = per_tree.iter().sum();
    print!("  fanin load by destination tree:");
    for (dest, fires) in per_tree.iter().enumerate() {
        print!(
            " D{dest}:{:.0}%",
            100.0 * *fires as f64 / total.max(1) as f64
        );
    }
    println!();

    let throttles = report.activity.fanout_level_throttles();
    println!(
        "  speculation waste by fanout level: {:?} (total {} throttled flits)",
        throttles, report.flits_throttled
    );

    if let Some((node, utilization)) = report.activity.busiest_fanin() {
        println!(
            "  busiest fanin node: {node} at {:.0}% utilization",
            100.0 * utilization
        );
    }
    if let Some((node, utilization)) = report.activity.busiest_fanout() {
        println!(
            "  busiest fanout node: {node} at {:.0}% utilization",
            100.0 * utilization
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), SimError> {
    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(3),
    )?;
    println!("Per-node activity analysis, 8x8 OptHybridSpeculative\n");

    // Uniform multicast load: every fanin tree shares the work; waste is
    // confined to the level below the speculative root.
    analyze(&network, Benchmark::Multicast10, 0.35)?;

    // Hotspot: destination 0's fanin tree takes 100% of the load and its
    // root is the bottleneck the whole network saturates on.
    analyze(&network, Benchmark::Hotspot, 0.25)?;
    Ok(())
}
