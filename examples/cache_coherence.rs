//! Cache-coherence invalidation traffic — the workload the paper's
//! introduction motivates.
//!
//! In an invalidation-based snoopy protocol over the MoT system of the
//! paper's Figure 1, a write by one processor multicasts invalidations to
//! the sharers' caches. The Token protocol the paper cites sees 52.4 % of
//! injected traffic as multicast. This example compares how the serial
//! baseline, the simple parallel-multicast network, and the hybrid
//! local-speculation network handle a synthetic invalidation storm: each
//! "writer" periodically invalidates a random sharer set while background
//! read traffic (unicast) flows.
//!
//! We approximate the storm with the paper's `Multicast_static` benchmark
//! (three multicast-only writers, five unicast readers) and report the
//! invalidation round-trip proxy: the time until *every* sharer has seen
//! the invalidation header.
//!
//! Run with: `cargo run --release --example cache_coherence`

use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig, SimError};

fn main() -> Result<(), SimError> {
    println!("Invalidation storm: 3 writers multicast invalidates, 5 readers do unicast");
    println!("(Multicast_static at 0.35 GF/s per source, 8x8 MoT)");
    println!();
    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>12}",
        "network", "mean inval", "p99 inval", "max inval", "power (mW)"
    );
    println!("{}", "-".repeat(84));

    for architecture in [
        Architecture::Baseline,
        Architecture::BasicNonSpeculative,
        Architecture::OptHybridSpeculative,
    ] {
        let network = Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(2024))?;
        let run = RunConfig::new(Benchmark::MulticastStatic, 0.35)?;
        let mut report = network.run(&run)?;
        println!(
            "{:<26} {:>14} {:>14} {:>14} {:>12.1}",
            architecture.to_string(),
            report.latency.mean().expect("packets measured").to_string(),
            report.latency.p99().expect("packets measured").to_string(),
            report.latency.max().expect("packets measured").to_string(),
            report.power.total_mw(),
        );
    }

    println!();
    println!(
        "The serial baseline must send one unicast invalidation per sharer, so its \
         completion time grows with sharer count; tree-based parallel multicast \
         replicates in-network, and local speculation removes route computation \
         from the replicating path."
    );
    Ok(())
}
