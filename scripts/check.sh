#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a commit lands.
#
#   scripts/check.sh            run the full gate
#   scripts/check.sh --fast     skip the release build (debug test cycle)
#
# The gate is a superset of ROADMAP.md's tier-1 verify
# (`cargo build --release && cargo test -q`), adding the lint and
# formatting checks this repository holds itself to.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

if [[ "$fast" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "OK: all tier-1 checks passed"
