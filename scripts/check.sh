#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a commit lands.
#
#   scripts/check.sh            run the full gate
#   scripts/check.sh --fast     skip the release build, benches, the
#                               analyze round-trips, and schema diffs
#                               (debug test cycle)
#   scripts/check.sh --smoke    run only the guarded benches, recording
#                               results/BENCH_observer_overhead.json,
#                               results/BENCH_analyze.json,
#                               results/BENCH_faults.json,
#                               results/BENCH_scheduler.json,
#                               results/BENCH_sharded.json,
#                               results/BENCH_vcmesh.json, and
#                               results/BENCH_explore.json (seeded on
#                               first run; >20% ns/event regression
#                               fails with a per-case diff), then folds
#                               them into results/BENCH_summary.json
#
# The gate is a superset of ROADMAP.md's tier-1 verify
# (`cargo build --release && cargo test -q`), adding the lint and
# formatting checks this repository holds itself to, smoke runs of the
# guarded benches (the zero-observer fast path, the analysis pipeline,
# the disarmed fault hooks, the calendar-vs-heap scheduler hold
# model, the serial halves of the sharded-engine bench, and the
# credit-based VC mesh router must keep their per-event cost), a
# sharded-vs-serial differential gate (the same CLI run at
# --shards 1/2/4 must print byte-identical reports; the VC mesh's
# metrics document must match after dropping only the counters'
# shard-layout fields), a metrics -> trace -> analyze round-trip on
# every substrate, a fault oracle round-trip on every substrate (a
# violated oracle exits non-zero), a profiled sharded round-trip (the
# `--profile` document must carry the pinned asynoc-profile-v1 tag and
# must not move a byte of stdout), and diffs of the `asynoc metrics` /
# `asynoc analyze` / `asynoc faults` JSON report schemas plus the
# asynoc-profile-v1 schema skeleton against the checked-in goldens so
# report-format changes are always deliberate (the metrics golden pins
# the mot, mesh, and vcmesh document shapes side by side). The
# exploration autotuner gets three gates: an `asynoc explore --smoke`
# run on the default 8x8 whose built-in regression guard asserts
# OptHybridSpeculative lands on (or within tolerance of) the Pareto
# front, a --jobs 1 vs --jobs 2 byte-identity diff of the same report,
# and a diff of the asynoc-explore-v1 schema skeleton against its
# golden. Streaming
# telemetry gets two gates of its own: folding a `--stream` NDJSON file
# back through `asynoc watch --fold` must reproduce the batch metrics
# document byte for byte on every substrate at shards 1 and 2, and the
# memcheck binary must show a streamed run's peak heap staying put when
# the run gets 8x longer.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
smoke=0
case "${1:-}" in
--fast) fast=1 ;;
--smoke) smoke=1 ;;
esac

# Bench binaries run with the package directory as CWD, so hand them
# absolute record paths.
run_benches() {
    echo "==> observer-overhead bench (smoke, baseline-guarded)"
    cargo bench -q -p asynoc-bench --bench observer_overhead -- --smoke \
        --json "$PWD/results/BENCH_observer_overhead.json"
    echo "==> analyze bench (smoke, baseline-guarded)"
    cargo bench -q -p asynoc-bench --bench analyze -- --smoke \
        --json "$PWD/results/BENCH_analyze.json"
    echo "==> faults bench (smoke, baseline-guarded: disarmed hooks stay free)"
    cargo bench -q -p asynoc-bench --bench faults -- --smoke \
        --json "$PWD/results/BENCH_faults.json"
    echo "==> scheduler bench (smoke, baseline-guarded: calendar >= 1.3x heap at depth 4096)"
    cargo bench -q -p asynoc-bench --bench scheduler -- --smoke \
        --json "$PWD/results/BENCH_scheduler.json"
    echo "==> sharded bench (smoke, baseline-guarded; speedup gate arms at >= 4 threads)"
    cargo bench -q -p asynoc-bench --bench sharded -- --smoke \
        --json "$PWD/results/BENCH_sharded.json"
    echo "==> vcmesh bench (smoke, baseline-guarded: credit-loop per-event cost)"
    cargo bench -q -p asynoc-bench --bench vcmesh -- --smoke \
        --json "$PWD/results/BENCH_vcmesh.json"
    echo "==> explore bench (smoke, baseline-guarded: scoring layer stays thin)"
    cargo bench -q -p asynoc-bench --bench explore -- --smoke \
        --json "$PWD/results/BENCH_explore.json"
    echo "==> folding bench records into results/BENCH_summary.json"
    scripts/bench_summary
}

if [[ "$smoke" -eq 1 ]]; then
    run_benches
    echo "OK: bench smoke passed"
    exit 0
fi

# Lints first: they fail in seconds, tests take minutes.
echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Rustdoc is part of the contract: asynoc-kernel and asynoc-engine carry
# #![deny(missing_docs)], and no crate may ship broken intra-doc links.
echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

if [[ "$fast" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

if [[ "$fast" -eq 0 ]]; then
    run_benches

    echo "==> metrics -> trace -> analyze round-trip (mot)"
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    cargo run -q --release -p asynoc-cli -- metrics --arch BasicHybridSpeculative \
        --benchmark Multicast10 --rate 0.3 --warmup-ns 40 --measure-ns 400 \
        --trace-limit 200000 --metrics-out "$tmpdir/mot-metrics.json" \
        --trace-out "$tmpdir/mot-trace.ndjson"
    cargo run -q --release -p asynoc-cli -- analyze --trace-in "$tmpdir/mot-trace.ndjson" \
        --report-out "$tmpdir/mot-analysis.json" --top 5

    echo "==> metrics -> trace -> analyze round-trip (mesh)"
    cargo run -q --release -p asynoc-cli -- metrics --substrate mesh --benchmark Uniform-random \
        --rate 0.1 --size 4 --warmup-ns 40 --measure-ns 400 \
        --trace-limit 200000 --metrics-out "$tmpdir/mesh-metrics.json" \
        --trace-out "$tmpdir/mesh-trace.ndjson"
    cargo run -q --release -p asynoc-cli -- analyze --trace-in "$tmpdir/mesh-trace.ndjson" \
        --report-out "$tmpdir/mesh-analysis.json" --top 5

    echo "==> metrics -> trace -> analyze round-trip (vcmesh)"
    cargo run -q --release -p asynoc-cli -- metrics --substrate vcmesh --mcast dpm \
        --benchmark Multicast5 --rate 0.1 --size 4 --warmup-ns 40 --measure-ns 400 \
        --trace-limit 200000 --metrics-out "$tmpdir/vcmesh-metrics.json" \
        --trace-out "$tmpdir/vcmesh-trace.ndjson"
    cargo run -q --release -p asynoc-cli -- analyze --trace-in "$tmpdir/vcmesh-trace.ndjson" \
        --report-out "$tmpdir/vcmesh-analysis.json" --top 5

    echo "==> metrics report schema vs results/metrics_schema.golden.json"
    diff results/metrics_schema.golden.json \
        <(cargo run -q --release -p asynoc-bench --bin metrics_schema) \
        || {
            echo "metrics schema drifted; if intentional, regenerate with"
            echo "  cargo run --release -p asynoc-bench --bin metrics_schema > results/metrics_schema.golden.json"
            exit 1
        }

    echo "==> analysis report schema vs results/analysis_schema.golden.json"
    diff results/analysis_schema.golden.json \
        <(cargo run -q --release -p asynoc-bench --bin analysis_schema) \
        || {
            echo "analysis schema drifted; if intentional, regenerate with"
            echo "  cargo run --release -p asynoc-bench --bin analysis_schema > results/analysis_schema.golden.json"
            exit 1
        }

    echo "==> sharded vs serial differential (mot, 64x64): --shards 1/2/4 must agree byte-for-byte"
    cargo run -q --release -p asynoc-cli -- run --arch OptHybridSpeculative \
        --benchmark Multicast5 --rate 0.2 --size 64 --shards 1 >"$tmpdir/mot-serial.txt"
    for s in 2 4; do
        cargo run -q --release -p asynoc-cli -- run --arch OptHybridSpeculative \
            --benchmark Multicast5 --rate 0.2 --size 64 --shards "$s" >"$tmpdir/mot-sharded.txt"
        diff "$tmpdir/mot-serial.txt" "$tmpdir/mot-sharded.txt" || {
            echo "64x64 MoT report diverged at --shards $s"
            exit 1
        }
    done

    echo "==> sharded vs serial differential (mesh, 8x8): --shards 1/2/4 must agree byte-for-byte"
    cargo run -q --release -p asynoc-cli -- mesh --benchmark Uniform-random \
        --rate 0.1 --cols 8 --rows 8 --shards 1 >"$tmpdir/mesh-serial.txt"
    for s in 2 4; do
        cargo run -q --release -p asynoc-cli -- mesh --benchmark Uniform-random \
            --rate 0.1 --cols 8 --rows 8 --shards "$s" >"$tmpdir/mesh-sharded.txt"
        diff "$tmpdir/mesh-serial.txt" "$tmpdir/mesh-sharded.txt" || {
            echo "8x8 mesh report diverged at --shards $s"
            exit 1
        }
    done

    echo "==> sharded vs serial differential (vcmesh, 4x4): metrics at --shards 1/2/4 must agree"
    # The metrics document's counters section records the shard layout
    # itself (shards, shard_events), so the comparison drops exactly
    # those fields; every other byte must match.
    strip_shard_layout() {
        sed -e '/"shard_events": \[/,/\]/d' -e '/"shards":/d' "$1"
    }
    cargo run -q --release -p asynoc-cli -- metrics --substrate vcmesh --mcast dpm \
        --benchmark Multicast5 --rate 0.1 --size 4 --warmup-ns 40 --measure-ns 400 \
        --shards 1 --metrics-out "$tmpdir/vcmesh-serial.json" >/dev/null
    for s in 2 4; do
        cargo run -q --release -p asynoc-cli -- metrics --substrate vcmesh --mcast dpm \
            --benchmark Multicast5 --rate 0.1 --size 4 --warmup-ns 40 --measure-ns 400 \
            --shards "$s" --metrics-out "$tmpdir/vcmesh-sharded.json" >/dev/null
        diff <(strip_shard_layout "$tmpdir/vcmesh-serial.json") \
            <(strip_shard_layout "$tmpdir/vcmesh-sharded.json") || {
            echo "4x4 VC mesh metrics diverged at --shards $s"
            exit 1
        }
    done

    echo "==> profiled sharded round-trip (mot): --profile writes the document, stdout unmoved"
    cargo run -q --release -p asynoc-cli -- run --arch OptHybridSpeculative \
        --benchmark Multicast5 --rate 0.2 --size 64 --shards 2 \
        --profile "$tmpdir/mot-profile.json" >"$tmpdir/mot-profiled.txt"
    diff "$tmpdir/mot-serial.txt" "$tmpdir/mot-profiled.txt" || {
        echo "--profile changed the 64x64 MoT report"
        exit 1
    }
    grep -q '"schema": "asynoc-profile-v1"' "$tmpdir/mot-profile.json" || {
        echo "MoT profile document is missing the asynoc-profile-v1 tag"
        exit 1
    }

    echo "==> profiled sharded round-trip (mesh): --profile writes the document, stdout unmoved"
    cargo run -q --release -p asynoc-cli -- mesh --benchmark Uniform-random \
        --rate 0.1 --cols 8 --rows 8 --shards 2 \
        --profile "$tmpdir/mesh-profile.json" >"$tmpdir/mesh-profiled.txt"
    diff "$tmpdir/mesh-serial.txt" "$tmpdir/mesh-profiled.txt" || {
        echo "--profile changed the 8x8 mesh report"
        exit 1
    }
    grep -q '"schema": "asynoc-profile-v1"' "$tmpdir/mesh-profile.json" || {
        echo "mesh profile document is missing the asynoc-profile-v1 tag"
        exit 1
    }

    echo "==> profile schema vs results/profile_schema.golden.json"
    diff results/profile_schema.golden.json \
        <(cargo run -q --release -p asynoc-bench --bin profile_schema) \
        || {
            echo "profile schema drifted; if intentional, regenerate with"
            echo "  cargo run --release -p asynoc-bench --bin profile_schema > results/profile_schema.golden.json"
            exit 1
        }

    echo "==> fault oracle round-trip (mot): clean vs faulted under one seed"
    cargo run -q --release -p asynoc-cli -- faults --arch BasicHybridSpeculative \
        --benchmark Multicast5 --rate 0.2 --warmup-ns 20 --measure-ns 150 \
        --oracle --report-out "$tmpdir/mot-faults.json"

    echo "==> fault oracle round-trip (mesh): clean vs faulted under one seed"
    cargo run -q --release -p asynoc-cli -- faults --substrate mesh \
        --benchmark Uniform-random --rate 0.1 --size 4 --warmup-ns 20 --measure-ns 150 \
        --oracle --report-out "$tmpdir/mesh-faults.json"

    echo "==> fault oracle round-trip (vcmesh): clean vs faulted under one seed"
    cargo run -q --release -p asynoc-cli -- faults --substrate vcmesh --mcast dpm \
        --benchmark Multicast5 --rate 0.1 --size 4 --warmup-ns 20 --measure-ns 150 \
        --oracle --report-out "$tmpdir/vcmesh-faults.json"

    echo "==> faults report schema vs results/faults_schema.golden.json"
    diff results/faults_schema.golden.json \
        <(cargo run -q --release -p asynoc-bench --bin faults_schema) \
        || {
            echo "faults schema drifted; if intentional, regenerate with"
            echo "  cargo run --release -p asynoc-bench --bin faults_schema > results/faults_schema.golden.json"
            exit 1
        }

    echo "==> explore smoke + regression guard (8x8): OptHybridSpeculative must sit on the front"
    # The command's built-in guard exits non-zero if the preset drifts
    # off the tolerance envelope of the Pareto front.
    cargo run -q --release -p asynoc-cli -- explore --smoke --jobs 1 \
        >"$tmpdir/explore-j1.json"
    grep -q '"schema": "asynoc-explore-v1"' "$tmpdir/explore-j1.json" || {
        echo "exploration report is missing the asynoc-explore-v1 tag"
        exit 1
    }

    echo "==> explore jobs differential: --jobs 1 vs --jobs 2 must agree byte-for-byte"
    cargo run -q --release -p asynoc-cli -- explore --smoke --jobs 2 \
        >"$tmpdir/explore-j2.json"
    diff "$tmpdir/explore-j1.json" "$tmpdir/explore-j2.json" || {
        echo "8x8 exploration report diverged between --jobs 1 and 2"
        exit 1
    }

    echo "==> explore report schema vs results/explore_schema.golden.json"
    diff results/explore_schema.golden.json \
        <(cargo run -q --release -p asynoc-bench --bin explore_schema) \
        || {
            echo "explore schema drifted; if intentional, regenerate with"
            echo "  cargo run --release -p asynoc-bench --bin explore_schema > results/explore_schema.golden.json"
            exit 1
        }

    echo "==> stream fold-back gate: folded stream == batch metrics, byte for byte (all substrates, shards 1/2)"
    for sub in mot mesh vcmesh; do
        if [[ "$sub" == mot ]]; then
            sub_args=(--arch BasicHybridSpeculative --benchmark Multicast10 --rate 0.3)
        elif [[ "$sub" == mesh ]]; then
            sub_args=(--substrate mesh --benchmark Uniform-random --rate 0.1 --size 4)
        else
            sub_args=(--substrate vcmesh --mcast dpm --benchmark Multicast5 --rate 0.1 --size 4)
        fi
        for s in 1 2; do
            cargo run -q --release -p asynoc-cli -- metrics "${sub_args[@]}" \
                --warmup-ns 40 --measure-ns 400 --shards "$s" \
                --metrics-out "$tmpdir/$sub-s$s-batch.json" \
                --stream "$tmpdir/$sub-s$s-stream.ndjson" >/dev/null
            cargo run -q --release -p asynoc-cli -- watch \
                --stream-in "$tmpdir/$sub-s$s-stream.ndjson" --once \
                --fold "$tmpdir/$sub-s$s-folded.json" >/dev/null
            diff "$tmpdir/$sub-s$s-batch.json" "$tmpdir/$sub-s$s-folded.json" || {
                echo "folded $sub stream diverged from the batch document at --shards $s"
                exit 1
            }
        done
        # Everything before the end record (whose counters section names
        # the shard split) must be byte-identical across shard counts.
        diff <(sed '$d' "$tmpdir/$sub-s1-stream.ndjson") \
            <(sed '$d' "$tmpdir/$sub-s2-stream.ndjson") || {
            echo "$sub stream records diverged between --shards 1 and 2"
            exit 1
        }
    done

    echo "==> bounded-memory gate: streamed peak heap independent of run length"
    cargo run -q --release -p asynoc-bench --bin memcheck
fi

echo "OK: all tier-1 checks passed"
