#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a commit lands.
#
#   scripts/check.sh            run the full gate
#   scripts/check.sh --fast     skip the release build, overhead bench,
#                               and schema diff (debug test cycle)
#
# The gate is a superset of ROADMAP.md's tier-1 verify
# (`cargo build --release && cargo test -q`), adding the lint and
# formatting checks this repository holds itself to, a smoke run of the
# observer-overhead bench (the zero-observer fast path must keep working),
# and a diff of the `asynoc metrics` JSON report schema against the
# checked-in golden so report-format changes are always deliberate.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

# Lints first: they fail in seconds, tests take minutes.
echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "$fast" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

if [[ "$fast" -eq 0 ]]; then
    echo "==> observer-overhead bench (smoke)"
    cargo bench -q -p asynoc-bench --bench observer_overhead -- --smoke

    echo "==> metrics report schema vs results/metrics_schema.golden.json"
    diff results/metrics_schema.golden.json \
        <(cargo run -q --release -p asynoc-bench --bin metrics_schema) \
        || {
            echo "metrics schema drifted; if intentional, regenerate with"
            echo "  cargo run --release -p asynoc-bench --bin metrics_schema > results/metrics_schema.golden.json"
            exit 1
        }
fi

echo "OK: all tier-1 checks passed"
