//! `asynoc-repro` — reproduction harness for the `asynoc` workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories; the library surface simply re-exports the member crates so
//! examples and integration tests can write `asynoc_repro::...` or import
//! the members directly.
//!
//! Start with the [`asynoc`] core crate; the runnable entry points are:
//!
//! - `cargo run --release --example quickstart`
//! - `cargo run --release --example cache_coherence`
//! - `cargo run --release --example design_space`
//! - `cargo run --release --example saturation_sweep`
//! - `cargo run --release --example hotspot_analysis`
//! - `cargo run --release --example gate_level`
//! - the table/figure regeneration binaries in `asynoc-bench`
//! - the `asynoc` CLI (`cargo run --release -p asynoc-cli -- help`).

pub use asynoc;
pub use asynoc_gates;
pub use asynoc_kernel;
pub use asynoc_mesh;
pub use asynoc_nodes;
pub use asynoc_packet;
pub use asynoc_power;
pub use asynoc_stats;
pub use asynoc_telemetry;
pub use asynoc_topology;
pub use asynoc_traffic;
