//! Whole-stack determinism: identical seeds reproduce identical runs,
//! different seeds and benchmarks genuinely differ.

use asynoc::{Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig};

fn run_once(seed: u64, benchmark: Benchmark, rate: f64) -> (Option<Duration>, u64, u64, f64) {
    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(seed),
    )
    .expect("valid config");
    let run = RunConfig::new(benchmark, rate)
        .expect("positive rate")
        .with_phases(Phases::new(Duration::from_ns(100), Duration::from_ns(800)));
    let report = network.run(&run).expect("run succeeds");
    (
        report.latency.mean(),
        report.flits_delivered,
        report.flits_throttled,
        report.power.total_mw(),
    )
}

#[test]
fn same_seed_is_bit_identical() {
    for benchmark in [Benchmark::UniformRandom, Benchmark::Multicast10] {
        let a = run_once(7, benchmark, 0.35);
        let b = run_once(7, benchmark, 0.35);
        assert_eq!(a.0, b.0, "{benchmark}: latency differs");
        assert_eq!(a.1, b.1, "{benchmark}: delivered differs");
        assert_eq!(a.2, b.2, "{benchmark}: throttled differs");
        assert_eq!(a.3, b.3, "{benchmark}: power differs");
    }
}

/// Everything a `RunReport` measures, except the wall-clock diagnostic
/// (which legitimately varies between executions).
fn fingerprint(seed: u64, benchmark: Benchmark, rate: f64) -> impl PartialEq + std::fmt::Debug {
    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(seed),
    )
    .expect("valid config");
    let run = RunConfig::new(benchmark, rate)
        .expect("positive rate")
        .with_phases(Phases::new(Duration::from_ns(100), Duration::from_ns(800)));
    let report = network.run(&run).expect("run succeeds");
    (
        report.latency.mean(),
        report.latency.min(),
        report.latency.max(),
        report.latency.count(),
        report.throughput,
        report.packets_measured,
        report.packets_incomplete,
        report.flits_delivered,
        report.flits_throttled,
        report.power.total_mw().to_bits(),
        report.events_processed,
    )
}

/// The multi-core runner regression test: fanning runs across worker
/// threads must reproduce the serial results bit for bit (excluding wall).
#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let runs: Vec<(u64, Benchmark, f64)> = vec![
        (1, Benchmark::UniformRandom, 0.3),
        (2, Benchmark::Multicast10, 0.25),
        (3, Benchmark::Hotspot, 0.2),
        (4, Benchmark::Shuffle, 0.4),
        (5, Benchmark::Multicast5, 0.35),
        (6, Benchmark::MulticastStatic, 0.2),
    ];
    let job = |(seed, benchmark, rate): (u64, Benchmark, f64)| fingerprint(seed, benchmark, rate);
    let serial = asynoc::parallel_map(1, runs.clone(), job);
    let parallel = asynoc::parallel_map(4, runs, job);
    assert_eq!(
        serial, parallel,
        "worker threads changed simulation results"
    );
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1, Benchmark::UniformRandom, 0.35);
    let b = run_once(2, Benchmark::UniformRandom, 0.35);
    assert_ne!(
        (a.0, a.1),
        (b.0, b.1),
        "different seeds gave identical runs"
    );
}

#[test]
fn different_benchmarks_differ() {
    let uniform = run_once(7, Benchmark::UniformRandom, 0.35);
    let hotspot = run_once(7, Benchmark::Hotspot, 0.35);
    assert_ne!(uniform.0, hotspot.0);
}

#[test]
fn rates_order_latency() {
    let light = run_once(7, Benchmark::UniformRandom, 0.1)
        .0
        .expect("samples");
    let heavy = run_once(7, Benchmark::UniformRandom, 0.9)
        .0
        .expect("samples");
    assert!(
        heavy > light,
        "latency must grow with load: {light} vs {heavy}"
    );
}
