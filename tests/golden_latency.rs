//! Golden-model cross-check: at (near-)zero load, the minimum observed
//! packet latency must equal the analytic path latency *exactly* —
//! `wire + Σ_levels (forward + wire)` across the fanout and fanin trees.
//!
//! This pins the simulator's arithmetic to an independently computed
//! reference: any off-by-one in event scheduling, a double-counted wire,
//! or a wrong per-kind latency shows up as a picosecond-level mismatch.

use asynoc::{
    Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig, TimingModel,
};
use asynoc_nodes::FlitClass;

/// Analytic header latency from source to any destination (all MoT paths
/// have equal length) in an uncontended network.
fn golden_header_latency(architecture: Architecture, size: asynoc::MotSize) -> Duration {
    let timing = TimingModel::calibrated();
    let levels = size.levels();
    // Hop sequence: source→L0, L0→L1, …, L(levels-1)→fanin leaf,
    // fanin internal hops, fanin root→sink. Total wires = 2·levels + 1.
    let mut total = timing.wire_delay * (2 * u64::from(levels) + 1);
    for level in 0..levels {
        let kind = architecture.fanout_kind(size, level);
        total += timing.fanout(kind).forward(FlitClass::Header);
    }
    total += timing.fanin.forward(FlitClass::Header) * u64::from(levels);
    total
}

fn min_latency(architecture: Architecture, benchmark: Benchmark) -> Duration {
    let network = Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(17))
        .expect("valid config");
    // Very light load: virtually every packet sees an empty network.
    let run = RunConfig::new(benchmark, 0.02)
        .expect("positive rate")
        .with_phases(Phases::new(Duration::from_ns(50), Duration::from_ns(4000)));
    let report = network.run(&run).expect("run succeeds");
    assert!(report.packets_measured > 5, "not enough samples");
    report.latency.min().expect("samples exist")
}

#[test]
fn zero_load_unicast_latency_matches_golden_model_exactly() {
    let size = asynoc::MotSize::new(8).expect("valid size");
    for architecture in Architecture::ALL {
        let golden = golden_header_latency(architecture, size);
        let observed = min_latency(architecture, Benchmark::Shuffle);
        assert_eq!(
            observed, golden,
            "{architecture}: observed minimum {observed} != analytic {golden}"
        );
    }
}

#[test]
fn zero_load_multicast_latency_matches_golden_model_exactly() {
    // Every MoT path has the same depth, so an uncontended multicast's
    // last-header arrival equals the unicast golden value for parallel
    // networks.
    let size = asynoc::MotSize::new(8).expect("valid size");
    for architecture in [
        Architecture::BasicNonSpeculative,
        Architecture::OptHybridSpeculative,
        Architecture::OptAllSpeculative,
    ] {
        let golden = golden_header_latency(architecture, size);
        let observed = min_latency(architecture, Benchmark::Multicast10);
        assert_eq!(
            observed, golden,
            "{architecture}: multicast minimum {observed} != analytic {golden}"
        );
    }
}

#[test]
fn golden_model_orders_architectures_like_the_paper() {
    // The analytic model alone already predicts the zero-load ordering:
    // speculative roots shave (299−52) ps per replaced level.
    let size = asynoc::MotSize::new(8).expect("valid size");
    let basic_nonspec = golden_header_latency(Architecture::BasicNonSpeculative, size);
    let basic_hybrid = golden_header_latency(Architecture::BasicHybridSpeculative, size);
    let baseline = golden_header_latency(Architecture::Baseline, size);
    assert!(basic_hybrid < basic_nonspec);
    assert!(baseline < basic_nonspec);
    assert_eq!(
        basic_nonspec - basic_hybrid,
        Duration::from_ps(299 - 52),
        "hybrid replaces exactly one non-speculative node on every path"
    );
}

#[test]
fn golden_model_holds_for_16x16() {
    let size = asynoc::MotSize::new(16).expect("valid size");
    let architecture = Architecture::OptHybridSpeculative;
    let golden = golden_header_latency(architecture, size);
    let network =
        Network::new(NetworkConfig::new(size, architecture).with_seed(17)).expect("valid config");
    let run = RunConfig::new(Benchmark::Shuffle, 0.02)
        .expect("positive rate")
        .with_phases(Phases::new(Duration::from_ns(50), Duration::from_ns(4000)));
    let report = network.run(&run).expect("run succeeds");
    assert_eq!(report.latency.min().expect("samples"), golden);
}
