//! Observer contract tests: registration order, measurement-window
//! gating, and the zero-observer fast path.

use std::cell::RefCell;
use std::rc::Rc;

use asynoc::{
    Architecture, Benchmark, Duration, MotNode, Network, NetworkConfig, Observer, Phases,
    RunConfig, SimEvent, Time,
};

fn network() -> Network {
    Network::new(NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(7))
        .expect("valid config")
}

fn phases() -> Phases {
    Phases::new(Duration::from_ns(60), Duration::from_ns(400))
}

fn run_config() -> RunConfig {
    RunConfig::new(Benchmark::Multicast10, 0.3)
        .expect("positive rate")
        .with_phases(phases())
}

/// Pushes its tag into a shared log on every event.
struct Tagger {
    tag: &'static str,
    log: Rc<RefCell<Vec<&'static str>>>,
}

impl Observer<MotNode> for Tagger {
    fn on_event(&mut self, _at: Time, _in_window: bool, _event: &SimEvent<'_, MotNode>) {
        self.log.borrow_mut().push(self.tag);
    }
}

#[test]
fn observers_fire_in_registration_order() {
    let net = network();
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut first = Tagger {
        tag: "first",
        log: Rc::clone(&log),
    };
    let mut second = Tagger {
        tag: "second",
        log: Rc::clone(&log),
    };
    net.run_with_observers(&run_config(), &mut [&mut first, &mut second])
        .expect("run succeeds");

    let log = log.borrow();
    assert!(!log.is_empty(), "observers saw events");
    assert_eq!(log.len() % 2, 0, "both observers see every event");
    for pair in log.chunks(2) {
        assert_eq!(pair, ["first", "second"], "registration order per event");
    }
}

/// Records each event's instant and `in_window` flag.
struct WindowProbe {
    seen: Vec<(Time, bool)>,
}

impl Observer<MotNode> for WindowProbe {
    fn on_event(&mut self, at: Time, in_window: bool, _event: &SimEvent<'_, MotNode>) {
        self.seen.push((at, in_window));
    }
}

#[test]
fn in_window_flag_matches_the_measurement_phases() {
    let net = network();
    let phases = phases();
    let mut probe = WindowProbe { seen: Vec::new() };
    net.run_with_observers(&run_config(), &mut [&mut probe])
        .expect("run succeeds");

    assert!(!probe.seen.is_empty());
    let mut warmup = 0u64;
    let mut window = 0u64;
    let mut drain = 0u64;
    for &(at, in_window) in &probe.seen {
        assert_eq!(
            in_window,
            phases.in_measurement(at),
            "in_window flag must mirror Phases::in_measurement at {at}"
        );
        if at < phases.measurement_start() {
            warmup += 1;
            assert!(!in_window);
        } else if at < phases.measurement_end() {
            window += 1;
            assert!(in_window);
        } else {
            drain += 1;
            assert!(!in_window);
        }
    }
    // All three phases of the run are visible on the event stream.
    assert!(warmup > 0, "warmup events observed");
    assert!(window > 0, "measurement-window events observed");
    assert!(drain > 0, "drain events observed");
}

#[test]
fn observers_do_not_change_the_measurement() {
    let net = network();
    let bare = net.run(&run_config()).expect("run succeeds");
    let mut probe = WindowProbe { seen: Vec::new() };
    let observed = net
        .run_with_observers(&run_config(), &mut [&mut probe])
        .expect("run succeeds");

    assert_eq!(bare.packets_measured, observed.packets_measured);
    assert_eq!(bare.flits_delivered, observed.flits_delivered);
    assert_eq!(bare.flits_throttled, observed.flits_throttled);
    assert_eq!(bare.events_processed, observed.events_processed);
    assert_eq!(bare.latency.mean(), observed.latency.mean());
}
