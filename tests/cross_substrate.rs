//! Cross-substrate consistency: the three layers of the reproduction —
//! gate-level circuits, the MoT network simulator, and the mesh comparison
//! fabric — must tell one coherent story.

use asynoc::{
    Architecture, Benchmark, Duration, MotSize, Network, NetworkConfig, Observer, Phases, RunConfig,
};
use asynoc_faults::{
    judge, mesh_network, run_mesh_outcome, run_mot_outcome, run_vcmesh_outcome, vcmesh_network,
    FaultPlan,
};
use asynoc_gates::mousetrap::{SpeculativeFork, StageDelays};
use asynoc_gates::{vcd, GateSim};
use asynoc_kernel::Time;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_telemetry::{parse_ndjson, render_ndjson, TraceCollector, TraceRecord};
use asynoc_vcmesh::{McastScheme, VcMeshConfig, VcMeshNetwork};

#[test]
fn mot_beats_mesh_at_equal_endpoint_count() {
    let phases = Phases::new(Duration::from_ns(100), Duration::from_ns(800));
    let mot = Network::new(
        NetworkConfig::new(
            MotSize::new(64).expect("valid"),
            Architecture::OptHybridSpeculative,
        )
        .with_seed(9),
    )
    .expect("valid config");
    let mesh = MeshNetwork::new(MeshConfig::new(MeshSize::new(8, 8).expect("valid")).with_seed(9))
        .expect("valid config");

    let mot_report = mot
        .run(
            &RunConfig::new(Benchmark::UniformRandom, 0.1)
                .expect("positive rate")
                .with_phases(phases),
        )
        .expect("MoT run succeeds");
    let mesh_report = mesh
        .run(Benchmark::UniformRandom, 0.1, phases)
        .expect("mesh run succeeds");

    let mot_mean = mot_report.latency.mean().expect("samples");
    let mesh_mean = mesh_report.latency.mean().expect("samples");
    assert!(
        mot_mean < mesh_mean,
        "log-depth MoT ({mot_mean}) must beat Manhattan-distance mesh ({mesh_mean})"
    );
}

#[test]
fn mesh_multicast_collapse_vs_mot() {
    // The quantitative core of the paper's motivation, across substrates:
    // serialized dense multicast on the mesh collapses while the MoT's
    // in-network replication barely notices.
    let phases = Phases::new(Duration::from_ns(100), Duration::from_ns(800));
    let mot = Network::new(
        NetworkConfig::new(
            MotSize::new(64).expect("valid"),
            Architecture::OptHybridSpeculative,
        )
        .with_seed(9),
    )
    .expect("valid config");
    let mesh = MeshNetwork::new(MeshConfig::new(MeshSize::new(8, 8).expect("valid")).with_seed(9))
        .expect("valid config");

    let mot_report = mot
        .run(
            &RunConfig::new(Benchmark::Multicast10, 0.2)
                .expect("positive rate")
                .with_phases(phases),
        )
        .expect("MoT run succeeds");
    let mesh_report = mesh
        .run(Benchmark::Multicast10, 0.2, phases)
        .expect("mesh run succeeds");

    assert!(mot_report.acceptance() > 0.98, "MoT absorbs the load");
    let ratio = mesh_report.latency.mean().expect("samples").as_ps() as f64
        / mot_report.latency.mean().expect("samples").as_ps() as f64;
    assert!(
        ratio > 5.0,
        "serialized mesh multicast should be dramatically slower (got {ratio:.1}x)"
    );
}

#[test]
fn both_substrates_emit_round_trippable_ndjson_traces() {
    // Observability must be substrate-agnostic: the same collector type,
    // parameterised only by the node type, produces NDJSON that one shared
    // parser round-trips for both the MoT and the mesh.
    let phases = Phases::new(Duration::from_ns(60), Duration::from_ns(400));
    let mot = Network::new(
        NetworkConfig::new(
            MotSize::new(64).expect("valid"),
            Architecture::OptHybridSpeculative,
        )
        .with_seed(9),
    )
    .expect("valid config");
    let mesh = MeshNetwork::new(MeshConfig::new(MeshSize::new(8, 8).expect("valid")).with_seed(9))
        .expect("valid config");

    let mut mot_trace = TraceCollector::generic(50_000);
    mot.run_with_observers(
        &RunConfig::new(Benchmark::Multicast10, 0.2)
            .expect("positive rate")
            .with_phases(phases),
        &mut [&mut mot_trace as &mut dyn Observer<_>],
    )
    .expect("MoT run succeeds");

    let mut mesh_trace: TraceCollector<usize> = TraceCollector::generic(50_000);
    mesh.run_with_observers(
        Benchmark::Multicast10,
        0.2,
        phases,
        &mut [&mut mesh_trace as &mut dyn Observer<usize>],
    )
    .expect("mesh run succeeds");

    for (substrate, records) in [
        ("mot", mot_trace.into_records()),
        ("mesh", mesh_trace.into_records()),
    ] {
        assert!(!records.is_empty(), "{substrate}: trace captured events");
        let text = render_ndjson(&records);
        let parsed = parse_ndjson(&text).unwrap_or_else(|e| panic!("{substrate}: {e:?}"));
        assert_eq!(
            parsed, records,
            "{substrate}: NDJSON round-trips losslessly"
        );
        assert_eq!(
            render_ndjson(&parsed),
            text,
            "{substrate}: re-render is stable"
        );
        assert!(
            records.windows(2).all(|w| w[0].t_ps <= w[1].t_ps),
            "{substrate}: timestamps are non-decreasing"
        );
        let has = |action: &str| records.iter().any(|r: &TraceRecord| r.action == action);
        assert!(has("inject"), "{substrate}: injections traced");
        assert!(has("forward"), "{substrate}: forwards traced");
        assert!(has("deliver"), "{substrate}: deliveries traced");
    }
}

#[test]
fn one_recoverable_fault_plan_satisfies_the_oracle_on_both_substrates() {
    // The fault model is substrate-agnostic: the *same* textual plan,
    // under the *same* traffic, must satisfy the same differential
    // contract on the MoT, on the mesh, and on the credit-based VC
    // mesh. Channel and source indices are chosen to exist in every
    // fault domain.
    let phases = Phases::new(Duration::from_ns(20), Duration::from_ns(150));
    let plan = FaultPlan::parse("stall:0:2:300;stall:1:1:200;drop:1:0:1:500").expect("valid plan");

    let mot = Network::new(
        NetworkConfig::new(
            MotSize::new(8).expect("valid"),
            Architecture::BasicHybridSpeculative,
        )
        .with_seed(7),
    )
    .expect("valid config");
    let mot_domain = mot.fault_domain();
    let run = RunConfig::new(Benchmark::UniformRandom, 0.1)
        .expect("positive rate")
        .with_phases(phases);
    let mot_clean = run_mot_outcome(&mot, &run, None).expect("clean MoT run");
    let mot_faulted = run_mot_outcome(&mot, &run, Some(&plan)).expect("faulted MoT run");

    let mesh = mesh_network(4, 7, 5, 1).expect("valid mesh");
    let mesh_domain = mesh.fault_domain();
    let mesh_clean = run_mesh_outcome(&mesh, Benchmark::UniformRandom, 0.1, phases, None)
        .expect("clean mesh run");
    let mesh_faulted = run_mesh_outcome(&mesh, Benchmark::UniformRandom, 0.1, phases, Some(&plan))
        .expect("faulted mesh run");

    let vcmesh = vcmesh_network(4, 7, 5, 1, McastScheme::XyTree).expect("valid vcmesh");
    let vcmesh_domain = vcmesh.fault_domain();
    let vcmesh_clean = run_vcmesh_outcome(&vcmesh, Benchmark::UniformRandom, 0.1, phases, None)
        .expect("clean vcmesh run");
    let vcmesh_faulted =
        run_vcmesh_outcome(&vcmesh, Benchmark::UniformRandom, 0.1, phases, Some(&plan))
            .expect("faulted vcmesh run");

    for (substrate, clean, faulted, domain) in [
        ("mot", &mot_clean, &mot_faulted, &mot_domain),
        ("mesh", &mesh_clean, &mesh_faulted, &mesh_domain),
        ("vcmesh", &vcmesh_clean, &vcmesh_faulted, &vcmesh_domain),
    ] {
        assert!(
            plan.recoverable(domain),
            "{substrate}: stalls and retried drops are recoverable everywhere"
        );
        let verdict = judge(clean, faulted, &plan, domain);
        assert!(verdict.recoverable, "{substrate}: judged as recoverable");
        assert!(
            verdict.pass(),
            "{substrate}: oracle failures {:?}",
            verdict.failures()
        );
        assert_eq!(
            clean.deliveries, faulted.deliveries,
            "{substrate}: delivery multiset untouched"
        );
    }
}

#[test]
fn dpm_never_uses_more_links_than_xy_tree() {
    // Dynamic Partition Merging exists to shed redundant tree edges:
    // for identical destination sets (same seed, same traffic stream)
    // its total measured link traversals must never exceed the
    // tree-based XY baseline's. Ten seeds, both well beyond noise.
    let phases = Phases::new(Duration::from_ns(80), Duration::from_ns(800));
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        let mut links = [0u64; 2];
        let mut measured = [0usize; 2];
        for (slot, mcast) in [McastScheme::XyTree, McastScheme::Dpm]
            .into_iter()
            .enumerate()
        {
            let net = VcMeshNetwork::new(
                VcMeshConfig::new(MeshSize::new(4, 4).expect("valid"))
                    .with_seed(seed)
                    .with_mcast(mcast),
            )
            .expect("valid config");
            let report = net
                .run(Benchmark::Multicast10, 0.1, phases)
                .expect("run succeeds");
            links[slot] = report.link_traversals;
            measured[slot] = report.packets_measured;
        }
        assert_eq!(
            measured[0], measured[1],
            "seed {seed}: schemes saw different traffic"
        );
        assert!(
            links[1] <= links[0],
            "seed {seed}: DPM used {} link traversals vs xy-tree's {}",
            links[1],
            links[0]
        );
    }
}

#[test]
fn multicast_delivery_multisets_agree_across_substrates() {
    // Scheme correctness, judged against the reference substrate: for
    // the same traffic spec, tree-based XY multicast and DPM must
    // deliver each logical packet's header to exactly the destination
    // multiset the MoT's speculative replication delivers — no copy
    // lost to a pruned branch, none duplicated by a merge.
    let phases = Phases::new(Duration::from_ns(20), Duration::from_ns(150));
    let mot = Network::new(
        NetworkConfig::new(
            MotSize::new(16).expect("valid"),
            Architecture::BasicHybridSpeculative,
        )
        .with_seed(7),
    )
    .expect("valid config");
    let run = RunConfig::new(Benchmark::Multicast5, 0.1)
        .expect("positive rate")
        .with_phases(phases);
    let reference = run_mot_outcome(&mot, &run, None).expect("MoT run");
    assert!(
        reference.deliveries.keys().any(|(_, _)| true),
        "reference run delivered nothing"
    );

    for mcast in [McastScheme::XyTree, McastScheme::Dpm] {
        let net = vcmesh_network(4, 7, 5, 1, mcast).expect("valid vcmesh");
        let outcome =
            run_vcmesh_outcome(&net, Benchmark::Multicast5, 0.1, phases, None).expect("vcmesh run");
        assert_eq!(
            outcome.deliveries, reference.deliveries,
            "{mcast}: delivery multiset diverged from the MoT reference"
        );
    }
}

#[test]
fn gate_level_fork_justifies_the_speculative_latency_gap() {
    // The network model charges a speculative node 52 ps vs 299 ps for a
    // non-speculative one. At gate level the speculative forward path is a
    // single transparent latch; the non-speculative path adds route
    // computation and channel allocation in front. One latch delay must
    // therefore bound the speculative node's forward latency from below —
    // and be several times smaller than the non-speculative figure.
    let delays = StageDelays::default();
    let fork = SpeculativeFork::new(delays);
    let mut sim = GateSim::new(fork.netlist());
    sim.settle();
    sim.toggle_at(Time::from_ps(1_000), fork.req_in());
    sim.run_until_quiet();
    let broadcast_at = sim.transitions_of(fork.branch_req(0))[0];
    let forward = broadcast_at - Time::from_ps(1_000);
    assert_eq!(
        forward, delays.latch,
        "speculative forward path = one latch"
    );
    // The paper's non-speculative node (299 ps) is ~6x the speculative one
    // (52 ps); our gate model's latch (40 ps) is consistent in magnitude.
    assert!(forward.as_ps() * 4 < 299);
}

#[test]
fn vcd_export_of_a_fork_run_is_well_formed() {
    let fork = SpeculativeFork::new(StageDelays::default());
    let mut sim = GateSim::new(fork.netlist());
    sim.settle();
    sim.toggle_at(Time::from_ps(100), fork.req_in());
    sim.run_until_quiet();
    let dump = vcd::render(fork.netlist(), &sim, "fork");
    assert!(dump.contains("$enddefinitions $end"));
    assert!(dump.contains("reqout0"));
    assert!(dump.contains("ack_out"));
    assert!(dump.contains("#100"), "the stimulus timestamp appears");
    // Every change line is 0/1 followed by an identifier.
    let body = dump.split("$end").last().expect("body exists");
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        assert!(
            line.starts_with('0') || line.starts_with('1'),
            "malformed change line {line:?}"
        );
    }
}
