//! Round-trip properties of the offline analysis pipeline: trace a live
//! run, rebuild the span forest, and check that causality, token
//! conservation, and the online ledgers all reconcile.
//!
//! The closure property is token conservation per flit tree: every copy
//! a fork created is consumed by a forward, a throttle, or a delivery.
//! The engine drains only *measured* packets, so unmeasured packets
//! still in flight at the end of the run are cut mid-tree — those trees
//! legitimately stay open (`created > consumed`), but a *broken* tree
//! (`consumed > created`, or events with no injection) is impossible in
//! a well-formed trace and must never appear.

use asynoc::{
    Architecture, Benchmark, Duration, MotNode, Network, NetworkConfig, Observer, Phases, RunConfig,
};
use asynoc_analysis::{critical_paths, Analysis, Scorecard, SpanForest};
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_telemetry::{
    LatencyHistograms, SpeculationWaste, TraceCollector, TraceMeta, TraceRecord,
};
use asynoc_topology::{FaninNodeId, FanoutNodeId};

fn phases() -> Phases {
    Phases::new(Duration::from_ns(40), Duration::from_ns(300))
}

/// One traced MoT run: the record stream, its meta line, and the online
/// observers the analysis must reconcile with.
fn mot_trace(
    arch: Architecture,
    benchmark: Benchmark,
    rate: f64,
    seed: u64,
) -> (
    TraceMeta,
    Vec<TraceRecord>,
    LatencyHistograms,
    SpeculationWaste<MotNode>,
) {
    let net =
        Network::new(NetworkConfig::eight_by_eight(arch).with_seed(seed)).expect("valid config");
    let size = net.config().size();
    let timing = net.config().timing();
    let phases = phases();
    let run = RunConfig::new(benchmark, rate)
        .expect("positive rate")
        .with_phases(phases);

    let label = move |node: MotNode| match node {
        MotNode::Fanout(flat) => FanoutNodeId::from_flat_index(size, flat).to_string(),
        MotNode::Fanin(flat) => FaninNodeId::from_flat_index(size, flat).to_string(),
    };
    let mut latency = LatencyHistograms::new(phases, size.n());
    let mut waste: SpeculationWaste<MotNode> =
        SpeculationWaste::generic(timing.wire_fj, timing.drop_fj);
    let mut collector: TraceCollector<MotNode> = TraceCollector::new(1_000_000, Box::new(label));
    let mut observers: Vec<&mut dyn Observer<MotNode>> =
        vec![&mut latency, &mut waste, &mut collector];
    net.run_with_observers(&run, &mut observers)
        .expect("run succeeds");

    let meta = TraceMeta {
        substrate: "mot".to_string(),
        arch: Some(arch.to_string()),
        size: 8,
        seed,
        flits: 1,
        rate,
        warmup_ps: phases.warmup().as_ps(),
        measure_ps: phases.measure().as_ps(),
        wire_fj: Some(timing.wire_fj),
        drop_fj: Some(timing.drop_fj),
        dropped_events: collector.dropped(),
    };
    let records = collector.records().to_vec();
    (meta, records, latency, waste)
}

fn mesh_trace(benchmark: Benchmark, rate: f64, seed: u64) -> (TraceMeta, Vec<TraceRecord>) {
    let size = MeshSize::new(4, 4).expect("valid size");
    let net = MeshNetwork::new(MeshConfig::new(size).with_seed(seed)).expect("valid config");
    let phases = phases();
    let mut collector: TraceCollector<usize> =
        TraceCollector::new(1_000_000, Box::new(|router: usize| format!("r{router}")));
    let mut observers: Vec<&mut dyn Observer<usize>> = vec![&mut collector];
    net.run_with_observers(benchmark, rate, phases, &mut observers)
        .expect("run succeeds");
    let meta = TraceMeta {
        substrate: "mesh".to_string(),
        arch: None,
        size: 4,
        seed,
        flits: 1,
        rate,
        warmup_ps: phases.warmup().as_ps(),
        measure_ps: phases.measure().as_ps(),
        wire_fj: None,
        drop_fj: None,
        dropped_events: collector.dropped(),
    };
    (meta, collector.records().to_vec())
}

/// Asserts the closure property on one record stream: no broken trees,
/// open trees only ever tail-truncated, and the overwhelming majority
/// of trees fully closed.
fn assert_forest_closes(records: &[TraceRecord], context: &str) -> SpanForest {
    let forest = SpanForest::build(records);
    assert!(!forest.trees.is_empty(), "{context}: trace has flit trees");
    assert_eq!(forest.broken_trees, 0, "{context}: broken trees exist");
    let mut closed = 0usize;
    for tree in &forest.trees {
        assert!(
            !tree.broken(),
            "{context}: packet {} is broken",
            tree.packet
        );
        if tree.closed {
            closed += 1;
        } else {
            // Truncation only loses consumers.
            assert!(
                tree.created > tree.consumed,
                "{context}: packet {} open with created {} <= consumed {}",
                tree.packet,
                tree.created,
                tree.consumed
            );
        }
    }
    assert_eq!(forest.trees.len() - closed, forest.open_trees, "{context}");
    assert!(
        closed * 10 >= forest.trees.len() * 9,
        "{context}: only {closed} of {} trees closed",
        forest.trees.len()
    );
    forest
}

#[test]
fn mot_span_trees_close_under_random_traffic() {
    for seed in [1, 5, 11] {
        for benchmark in [Benchmark::Multicast10, Benchmark::UniformRandom] {
            for arch in [Architecture::Baseline, Architecture::BasicHybridSpeculative] {
                let (_, records, _, _) = mot_trace(arch, benchmark, 0.25, seed);
                let context = format!("{arch} {benchmark} seed {seed}");
                let forest = assert_forest_closes(&records, &context);

                // Every critical path telescopes exactly: source queue
                // plus per-hop service plus per-hop queueing is the
                // end-to-end latency.
                let paths = critical_paths(&forest, &records);
                assert!(!paths.is_empty(), "{context}: no critical paths");
                for path in &paths {
                    assert_eq!(
                        path.source_queue_ps + path.service_ps + path.queue_ps,
                        path.latency_ps,
                        "{context}: logical packet {} does not telescope",
                        path.logical
                    );
                    let hop_sum: u64 = path.hops.iter().map(|h| h.segment_ps).sum();
                    assert_eq!(hop_sum, path.latency_ps, "{context}: hop segments");
                }
            }
        }
    }
}

#[test]
fn mesh_span_trees_close_under_random_traffic() {
    for seed in [2, 9] {
        for benchmark in [Benchmark::UniformRandom, Benchmark::Shuffle] {
            let (_, records) = mesh_trace(benchmark, 0.1, seed);
            let context = format!("mesh {benchmark} seed {seed}");
            let forest = assert_forest_closes(&records, &context);
            let paths = critical_paths(&forest, &records);
            assert!(!paths.is_empty(), "{context}: no critical paths");
            for path in &paths {
                assert_eq!(
                    path.source_queue_ps + path.service_ps + path.queue_ps,
                    path.latency_ps,
                    "{context}: logical packet {}",
                    path.logical
                );
            }
        }
    }
}

#[test]
fn analysis_latency_reconciles_with_online_histograms() {
    let (meta, records, latency, _) = mot_trace(
        Architecture::BasicHybridSpeculative,
        Benchmark::Multicast10,
        0.3,
        3,
    );
    let analysis = Analysis::build(Some(meta), records, 10);
    let summary = analysis.latency();
    let overall = latency.overall();

    assert_eq!(summary.count, overall.count(), "population size");
    assert_eq!(Some(summary.min_ps), overall.min(), "fastest packet");
    assert_eq!(Some(summary.max_ps), overall.max(), "slowest packet");
    // The histogram buckets logarithmically, so its mean is approximate;
    // the trace-derived mean must sit within a picosecond of it.
    let online_mean = overall.mean().expect("non-empty histogram");
    assert!(
        (summary.mean_ps - online_mean).abs() <= 1.0,
        "mean {} vs online {online_mean}",
        summary.mean_ps
    );
}

#[test]
fn scorecard_reconciles_with_the_waste_ledger() {
    let (meta, records, _, waste) = mot_trace(
        Architecture::BasicHybridSpeculative,
        Benchmark::Multicast10,
        0.3,
        7,
    );
    let forest = SpanForest::build(&records);
    let card = Scorecard::build(&meta, &forest, &records).expect("meta has energy constants");

    assert!(card.total_throttles > 0, "hybrid run must throttle");
    assert_eq!(card.total_throttles, waste.total_throttles());
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    assert!(
        close(card.total_drop_fj, waste.total_drop_fj()),
        "drop energy {} vs ledger {}",
        card.total_drop_fj,
        waste.total_drop_fj()
    );
    assert!(
        close(card.total_wasted_wire_fj, waste.total_wasted_wire_fj()),
        "wasted wire energy {} vs ledger {}",
        card.total_wasted_wire_fj,
        waste.total_wasted_wire_fj()
    );
    // Region totals sum to the ledger totals.
    let region_throttles: u64 = card.regions.iter().map(|r| r.throttles).sum();
    assert_eq!(region_throttles, card.total_throttles);
}
