//! End-to-end integration: every architecture runs every benchmark through
//! the full stack (topology → routing → node state machines → event loop →
//! statistics) and produces sane measurements.

use asynoc::{Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig};

fn network(arch: Architecture) -> Network {
    Network::new(NetworkConfig::eight_by_eight(arch).with_seed(99)).expect("valid config")
}

fn short() -> Phases {
    Phases::new(Duration::from_ns(100), Duration::from_ns(900))
}

#[test]
fn every_architecture_runs_every_benchmark() {
    for arch in Architecture::ALL {
        let net = network(arch);
        for benchmark in Benchmark::ALL {
            let run = RunConfig::new(benchmark, 0.15)
                .expect("positive rate")
                .with_phases(short());
            let report = net.run(&run).unwrap_or_else(|e| {
                panic!("{arch} x {benchmark} failed: {e}");
            });
            assert!(
                report.packets_measured > 0,
                "{arch} x {benchmark}: no packets measured"
            );
            assert_eq!(
                report.packets_incomplete, 0,
                "{arch} x {benchmark}: lost packets at light load"
            );
            assert!(
                report.latency.mean().expect("samples exist") > Duration::from_ps(500),
                "{arch} x {benchmark}: implausibly low latency"
            );
            assert!(
                report.power.total_mw() > 0.0,
                "{arch} x {benchmark}: zero power"
            );
        }
    }
}

#[test]
fn multicast_completion_means_every_destination_got_the_header() {
    // packets_incomplete == 0 is a strong invariant: a logical packet only
    // completes when its header has arrived at *every* destination in its
    // set, so a routing bug that starves one subtree would show up here.
    for arch in [
        Architecture::Baseline,
        Architecture::BasicNonSpeculative,
        Architecture::BasicHybridSpeculative,
        Architecture::OptHybridSpeculative,
        Architecture::OptAllSpeculative,
    ] {
        let net = network(arch);
        let run = RunConfig::new(Benchmark::Multicast10, 0.2)
            .expect("positive rate")
            .with_phases(short());
        let report = net.run(&run).expect("run succeeds");
        assert_eq!(
            report.packets_incomplete, 0,
            "{arch}: multicast lost a branch"
        );
        assert!(report.packets_measured > 50, "{arch}: too few packets");
    }
}

#[test]
fn sixteen_by_sixteen_networks_work() {
    use asynoc::MotSize;
    for arch in [
        Architecture::OptNonSpeculative,
        Architecture::OptHybridSpeculative,
        Architecture::OptAllSpeculative,
    ] {
        let config = NetworkConfig::new(MotSize::new(16).expect("16 is valid"), arch);
        let net = Network::new(config).expect("valid config");
        let run = RunConfig::new(Benchmark::Multicast5, 0.15)
            .expect("positive rate")
            .with_phases(short());
        let report = net.run(&run).expect("16x16 run succeeds");
        assert!(
            report.packets_measured > 0,
            "{arch}: 16x16 produced nothing"
        );
        assert_eq!(report.packets_incomplete, 0, "{arch}: 16x16 lost packets");
    }
}

#[test]
fn tiny_and_wide_networks_work() {
    use asynoc::MotSize;
    for n in [2usize, 4, 32] {
        let config = NetworkConfig::new(
            MotSize::new(n).expect("valid size"),
            Architecture::OptHybridSpeculative,
        );
        let net = Network::new(config).expect("valid config");
        let run = RunConfig::new(Benchmark::UniformRandom, 0.1)
            .expect("positive rate")
            .with_phases(short());
        let report = net.run(&run).expect("run succeeds");
        assert!(report.packets_measured > 0, "{n}x{n}: nothing measured");
        assert_eq!(report.packets_incomplete, 0, "{n}x{n}: lost packets");
    }
}

#[test]
fn single_flit_packets_flow() {
    let config = NetworkConfig::eight_by_eight(Architecture::OptAllSpeculative)
        .with_flits_per_packet(1)
        .with_seed(5);
    let net = Network::new(config).expect("valid config");
    let run = RunConfig::new(Benchmark::Multicast10, 0.1)
        .expect("positive rate")
        .with_phases(short());
    let report = net.run(&run).expect("single-flit run succeeds");
    assert!(report.packets_measured > 0);
    assert_eq!(report.packets_incomplete, 0);
}

#[test]
fn long_packets_flow() {
    let config = NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative)
        .with_flits_per_packet(9)
        .with_seed(5);
    let net = Network::new(config).expect("valid config");
    let run = RunConfig::new(Benchmark::Multicast5, 0.1)
        .expect("positive rate")
        .with_phases(short());
    let report = net.run(&run).expect("9-flit run succeeds");
    assert!(report.packets_measured > 0);
    assert_eq!(report.packets_incomplete, 0);
}

#[test]
fn saturated_network_still_terminates_and_reports() {
    // Drive far past capacity; the drain cap guarantees termination and the
    // report shows the refusals.
    let net = network(Architecture::BasicNonSpeculative);
    let run = RunConfig::new(Benchmark::UniformRandom, 2.5)
        .expect("positive rate")
        .with_phases(short());
    let report = net.run(&run).expect("saturated run terminates");
    assert!(report.acceptance() < 0.9, "2.5 GF/s must saturate");
}
