//! Whole-stack property tests: deterministic short runs sweeping the full
//! configuration space must uphold the simulator's invariants.
//!
//! These were originally proptest-driven; they now enumerate a fixed,
//! seeded sample of the parameter space so the suite builds offline with
//! zero external dependencies and fails reproducibly.

use asynoc::{Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig};
use asynoc_faults::{replay_command, run_mot_outcome, shrink_plan, FaultEntry, FaultPlan};
use asynoc_kernel::SimRng;

fn benchmarks() -> Vec<Benchmark> {
    Benchmark::ALL
        .into_iter()
        .chain(Benchmark::EXTENDED)
        .collect()
}

/// Any configuration at sane load delivers every measured packet to
/// every destination (completion implies full multicast coverage and
/// no duplicate deliveries — both are asserted inside the simulator),
/// accepts the offered load, and reports self-consistent counters.
#[test]
fn light_load_invariants() {
    let benches = benchmarks();
    let mut rng = SimRng::seed_from(2024);
    for _case in 0..24 {
        let arch = Architecture::ALL[rng.index(Architecture::ALL.len())];
        let benchmark = benches[rng.index(benches.len())];
        let rate_milli = rng.range_inclusive(50, 299) as u64;
        let flits = rng.range_inclusive(1, 6) as u8;
        let seed = rng.index(1_000) as u64;
        // Hotspot saturates at ≈ 0.29 flits/ns (all sources share one fanin
        // root), so "light load" must stay well below that ceiling there.
        // Serializing architectures (Baseline) replicate multicast packets at
        // the source, multiplying the offered flit load by the group size —
        // derate those combinations as well.
        let mut rate = rate_milli as f64 / 1_000.0;
        if benchmark == Benchmark::Hotspot {
            rate *= 0.6;
        }
        if arch.serializes_multicast() && benchmark.has_multicast() {
            rate *= 0.35;
        }
        let network = Network::new(
            NetworkConfig::eight_by_eight(arch)
                .with_seed(seed)
                .with_flits_per_packet(flits),
        )
        .expect("valid config");
        let run = RunConfig::new(benchmark, rate)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(60), Duration::from_ns(500)));
        let report = network.run(&run).expect("run succeeds");

        assert_eq!(
            report.packets_incomplete, 0,
            "{arch} x {benchmark} @ {rate}: lost packets"
        );
        assert!(
            report.acceptance() > 0.98,
            "{arch} x {benchmark} @ {rate}: acceptance {}",
            report.acceptance()
        );
        // Delivered >= injected (multicast replicates, unicast preserves);
        // a small tolerance absorbs flits in flight at the window edges.
        assert!(
            report.throughput.delivered >= report.throughput.injected * 0.96,
            "{arch} x {benchmark} @ {rate}: delivered {} < injected {}",
            report.throughput.delivered,
            report.throughput.injected
        );
        // Throttling only happens where speculation exists.
        let has_speculation = arch
            .speculation_map(network.config().size())
            .has_speculation();
        if !has_speculation {
            assert_eq!(
                report.flits_throttled, 0,
                "{arch} cannot throttle without speculative nodes"
            );
        }
        // Activity bookkeeping is consistent with the headline counters.
        let throttles: u64 = report.activity.fanout_level_throttles().iter().sum();
        assert_eq!(throttles, report.flits_throttled);
        // Power must include leakage and scale sanely.
        assert!(report.power.total_mw() > network.leakage_mw());
    }
}

/// Runs are reproducible: the same (config, run) pair twice gives
/// byte-identical statistics.
#[test]
fn runs_are_deterministic() {
    let benches = benchmarks();
    let mut rng = SimRng::seed_from(99);
    for _case in 0..8 {
        let arch = Architecture::ALL[rng.index(Architecture::ALL.len())];
        let benchmark = benches[rng.index(benches.len())];
        let seed = rng.index(100) as u64;
        let make = || {
            let network = Network::new(NetworkConfig::eight_by_eight(arch).with_seed(seed))
                .expect("valid config");
            let run = RunConfig::new(benchmark, 0.25)
                .expect("positive rate")
                .with_phases(Phases::new(Duration::from_ns(50), Duration::from_ns(300)));
            network.run(&run).expect("run succeeds")
        };
        let a = make();
        let b = make();
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.flits_delivered, b.flits_delivered);
        assert_eq!(a.flits_throttled, b.flits_throttled);
        assert_eq!(a.packets_measured, b.packets_measured);
    }
}

/// A fault plan that violates the recoverable contract shrinks to a
/// minimal reproducer: the predicate reruns the real differential pair
/// on every candidate, so the surviving entry is the one interaction
/// that actually changes the delivered multiset — and the harness
/// prints the exact CLI line that replays it.
#[test]
fn failing_fault_plans_shrink_to_a_minimal_reproducer() {
    let seed = 3;
    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(seed),
    )
    .expect("valid config");
    let run = RunConfig::new(Benchmark::Multicast5, 0.2)
        .expect("positive rate")
        .with_phases(Phases::new(Duration::from_ns(20), Duration::from_ns(120)));
    let clean = run_mot_outcome(&network, &run, None).expect("clean run");

    // One lethal loss buried in recoverable noise. The noise entries
    // leave the delivered multiset untouched; only the loss diverges it.
    let plan = FaultPlan::parse("stall:0:3:300;drop:1:0:1:500;lose:2:0;stall:5:2:200")
        .expect("valid plan");
    let diverges = |candidate: &FaultPlan| {
        let faulted = run_mot_outcome(&network, &run, Some(candidate)).expect("faulted run");
        faulted.deliveries != clean.deliveries
    };
    assert!(diverges(&plan), "the full plan reproduces the divergence");

    let minimal = shrink_plan(&plan, diverges);
    assert_eq!(
        minimal.entries,
        vec![FaultEntry::Lose { source: 2, nth: 0 }],
        "shrinking isolates the lethal entry"
    );
    let faulted = run_mot_outcome(&network, &run, Some(&minimal)).expect("minimal run");
    assert_ne!(
        faulted.deliveries, clean.deliveries,
        "the minimal plan still reproduces"
    );

    let line = replay_command(
        "mot",
        Some("BasicHybridSpeculative"),
        "Multicast5",
        0.2,
        8,
        seed,
        &minimal,
    );
    assert_eq!(
        line,
        "asynoc faults --substrate mot --arch BasicHybridSpeculative \
         --benchmark Multicast5 --rate 0.2 --size 8 --seed 3 --oracle --plan 'lose:2:0'"
    );
}
