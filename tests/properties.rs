//! Whole-stack property tests: randomized short runs across the full
//! configuration space must uphold the simulator's invariants.

use proptest::prelude::*;

use asynoc::{Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig};

fn arch_strategy() -> impl Strategy<Value = Architecture> {
    prop::sample::select(Architecture::ALL.to_vec())
}

fn benchmark_strategy() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(
        Benchmark::ALL
            .into_iter()
            .chain(Benchmark::EXTENDED)
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full (short) simulation run
        .. ProptestConfig::default()
    })]

    /// Any configuration at sane load delivers every measured packet to
    /// every destination (completion implies full multicast coverage and
    /// no duplicate deliveries — both are asserted inside the simulator),
    /// accepts the offered load, and reports self-consistent counters.
    #[test]
    fn prop_light_load_invariants(
        arch in arch_strategy(),
        benchmark in benchmark_strategy(),
        rate_milli in 50u64..300,
        flits in 1u8..7,
        seed in 0u64..1_000,
    ) {
        // Hotspot saturates at ≈ 0.29 flits/ns (all sources share one fanin
        // root), so "light load" must stay well below that ceiling there.
        let rate = if benchmark == Benchmark::Hotspot {
            rate_milli as f64 / 1_000.0 * 0.6
        } else {
            rate_milli as f64 / 1_000.0
        };
        let network = Network::new(
            NetworkConfig::eight_by_eight(arch)
                .with_seed(seed)
                .with_flits_per_packet(flits),
        )
        .expect("valid config");
        let run = RunConfig::new(benchmark, rate)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(60), Duration::from_ns(500)));
        let report = network.run(&run).expect("run succeeds");

        prop_assert_eq!(report.packets_incomplete, 0,
            "{} x {} @ {}: lost packets", arch, benchmark, rate);
        prop_assert!(report.acceptance() > 0.98,
            "{} x {} @ {}: acceptance {}", arch, benchmark, rate, report.acceptance());
        // Delivered >= injected (multicast replicates, unicast preserves);
        // a small tolerance absorbs flits in flight at the window edges.
        prop_assert!(report.throughput.delivered >= report.throughput.injected * 0.96,
            "{} x {} @ {}: delivered {} < injected {}",
            arch, benchmark, rate,
            report.throughput.delivered, report.throughput.injected);
        // Throttling only happens where speculation exists.
        let has_speculation = arch.speculation_map(network.config().size()).has_speculation();
        if !has_speculation {
            prop_assert_eq!(report.flits_throttled, 0,
                "{} cannot throttle without speculative nodes", arch);
        }
        // Activity bookkeeping is consistent with the headline counters.
        let throttles: u64 = report.activity.fanout_level_throttles().iter().sum();
        prop_assert_eq!(throttles, report.flits_throttled);
        // Power must include leakage and scale sanely.
        prop_assert!(report.power.total_mw() > network.leakage_mw());
    }

    /// Runs are reproducible: the same (config, run) pair twice gives
    /// byte-identical statistics.
    #[test]
    fn prop_runs_are_deterministic(
        arch in arch_strategy(),
        benchmark in benchmark_strategy(),
        seed in 0u64..100,
    ) {
        let make = || {
            let network = Network::new(
                NetworkConfig::eight_by_eight(arch).with_seed(seed),
            )
            .expect("valid config");
            let run = RunConfig::new(benchmark, 0.25)
                .expect("positive rate")
                .with_phases(Phases::new(Duration::from_ns(50), Duration::from_ns(300)));
            network.run(&run).expect("run succeeds")
        };
        let a = make();
        let b = make();
        prop_assert_eq!(a.latency.mean(), b.latency.mean());
        prop_assert_eq!(a.flits_delivered, b.flits_delivered);
        prop_assert_eq!(a.flits_throttled, b.flits_throttled);
        prop_assert_eq!(a.packets_measured, b.packets_measured);
    }
}
