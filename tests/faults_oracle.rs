//! The differential conformance oracle, exercised at scale.
//!
//! Every faulted run is paired with a clean twin under the same network
//! seed and traffic. Recoverable plans must leave the
//! delivered-destination multiset untouched with latency deltas bounded
//! by the injected-delay budget; unrecoverable plans must degrade
//! gracefully — the fault ledger's loss count reconciles exactly with
//! the span analysis's broken-with-cause count, and nothing vanishes
//! silently.

use asynoc::{
    Architecture, Benchmark, Duration, MotSize, Network, NetworkConfig, Phases, RunConfig,
};
use asynoc_faults::{judge, mesh_network, run_mesh_outcome, run_mot_outcome, FaultPlan};

fn mot_net(seed: u64) -> Network {
    Network::new(
        NetworkConfig::new(
            MotSize::new(8).expect("valid"),
            Architecture::BasicHybridSpeculative,
        )
        .with_seed(seed),
    )
    .expect("valid config")
}

fn quick_run() -> RunConfig {
    RunConfig::new(Benchmark::Multicast5, 0.2)
        .expect("positive rate")
        .with_phases(Phases::new(Duration::from_ns(20), Duration::from_ns(120)))
}

#[test]
fn fifty_seeded_recoverable_plans_satisfy_the_oracle_on_mot() {
    // 5 network seeds x 10 plan seeds = 50 differential pairs, each
    // faulted run judged against the clean twin that shares its network
    // seed. Random plans draw only recoverable entries, so the strict
    // contract (identical multiset, attributable latency) must hold on
    // every single pair.
    let run = quick_run();
    for net_seed in 0..5u64 {
        let net = mot_net(net_seed);
        let domain = net.fault_domain();
        let clean = run_mot_outcome(&net, &run, None).expect("clean run");
        assert!(!clean.deliveries.is_empty(), "clean twin delivered traffic");
        for plan_seed in 0..10u64 {
            let plan = FaultPlan::random(net_seed * 1_000 + plan_seed, 0.15, &domain);
            assert!(!plan.entries.is_empty(), "random plans are never empty");
            assert!(
                plan.recoverable(&domain),
                "random plans draw recoverable entries only"
            );
            let faulted = run_mot_outcome(&net, &run, Some(&plan)).expect("faulted run");
            let verdict = judge(&clean, &faulted, &plan, &domain);
            assert!(verdict.recoverable);
            assert!(
                verdict.pass(),
                "net seed {net_seed}, plan seed {plan_seed}, plan '{}': {:?}",
                plan.encode(),
                verdict.failures()
            );
            assert_eq!(
                clean.deliveries, faulted.deliveries,
                "net seed {net_seed}, plan seed {plan_seed}: multisets identical"
            );
        }
    }
}

#[test]
fn seeded_recoverable_plans_satisfy_the_oracle_on_the_mesh() {
    let phases = Phases::new(Duration::from_ns(20), Duration::from_ns(150));
    let net = mesh_network(4, 7, 5, 1).expect("valid mesh");
    let domain = net.fault_domain();
    let clean =
        run_mesh_outcome(&net, Benchmark::UniformRandom, 0.1, phases, None).expect("clean run");
    assert!(!clean.deliveries.is_empty(), "clean twin delivered traffic");
    for plan_seed in 0..10u64 {
        let plan = FaultPlan::random(plan_seed, 0.15, &domain);
        assert!(
            plan.recoverable(&domain),
            "mesh random plans are recoverable"
        );
        let faulted = run_mesh_outcome(&net, Benchmark::UniformRandom, 0.1, phases, Some(&plan))
            .expect("faulted run");
        let verdict = judge(&clean, &faulted, &plan, &domain);
        assert!(
            verdict.pass(),
            "plan seed {plan_seed}, plan '{}': {:?}",
            plan.encode(),
            verdict.failures()
        );
        assert_eq!(clean.deliveries, faulted.deliveries);
    }
}

#[test]
fn lethal_losses_reconcile_ledger_against_span_analysis() {
    // A deliberately unrecoverable plan: three independent lethal
    // losses. The ledger's loss count must reconcile *exactly* with the
    // number of broken span trees the analysis explains by fault
    // records — the graceful-degradation guarantee, end to end.
    let net = mot_net(3);
    let domain = net.fault_domain();
    let run = quick_run();
    let plan = FaultPlan::parse("lose:0:0;lose:3:1;lose:6:0").expect("valid");
    assert!(!plan.recoverable(&domain));

    let clean = run_mot_outcome(&net, &run, None).expect("clean run");
    let faulted = run_mot_outcome(&net, &run, Some(&plan)).expect("faulted run");

    assert_eq!(faulted.summary.lost, 3, "all three losses fired");
    assert_eq!(faulted.ledger.lost(), 3, "the ledger saw all of them");
    assert_eq!(
        faulted.ledger.lost(),
        faulted.broken_with_cause as u64,
        "every ledger loss is a broken tree with a recorded cause"
    );
    assert_eq!(
        faulted.broken_trees, faulted.broken_with_cause,
        "no tree broke without a recorded cause"
    );

    let verdict = judge(&clean, &faulted, &plan, &domain);
    assert!(!verdict.recoverable);
    assert!(
        verdict.pass(),
        "degradation contract holds: {:?}",
        verdict.failures()
    );
}
