//! Shape-level regression tests for the paper's headline claims.
//!
//! These use the quick harness quality (short windows, coarse bisection),
//! so thresholds are looser than the paper's exact percentages — the point
//! is that every claimed *ordering* holds and stays held.

use asynoc::harness::{addressing_rows, latency_at_fraction, node_cost_rows, saturation, Quality};
use asynoc::{Architecture, Benchmark};

fn mean_latency(arch: Architecture, benchmark: Benchmark) -> f64 {
    latency_at_fraction(arch, benchmark, 0.25, &Quality::quick())
        .expect("harness run succeeds")
        .mean_latency_ps as f64
}

#[test]
fn parallel_multicast_beats_serial_baseline_on_latency() {
    // Paper: 39.1-74.1% lower latency for BasicNonSpeculative vs Baseline
    // on multicast benchmarks, growing with multicast density.
    for (benchmark, min_gain) in [
        (Benchmark::Multicast5, 0.10),
        (Benchmark::Multicast10, 0.25),
        (Benchmark::MulticastStatic, 0.40),
    ] {
        let serial = mean_latency(Architecture::Baseline, benchmark);
        let parallel = mean_latency(Architecture::BasicNonSpeculative, benchmark);
        let gain = 1.0 - parallel / serial;
        assert!(
            gain > min_gain,
            "{benchmark}: parallel gain {gain:.2} below {min_gain}"
        );
    }
}

#[test]
fn local_speculation_improves_latency_over_plain_parallel() {
    // Paper: BasicHybrid 10.5-14.9% and OptHybrid 17.8-21.4% below
    // BasicNonSpeculative on multicast benchmarks.
    for benchmark in Benchmark::MULTICAST {
        let nonspec = mean_latency(Architecture::BasicNonSpeculative, benchmark);
        let hybrid = mean_latency(Architecture::BasicHybridSpeculative, benchmark);
        let opt = mean_latency(Architecture::OptHybridSpeculative, benchmark);
        let hybrid_gain = 1.0 - hybrid / nonspec;
        let opt_gain = 1.0 - opt / nonspec;
        assert!(
            hybrid_gain > 0.05,
            "{benchmark}: hybrid gain {hybrid_gain:.2} too small"
        );
        assert!(
            opt_gain > hybrid_gain,
            "{benchmark}: optimizations must add to the hybrid gain \
             ({opt_gain:.2} vs {hybrid_gain:.2})"
        );
    }
}

#[test]
fn speculation_accelerates_unicast_too() {
    // The paper's "interesting" finding: local speculation helps unicast.
    for benchmark in [Benchmark::UniformRandom, Benchmark::Shuffle] {
        let nonspec = mean_latency(Architecture::BasicNonSpeculative, benchmark);
        let hybrid = mean_latency(Architecture::BasicHybridSpeculative, benchmark);
        assert!(
            hybrid < nonspec,
            "{benchmark}: hybrid {hybrid} not faster than non-speculative {nonspec}"
        );
    }
}

#[test]
fn design_space_latency_ordering() {
    // Paper Fig 6(b): OptAllSpec < OptHybrid < OptNonSpec on every
    // benchmark.
    for benchmark in Benchmark::ALL {
        let nonspec = mean_latency(Architecture::OptNonSpeculative, benchmark);
        let hybrid = mean_latency(Architecture::OptHybridSpeculative, benchmark);
        let allspec = mean_latency(Architecture::OptAllSpeculative, benchmark);
        assert!(
            allspec < hybrid && hybrid < nonspec,
            "{benchmark}: ordering violated ({allspec} / {hybrid} / {nonspec})"
        );
    }
}

#[test]
fn hotspot_saturation_identical_across_networks() {
    // Paper Table 1: Hotspot = 0.29 GF/s for every network (the shared
    // fanin root is the bottleneck, which no fanout change can move).
    let quality = Quality::quick();
    let mut values = Vec::new();
    for arch in Architecture::ALL {
        let point = saturation(arch, Benchmark::Hotspot, &quality).expect("run succeeds");
        values.push((arch, point.delivered_gfs));
    }
    let reference = values[0].1;
    for (arch, value) in &values {
        assert!(
            (value - reference).abs() < 0.03,
            "{arch}: hotspot saturation {value:.3} deviates from {reference:.3}"
        );
        assert!(
            (0.25..=0.33).contains(value),
            "{arch}: hotspot saturation {value:.3} off the 0.29 anchor"
        );
    }
}

#[test]
fn multicast_saturation_ordering() {
    // Paper Table 1: BasicNonSpec > Baseline; OptHybrid > BasicNonSpec on
    // multicast benchmarks (delivered flits).
    let quality = Quality::quick();
    for benchmark in [Benchmark::Multicast10, Benchmark::MulticastStatic] {
        let serial = saturation(Architecture::Baseline, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        let parallel = saturation(Architecture::BasicNonSpeculative, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        let opt = saturation(Architecture::OptHybridSpeculative, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        assert!(
            parallel > serial,
            "{benchmark}: parallel {parallel:.2} <= serial {serial:.2}"
        );
        assert!(
            opt > parallel,
            "{benchmark}: optimized {opt:.2} <= basic {parallel:.2}"
        );
    }
}

#[test]
fn addressing_table_is_exact() {
    // §5.2(d) is analytic, so it must match the paper bit-for-bit.
    let rows = addressing_rows(&[8, 16]).expect("sizes valid");
    assert_eq!(
        (
            rows[0].baseline_bits,
            rows[0].non_speculative_bits,
            rows[0].hybrid_bits,
            rows[0].all_speculative_bits
        ),
        (3, 14, 12, 8)
    );
    assert_eq!(
        (
            rows[1].baseline_bits,
            rows[1].non_speculative_bits,
            rows[1].hybrid_bits,
            rows[1].all_speculative_bits
        ),
        (4, 30, 20, 16)
    );
}

#[test]
fn node_table_is_exact() {
    // §5.2(a) node numbers are published verbatim.
    let rows = node_cost_rows();
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("row {name} missing"))
    };
    assert_eq!(get("Baseline fanout").area_um2, 342.0);
    assert_eq!(get("Baseline fanout").latency.as_ps(), 263);
    assert_eq!(get("Unoptimized speculative").area_um2, 247.0);
    assert_eq!(get("Unoptimized speculative").latency.as_ps(), 52);
    assert_eq!(get("Unoptimized non-speculative").area_um2, 406.0);
    assert_eq!(get("Unoptimized non-speculative").latency.as_ps(), 299);
    assert_eq!(get("Optimized speculative").area_um2, 373.0);
    assert_eq!(get("Optimized speculative").latency.as_ps(), 120);
    assert_eq!(get("Optimized non-speculative").area_um2, 366.0);
    assert_eq!(get("Optimized non-speculative").latency.as_ps(), 279);
}

#[test]
fn power_ordering_baseline_lowest_allspec_near_highest() {
    use asynoc::harness::measure;
    // At a fixed moderate load, Baseline is cheapest; OptHybrid recovers
    // most of BasicHybrid's speculation overhead; OptAllSpec pays for its
    // wide speculative regions.
    let quality = Quality::quick();
    let rate = 0.3;
    let benchmark = Benchmark::UniformRandom;
    let power = |arch: Architecture| {
        measure(arch, benchmark, rate, &quality)
            .expect("run succeeds")
            .power
            .total_mw()
    };
    let baseline = power(Architecture::Baseline);
    let basic_nonspec = power(Architecture::BasicNonSpeculative);
    let basic_hybrid = power(Architecture::BasicHybridSpeculative);
    let opt_hybrid = power(Architecture::OptHybridSpeculative);
    let opt_nonspec = power(Architecture::OptNonSpeculative);
    let opt_allspec = power(Architecture::OptAllSpeculative);

    assert!(baseline < basic_nonspec, "baseline must be cheapest");
    assert!(basic_nonspec < basic_hybrid, "speculation costs power");
    assert!(
        opt_hybrid < basic_hybrid,
        "protocol optimizations must recover speculation power"
    );
    assert!(opt_nonspec < opt_hybrid, "hybrid pays a small premium");
    assert!(
        opt_allspec > opt_hybrid,
        "full speculation must cost more than local speculation"
    );
}
