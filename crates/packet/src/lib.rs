//! Packet, flit, and source-routing-header model for the `asynoc` workspace.
//!
//! The DAC'16 network moves fixed-length multi-flit packets (the paper uses
//! five flits). A packet is described once, in a shared
//! [`PacketDescriptor`], and each [`Flit`] carries a cheap handle to it —
//! mirroring the hardware, where only the header carries routing state and
//! body/tail flits follow the path the header opened.
//!
//! Source routing comes in two flavors:
//!
//! - the unicast **baseline** encodes one bit per fanout level
//!   ([`BaselinePath`]),
//! - the parallel-multicast networks encode a 2-bit [`RouteSymbol`]
//!   (`Drop`/`Top`/`Bottom`/`Both`) per *non-speculative* fanout node
//!   ([`RouteHeader`]); speculative nodes always broadcast and need no
//!   address field, which is where the paper's header-size savings come from
//!   (see [`coding`]).
//!
//! # Examples
//!
//! ```
//! use asynoc_packet::{DestSet, RouteSymbol};
//!
//! let dests: DestSet = [1usize, 2, 3].into_iter().collect();
//! assert_eq!(dests.len(), 3);
//! assert!(!dests.is_unicast());
//! assert_eq!(RouteSymbol::Both.to_bits(), 0b11);
//! ```

pub mod address;
pub mod coding;
pub mod destset;
pub mod flit;
pub mod packet;

pub use address::{BaselinePath, RouteHeader, RouteSymbol};
pub use destset::DestSet;
pub use flit::{Flit, FlitKind};
pub use packet::{PacketDescriptor, PacketId};
