//! Address-field size analytics (paper §5.2(d)).
//!
//! The serial baseline needs 1 bit per fanout level. The parallel networks
//! need a 2-bit [`RouteSymbol`](crate::RouteSymbol) per *non-speculative*
//! fanout node: speculative nodes always broadcast and carry no address
//! field, so every speculative level deletes `2 × 2^level` header bits.
//!
//! The paper's reported sizes, reproduced by the functions here:
//!
//! | network | 8×8 | 16×16 |
//! |---|---|---|
//! | baseline (serial)          | 3  | 4  |
//! | non-speculative            | 14 | 30 |
//! | hybrid                     | 12 | 20 |
//! | almost fully speculative   | 8  | 16 |

/// Address bits for a baseline unicast packet in an `n`-leaf tree: one turn
/// bit per level.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2.
///
/// # Examples
///
/// ```
/// use asynoc_packet::coding::baseline_address_bits;
///
/// assert_eq!(baseline_address_bits(8), 3);
/// assert_eq!(baseline_address_bits(16), 4);
/// ```
#[must_use]
pub fn baseline_address_bits(n: usize) -> usize {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "network size must be a power of two >= 2, got {n}"
    );
    n.trailing_zeros() as usize
}

/// Address bits for a parallel-multicast packet given how many fanout nodes
/// are non-speculative: 2 bits per non-speculative node.
///
/// # Examples
///
/// ```
/// use asynoc_packet::coding::parallel_address_bits;
///
/// assert_eq!(parallel_address_bits(7), 14); // 8×8, fully non-speculative
/// assert_eq!(parallel_address_bits(6), 12); // 8×8 hybrid (speculative root)
/// ```
#[must_use]
pub const fn parallel_address_bits(non_speculative_nodes: usize) -> usize {
    2 * non_speculative_nodes
}

/// Counts non-speculative fanout nodes in an `n`-leaf tree given per-level
/// speculative flags (`speculative_levels[l]` is `true` if every node at
/// level `l` is speculative).
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2, if the flag slice length does
/// not equal `log2(n)`, or if the leaf level is marked speculative — the
/// fanin network cannot throttle misrouted packets, so the paper requires
/// the last fanout level to stay non-speculative whenever speculation is
/// used at all.
///
/// # Examples
///
/// ```
/// use asynoc_packet::coding::non_speculative_node_count;
///
/// // 8×8 hybrid of Fig 3(b): speculative root, two non-speculative levels.
/// assert_eq!(non_speculative_node_count(8, &[true, false, false]), 6);
/// // 8×8 almost fully speculative (Fig 3(c)).
/// assert_eq!(non_speculative_node_count(8, &[true, true, false]), 4);
/// ```
#[must_use]
pub fn non_speculative_node_count(n: usize, speculative_levels: &[bool]) -> usize {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "network size must be a power of two >= 2, got {n}"
    );
    let levels = n.trailing_zeros() as usize;
    assert_eq!(
        speculative_levels.len(),
        levels,
        "expected {levels} per-level flags for an {n}-leaf tree"
    );
    let any_speculation = speculative_levels.iter().any(|&s| s);
    assert!(
        !(any_speculation && speculative_levels[levels - 1]),
        "the leaf fanout level cannot be speculative: the fanin network cannot throttle"
    );
    speculative_levels
        .iter()
        .enumerate()
        .filter(|&(_, &spec)| !spec)
        .map(|(level, _)| 1usize << level)
        .sum()
}

/// Total address bits for a parallel network described by per-level
/// speculative flags.
///
/// # Panics
///
/// Same conditions as [`non_speculative_node_count`].
#[must_use]
pub fn network_address_bits(n: usize, speculative_levels: &[bool]) -> usize {
    parallel_address_bits(non_speculative_node_count(n, speculative_levels))
}

/// Header coding efficiency: payload bits over payload-plus-address bits.
///
/// A smaller address field means more of each header flit carries payload —
/// the paper's motivation for simplified source routing.
///
/// # Panics
///
/// Panics if `payload_bits` is zero.
#[must_use]
pub fn coding_efficiency(payload_bits: usize, address_bits: usize) -> f64 {
    assert!(payload_bits > 0, "payload must be at least one bit");
    payload_bits as f64 / (payload_bits + address_bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::fanout_tree_nodes;

    const NONSPEC_8: [bool; 3] = [false, false, false];
    const HYBRID_8: [bool; 3] = [true, false, false];
    const ALLSPEC_8: [bool; 3] = [true, true, false];
    const NONSPEC_16: [bool; 4] = [false, false, false, false];
    const HYBRID_16: [bool; 4] = [true, false, true, false];
    const ALLSPEC_16: [bool; 4] = [true, true, true, false];

    #[test]
    fn paper_table_8x8() {
        assert_eq!(baseline_address_bits(8), 3);
        assert_eq!(network_address_bits(8, &NONSPEC_8), 14);
        assert_eq!(network_address_bits(8, &HYBRID_8), 12);
        assert_eq!(network_address_bits(8, &ALLSPEC_8), 8);
    }

    #[test]
    fn paper_table_16x16() {
        assert_eq!(baseline_address_bits(16), 4);
        assert_eq!(network_address_bits(16, &NONSPEC_16), 30);
        assert_eq!(network_address_bits(16, &HYBRID_16), 20);
        assert_eq!(network_address_bits(16, &ALLSPEC_16), 16);
    }

    #[test]
    fn nonspec_count_is_whole_tree_without_speculation() {
        assert_eq!(non_speculative_node_count(8, &NONSPEC_8), 7);
        assert_eq!(non_speculative_node_count(16, &NONSPEC_16), 15);
        assert_eq!(fanout_tree_nodes(8), 7);
    }

    #[test]
    #[should_panic(expected = "fanin network cannot throttle")]
    fn leaf_level_speculation_rejected() {
        let _ = non_speculative_node_count(8, &[false, false, true]);
    }

    #[test]
    #[should_panic(expected = "per-level flags")]
    fn flag_length_must_match_levels() {
        let _ = non_speculative_node_count(8, &[false, false]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn baseline_rejects_non_power_of_two() {
        let _ = baseline_address_bits(12);
    }

    #[test]
    fn coding_efficiency_improves_with_fewer_address_bits() {
        let payload = 32;
        let nonspec = coding_efficiency(payload, 14);
        let hybrid = coding_efficiency(payload, 12);
        let allspec = coding_efficiency(payload, 8);
        assert!(nonspec < hybrid && hybrid < allspec);
        assert!((coding_efficiency(32, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn coding_efficiency_rejects_zero_payload() {
        let _ = coding_efficiency(0, 4);
    }

    #[test]
    fn speculation_only_shrinks_headers() {
        for levels in 2u32..7 {
            for mask in 0u32..64 {
                let n = 1usize << levels;
                let mut flags: Vec<bool> = (0..levels).map(|l| mask >> l & 1 == 1).collect();
                // Leaf level must stay non-speculative.
                let last = flags.len() - 1;
                flags[last] = false;
                let bits = network_address_bits(n, &flags);
                let full = network_address_bits(n, &vec![false; levels as usize]);
                assert!(bits <= full);
                // Every speculative level removes exactly 2·2^level bits.
                let saved: usize = flags
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s)
                    .map(|(l, _)| 2 * (1usize << l))
                    .sum();
                assert_eq!(bits + saved, full);
            }
        }
    }
}
