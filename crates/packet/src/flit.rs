//! Flits: the unit of flow control.
//!
//! Packets move through the network as a train of flits. Only the header
//! carries routing information; body and tail flits follow whatever channel
//! state the header set up, and the tail releases it. The paper fixes the
//! packet length at five flits (header + 3 body + tail); this module keeps
//! the length a per-packet parameter.

use std::fmt;
use std::sync::Arc;

use crate::destset::DestSet;
use crate::packet::PacketDescriptor;

/// The role a flit plays within its packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit: carries the source-routing header.
    Header,
    /// Middle flit: payload only.
    Body,
    /// Last flit: releases channel state as it passes.
    Tail,
    /// Sole flit of a single-flit packet (header and tail at once).
    HeaderTail,
}

impl FlitKind {
    /// Returns `true` for flits that carry routing information.
    #[must_use]
    pub const fn is_header(self) -> bool {
        matches!(self, FlitKind::Header | FlitKind::HeaderTail)
    }

    /// Returns `true` for flits that close out the packet.
    #[must_use]
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeaderTail)
    }

    /// Returns `true` for pure body flits.
    #[must_use]
    pub const fn is_body(self) -> bool {
        matches!(self, FlitKind::Body)
    }
}

impl fmt::Display for FlitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlitKind::Header => "header",
            FlitKind::Body => "body",
            FlitKind::Tail => "tail",
            FlitKind::HeaderTail => "header+tail",
        };
        f.write_str(s)
    }
}

/// One flit in flight.
///
/// Flits are cheap to clone: replication at a multicast branch point (or a
/// speculative broadcast) clones the handle, not the descriptor.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use asynoc_kernel::Time;
/// use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader};
///
/// let descriptor = Arc::new(PacketDescriptor::new(
///     PacketId::new(1),
///     0,
///     DestSet::unicast(5),
///     RouteHeader::for_tree(8),
///     5,
///     Time::ZERO,
/// ));
/// let flits: Vec<Flit> = Flit::train(&descriptor).collect();
/// assert_eq!(flits.len(), 5);
/// assert!(flits[0].kind().is_header());
/// assert!(flits[4].kind().is_tail());
/// ```
#[derive(Clone, Debug)]
pub struct Flit {
    descriptor: Arc<PacketDescriptor>,
    kind: FlitKind,
    index: u8,
    branch: DestSet,
}

impl Flit {
    /// Creates the `index`-th flit of `descriptor`'s packet.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the packet's flit count.
    #[must_use]
    pub fn new(descriptor: Arc<PacketDescriptor>, index: u8) -> Self {
        let count = descriptor.flit_count();
        assert!(
            index < count,
            "flit index {index} out of range for a {count}-flit packet"
        );
        let kind = if count == 1 {
            FlitKind::HeaderTail
        } else if index == 0 {
            FlitKind::Header
        } else if index == count - 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        };
        let branch = descriptor.dests();
        Flit {
            descriptor,
            kind,
            index,
            branch,
        }
    }

    /// Produces the packet's whole flit train, header first.
    pub fn train(descriptor: &Arc<PacketDescriptor>) -> impl Iterator<Item = Flit> + '_ {
        (0..descriptor.flit_count()).map(move |index| Flit::new(Arc::clone(descriptor), index))
    }

    /// The shared packet descriptor.
    #[must_use]
    pub fn descriptor(&self) -> &Arc<PacketDescriptor> {
        &self.descriptor
    }

    /// Consumes the flit and returns its descriptor handle, so the last
    /// holder of a delivered packet can hand the descriptor back to a
    /// recycling pool without an extra refcount bump.
    #[must_use]
    pub fn into_descriptor(self) -> Arc<PacketDescriptor> {
        self.descriptor
    }

    /// The flit's role within the packet.
    #[must_use]
    pub fn kind(&self) -> FlitKind {
        self.kind
    }

    /// The flit's position within the packet (0 = header).
    #[must_use]
    pub fn index(&self) -> u8 {
        self.index
    }

    /// The subset of the packet's destinations this copy is responsible
    /// for. Starts as the full destination set; substrates that fork a
    /// packet in-network narrow it per branch with [`Flit::with_branch`].
    #[must_use]
    pub fn branch(&self) -> DestSet {
        self.branch
    }

    /// Returns a copy of this flit carrying `branch` as its destination
    /// subset, for replication at a multicast fork point.
    #[must_use]
    pub fn with_branch(mut self, branch: DestSet) -> Flit {
        self.branch = branch;
        self
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt{}[{}/{} {}]",
            self.descriptor.id(),
            self.index,
            self.descriptor.flit_count(),
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::destset::DestSet;
    use crate::packet::{PacketDescriptor, PacketId};
    use asynoc_kernel::Time;

    fn descriptor(flits: u8) -> Arc<PacketDescriptor> {
        Arc::new(PacketDescriptor::new(
            PacketId::new(9),
            2,
            DestSet::unicast(1),
            crate::RouteHeader::for_tree(8),
            flits,
            Time::from_ps(10),
        ))
    }

    #[test]
    fn five_flit_train_roles() {
        let train: Vec<Flit> = Flit::train(&descriptor(5)).collect();
        let kinds: Vec<FlitKind> = train.iter().map(Flit::kind).collect();
        assert_eq!(
            kinds,
            [
                FlitKind::Header,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail,
            ]
        );
        assert_eq!(
            train.iter().map(Flit::index).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn two_flit_packet_has_header_and_tail() {
        let kinds: Vec<FlitKind> = Flit::train(&descriptor(2)).map(|f| f.kind()).collect();
        assert_eq!(kinds, [FlitKind::Header, FlitKind::Tail]);
    }

    #[test]
    fn single_flit_packet_is_header_tail() {
        let kinds: Vec<FlitKind> = Flit::train(&descriptor(1)).map(|f| f.kind()).collect();
        assert_eq!(kinds, [FlitKind::HeaderTail]);
        assert!(FlitKind::HeaderTail.is_header());
        assert!(FlitKind::HeaderTail.is_tail());
        assert!(!FlitKind::HeaderTail.is_body());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flit_index_must_be_in_range() {
        let _ = Flit::new(descriptor(5), 5);
    }

    #[test]
    fn clones_share_descriptor() {
        let flit = Flit::new(descriptor(5), 0);
        let copy = flit.clone();
        assert!(Arc::ptr_eq(flit.descriptor(), copy.descriptor()));
    }

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Header.is_header() && !FlitKind::Header.is_tail());
        assert!(FlitKind::Tail.is_tail() && !FlitKind::Tail.is_header());
        assert!(FlitKind::Body.is_body());
    }

    #[test]
    fn display_formats() {
        let flit = Flit::new(descriptor(5), 1);
        assert_eq!(flit.to_string(), "pkt9[1/5 body]");
    }

    #[test]
    fn branch_starts_full_and_narrows_per_copy() {
        let flit = Flit::new(descriptor(5), 0);
        assert_eq!(flit.branch(), flit.descriptor().dests());
        let narrowed = flit.clone().with_branch(DestSet::unicast(1));
        assert_eq!(narrowed.branch(), DestSet::unicast(1));
        assert_eq!(flit.branch(), flit.descriptor().dests());
    }
}
