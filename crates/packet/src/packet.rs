//! Packet identity and immutable per-packet metadata.

use std::fmt;

use asynoc_kernel::Time;

use crate::address::RouteHeader;
use crate::destset::DestSet;

/// A unique, monotonically assigned packet identifier.
///
/// # Examples
///
/// ```
/// use asynoc_packet::PacketId;
///
/// let id = PacketId::new(42);
/// assert_eq!(id.as_u64(), 42);
/// assert_eq!(id.to_string(), "42");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// Wraps a raw identifier.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// Returns the raw identifier.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Immutable description of one packet in flight, shared by all its flits
/// (and all replicated copies of them).
///
/// `group` links the unicast clones that the serial-multicast baseline emits
/// for one logical multicast: all clones carry the original packet's id, so
/// latency can be accounted "up to the arrival of all headers" of the
/// logical packet, exactly as the paper measures.
#[derive(Clone, Debug)]
pub struct PacketDescriptor {
    id: PacketId,
    source: usize,
    dests: DestSet,
    route: RouteHeader,
    flit_count: u8,
    created_at: Time,
    group: Option<PacketId>,
}

impl PacketDescriptor {
    /// Creates a descriptor for a parallel (tree-routed) packet.
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty or `flit_count` is zero.
    #[must_use]
    pub fn new(
        id: PacketId,
        source: usize,
        dests: DestSet,
        route: RouteHeader,
        flit_count: u8,
        created_at: Time,
    ) -> Self {
        assert!(!dests.is_empty(), "packet {id} has no destinations");
        assert!(flit_count > 0, "packet {id} must have at least one flit");
        PacketDescriptor {
            id,
            source,
            dests,
            route,
            flit_count,
            created_at,
            group: None,
        }
    }

    /// Marks this packet as one clone of a serialized multicast group.
    #[must_use]
    pub fn with_group(mut self, group: PacketId) -> Self {
        self.group = Some(group);
        self
    }

    /// Re-initializes a recycled descriptor in place for a new packet,
    /// keeping the existing [`RouteHeader`] storage (rewrite it through
    /// [`route_mut`](Self::route_mut)). This is the allocation-free
    /// counterpart of [`new`](Self::new) used by the engine's descriptor
    /// pool.
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty or `flit_count` is zero.
    pub fn reset(
        &mut self,
        id: PacketId,
        source: usize,
        dests: DestSet,
        flit_count: u8,
        created_at: Time,
        group: Option<PacketId>,
    ) {
        assert!(!dests.is_empty(), "packet {id} has no destinations");
        assert!(flit_count > 0, "packet {id} must have at least one flit");
        self.id = id;
        self.source = source;
        self.dests = dests;
        self.flit_count = flit_count;
        self.created_at = created_at;
        self.group = group;
    }

    /// The packet's unique id.
    #[must_use]
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// Index of the injecting source.
    #[must_use]
    pub fn source(&self) -> usize {
        self.source
    }

    /// The destination set.
    #[must_use]
    pub fn dests(&self) -> DestSet {
        self.dests
    }

    /// The source-routing header.
    #[must_use]
    pub fn route(&self) -> &RouteHeader {
        &self.route
    }

    /// Mutable access to the source-routing header, for rebuilding a
    /// recycled descriptor's route in place.
    #[must_use]
    pub fn route_mut(&mut self) -> &mut RouteHeader {
        &mut self.route
    }

    /// Number of flits in the packet.
    #[must_use]
    pub fn flit_count(&self) -> u8 {
        self.flit_count
    }

    /// Injection (creation) time: the instant the packet entered the source
    /// queue. Latency is measured from here.
    #[must_use]
    pub fn created_at(&self) -> Time {
        self.created_at
    }

    /// The logical packet this clone belongs to (serial multicast), if any.
    #[must_use]
    pub fn group(&self) -> Option<PacketId> {
        self.group
    }

    /// The id used for latency grouping: the serialization group if present,
    /// otherwise the packet's own id.
    #[must_use]
    pub fn logical_id(&self) -> PacketId {
        self.group.unwrap_or(self.id)
    }

    /// Returns `true` if this packet targets more than one destination.
    #[must_use]
    pub fn is_multicast(&self) -> bool {
        self.dests.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteHeader;

    fn descriptor() -> PacketDescriptor {
        PacketDescriptor::new(
            PacketId::new(3),
            1,
            DestSet::unicast(4),
            RouteHeader::for_tree(8),
            5,
            Time::from_ps(100),
        )
    }

    #[test]
    fn accessors_return_construction_values() {
        let d = descriptor();
        assert_eq!(d.id(), PacketId::new(3));
        assert_eq!(d.source(), 1);
        assert_eq!(d.dests(), DestSet::unicast(4));
        assert_eq!(d.flit_count(), 5);
        assert_eq!(d.created_at(), Time::from_ps(100));
        assert!(!d.is_multicast());
        assert_eq!(d.group(), None);
        assert_eq!(d.logical_id(), PacketId::new(3));
    }

    #[test]
    fn group_overrides_logical_id() {
        let d = descriptor().with_group(PacketId::new(99));
        assert_eq!(d.group(), Some(PacketId::new(99)));
        assert_eq!(d.logical_id(), PacketId::new(99));
    }

    #[test]
    fn multicast_detection() {
        let dests: DestSet = [1usize, 2].into_iter().collect();
        let d = PacketDescriptor::new(
            PacketId::new(1),
            0,
            dests,
            RouteHeader::for_tree(8),
            5,
            Time::ZERO,
        );
        assert!(d.is_multicast());
    }

    #[test]
    #[should_panic(expected = "no destinations")]
    fn rejects_empty_destinations() {
        let _ = PacketDescriptor::new(
            PacketId::new(1),
            0,
            DestSet::EMPTY,
            RouteHeader::for_tree(8),
            5,
            Time::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn rejects_zero_flits() {
        let _ = PacketDescriptor::new(
            PacketId::new(1),
            0,
            DestSet::unicast(0),
            RouteHeader::for_tree(8),
            0,
            Time::ZERO,
        );
    }

    #[test]
    fn reset_overwrites_everything_but_route_storage() {
        let mut d = descriptor().with_group(PacketId::new(99));
        d.route_mut().set(0, 0, crate::RouteSymbol::Both);
        d.reset(
            PacketId::new(7),
            3,
            DestSet::unicast(2),
            2,
            Time::from_ps(500),
            None,
        );
        assert_eq!(d.id(), PacketId::new(7));
        assert_eq!(d.source(), 3);
        assert_eq!(d.dests(), DestSet::unicast(2));
        assert_eq!(d.flit_count(), 2);
        assert_eq!(d.created_at(), Time::from_ps(500));
        assert_eq!(d.group(), None);
        // The route is the caller's to rewrite; reset leaves it alone.
        assert_eq!(d.route().symbol(0, 0), crate::RouteSymbol::Both);
    }

    #[test]
    #[should_panic(expected = "no destinations")]
    fn reset_rejects_empty_destinations() {
        let mut d = descriptor();
        d.reset(PacketId::new(1), 0, DestSet::EMPTY, 5, Time::ZERO, None);
    }

    #[test]
    fn packet_id_ordering() {
        assert!(PacketId::new(1) < PacketId::new(2));
        assert_eq!(PacketId::default(), PacketId::new(0));
    }
}
