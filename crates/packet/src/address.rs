//! Source-routing address encodings.
//!
//! Two encodings coexist in the paper:
//!
//! - The unicast **baseline** network stores one bit per fanout level
//!   ([`BaselinePath`]): at level *l* the packet turns to the top (`0`) or
//!   bottom (`1`) output, so an 8×8 MoT needs only 3 bits.
//! - The parallel-multicast networks store a 2-bit [`RouteSymbol`] for every
//!   *non-speculative* fanout node of the source's tree ([`RouteHeader`]).
//!   A node not on any intended path holds [`RouteSymbol::Drop`], which is
//!   how non-speculative nodes throttle the redundant copies created by
//!   their speculative neighbors.
//!
//! `RouteHeader` stores a symbol slot for **all** nodes of the tree (simpler
//! and branch-free at simulation time); the *encoded* wire size, which only
//! counts non-speculative fields, is computed by [`crate::coding`].

use std::fmt;

/// Number of fanout nodes in a binary fanout tree serving `n` leaves.
///
/// A tree with `n = 2^L` leaves has `1 + 2 + … + n/2 = n − 1` internal
/// routing nodes.
#[must_use]
pub const fn fanout_tree_nodes(n: usize) -> usize {
    n - 1
}

/// The 2-bit routing symbol read by a non-speculative fanout node.
///
/// # Examples
///
/// ```
/// use asynoc_packet::RouteSymbol;
///
/// assert_eq!(RouteSymbol::from_bits(0b10), RouteSymbol::Bottom);
/// assert_eq!(RouteSymbol::Top.to_bits(), 0b01);
/// assert!(RouteSymbol::Drop.is_drop());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RouteSymbol {
    /// The packet copy is redundant at this node: throttle it.
    #[default]
    Drop,
    /// Forward on the top output only.
    Top,
    /// Forward on the bottom output only.
    Bottom,
    /// Replicate on both outputs (multicast branch point).
    Both,
}

impl RouteSymbol {
    /// All symbols, in bit-encoding order.
    pub const ALL: [RouteSymbol; 4] = [
        RouteSymbol::Drop,
        RouteSymbol::Top,
        RouteSymbol::Bottom,
        RouteSymbol::Both,
    ];

    /// Returns the 2-bit wire encoding.
    #[must_use]
    pub const fn to_bits(self) -> u8 {
        match self {
            RouteSymbol::Drop => 0b00,
            RouteSymbol::Top => 0b01,
            RouteSymbol::Bottom => 0b10,
            RouteSymbol::Both => 0b11,
        }
    }

    /// Decodes a 2-bit wire encoding (only the low two bits are read).
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b01 => RouteSymbol::Top,
            0b10 => RouteSymbol::Bottom,
            0b11 => RouteSymbol::Both,
            _ => RouteSymbol::Drop,
        }
    }

    /// Builds the symbol from per-output demand flags.
    #[must_use]
    pub const fn from_ports(top: bool, bottom: bool) -> Self {
        match (top, bottom) {
            (false, false) => RouteSymbol::Drop,
            (true, false) => RouteSymbol::Top,
            (false, true) => RouteSymbol::Bottom,
            (true, true) => RouteSymbol::Both,
        }
    }

    /// Returns `true` if the top output is demanded.
    #[must_use]
    pub const fn wants_top(self) -> bool {
        matches!(self, RouteSymbol::Top | RouteSymbol::Both)
    }

    /// Returns `true` if the bottom output is demanded.
    #[must_use]
    pub const fn wants_bottom(self) -> bool {
        matches!(self, RouteSymbol::Bottom | RouteSymbol::Both)
    }

    /// Returns `true` if the packet copy must be throttled here.
    #[must_use]
    pub const fn is_drop(self) -> bool {
        matches!(self, RouteSymbol::Drop)
    }

    /// Number of output copies this symbol produces.
    #[must_use]
    pub const fn copy_count(self) -> usize {
        self.wants_top() as usize + self.wants_bottom() as usize
    }
}

impl fmt::Display for RouteSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteSymbol::Drop => "drop",
            RouteSymbol::Top => "top",
            RouteSymbol::Bottom => "bottom",
            RouteSymbol::Both => "both",
        };
        f.write_str(s)
    }
}

/// Per-tree-node routing symbols for a parallel-multicast packet.
///
/// Nodes are indexed in level order: the root is node 0, level *l* starts at
/// `2^l − 1`, and node *(l, i)* is `2^l − 1 + i`. This matches
/// `asynoc-topology`'s fanout-node numbering.
///
/// # Examples
///
/// ```
/// use asynoc_packet::{RouteHeader, RouteSymbol};
///
/// let mut header = RouteHeader::for_tree(8);
/// header.set(0, 0, RouteSymbol::Both);
/// assert_eq!(header.symbol(0, 0), RouteSymbol::Both);
/// assert_eq!(header.symbol(2, 3), RouteSymbol::Drop); // unset ⇒ throttle
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RouteHeader {
    symbols: Vec<RouteSymbol>,
    levels: u32,
}

impl RouteHeader {
    /// Creates an all-[`Drop`](RouteSymbol::Drop) header for a fanout tree
    /// with `n` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is less than 2.
    #[must_use]
    pub fn for_tree(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "fanout tree size must be a power of two >= 2, got {n}"
        );
        RouteHeader {
            symbols: vec![RouteSymbol::Drop; fanout_tree_nodes(n)],
            levels: n.trailing_zeros(),
        }
    }

    /// Re-initializes the header in place to all-[`Drop`](RouteSymbol::Drop)
    /// for a fanout tree with `n` leaves, reusing the existing symbol
    /// storage when it is large enough (the allocation-free counterpart of
    /// [`for_tree`](Self::for_tree)).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is less than 2.
    pub fn reset_for_tree(&mut self, n: usize) {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "fanout tree size must be a power of two >= 2, got {n}"
        );
        self.symbols.clear();
        self.symbols.resize(fanout_tree_nodes(n), RouteSymbol::Drop);
        self.levels = n.trailing_zeros();
    }

    /// Number of fanout levels (`log2` of the leaf count).
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total number of node slots in the header.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.symbols.len()
    }

    fn slot(&self, level: u32, index: usize) -> usize {
        assert!(level < self.levels, "level {level} out of range");
        let width = 1usize << level;
        assert!(
            index < width,
            "node index {index} out of range for level {level} (width {width})"
        );
        width - 1 + index
    }

    /// Returns the symbol for node *(level, index)*.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the tree.
    #[must_use]
    pub fn symbol(&self, level: u32, index: usize) -> RouteSymbol {
        self.symbols[self.slot(level, index)]
    }

    /// Sets the symbol for node *(level, index)*.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the tree.
    pub fn set(&mut self, level: u32, index: usize, symbol: RouteSymbol) {
        let slot = self.slot(level, index);
        self.symbols[slot] = symbol;
    }

    /// Iterates `(level, index, symbol)` over all node slots in level order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize, RouteSymbol)> + '_ {
        (0..self.levels).flat_map(move |level| {
            let width = 1usize << level;
            (0..width).map(move |index| (level, index, self.symbol(level, index)))
        })
    }

    /// Number of non-`Drop` symbols (i.e. nodes the packet actually visits
    /// on intended paths).
    #[must_use]
    pub fn active_nodes(&self) -> usize {
        self.symbols.iter().filter(|s| !s.is_drop()).count()
    }
}

/// Per-level turn bits for a baseline unicast packet.
///
/// Bit *l* is `false` for the top output and `true` for the bottom output at
/// fanout level *l* — 1 bit per node on the path, `log2(n)` bits total.
///
/// # Examples
///
/// ```
/// use asynoc_packet::BaselinePath;
///
/// let path = BaselinePath::to_destination(8, 5); // 5 = 0b101
/// assert_eq!(path.bits(), &[true, false, true]);
/// assert_eq!(path.destination(), 5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BaselinePath {
    bits: Vec<bool>,
}

impl BaselinePath {
    /// Computes the turn bits from a source's fanout root to `dest` in an
    /// `n`-leaf tree. The most significant destination bit decides the first
    /// (root) turn.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2, or `dest >= n`.
    #[must_use]
    pub fn to_destination(n: usize, dest: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "fanout tree size must be a power of two >= 2, got {n}"
        );
        assert!(dest < n, "destination {dest} out of range for size {n}");
        let levels = n.trailing_zeros();
        let bits = (0..levels)
            .map(|level| dest >> (levels - 1 - level) & 1 == 1)
            .collect();
        BaselinePath { bits }
    }

    /// The per-level turn bits, root first.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The turn at fanout level `level` (`true` = bottom output).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn turn(&self, level: u32) -> bool {
        self.bits[level as usize]
    }

    /// Reconstructs the destination index encoded by the path.
    #[must_use]
    pub fn destination(&self) -> usize {
        self.bits
            .iter()
            .fold(0usize, |acc, &bit| (acc << 1) | bit as usize)
    }

    /// Number of bits (= fanout levels).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the path is empty (degenerate 1-leaf tree).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_bits_roundtrip() {
        for symbol in RouteSymbol::ALL {
            assert_eq!(RouteSymbol::from_bits(symbol.to_bits()), symbol);
        }
    }

    #[test]
    fn symbol_from_bits_masks_high_bits() {
        assert_eq!(RouteSymbol::from_bits(0b111), RouteSymbol::Both);
        assert_eq!(RouteSymbol::from_bits(0b100), RouteSymbol::Drop);
    }

    #[test]
    fn symbol_port_flags() {
        assert!(RouteSymbol::Top.wants_top() && !RouteSymbol::Top.wants_bottom());
        assert!(!RouteSymbol::Bottom.wants_top() && RouteSymbol::Bottom.wants_bottom());
        assert!(RouteSymbol::Both.wants_top() && RouteSymbol::Both.wants_bottom());
        assert!(!RouteSymbol::Drop.wants_top() && !RouteSymbol::Drop.wants_bottom());
        assert_eq!(RouteSymbol::Both.copy_count(), 2);
        assert_eq!(RouteSymbol::Drop.copy_count(), 0);
    }

    #[test]
    fn symbol_from_ports_matches_flags() {
        for symbol in RouteSymbol::ALL {
            assert_eq!(
                RouteSymbol::from_ports(symbol.wants_top(), symbol.wants_bottom()),
                symbol
            );
        }
    }

    #[test]
    fn header_defaults_to_drop_everywhere() {
        let header = RouteHeader::for_tree(8);
        assert_eq!(header.node_count(), 7);
        assert_eq!(header.levels(), 3);
        assert!(header.iter().all(|(_, _, s)| s.is_drop()));
        assert_eq!(header.active_nodes(), 0);
    }

    #[test]
    fn header_set_and_get() {
        let mut header = RouteHeader::for_tree(8);
        header.set(1, 1, RouteSymbol::Top);
        header.set(2, 3, RouteSymbol::Both);
        assert_eq!(header.symbol(1, 1), RouteSymbol::Top);
        assert_eq!(header.symbol(2, 3), RouteSymbol::Both);
        assert_eq!(header.active_nodes(), 2);
    }

    #[test]
    fn header_iter_covers_every_slot_once() {
        let header = RouteHeader::for_tree(16);
        let slots: Vec<(u32, usize)> = header.iter().map(|(l, i, _)| (l, i)).collect();
        assert_eq!(slots.len(), 15);
        let mut dedup = slots.clone();
        dedup.dedup();
        assert_eq!(dedup, slots);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn header_rejects_non_power_of_two() {
        let _ = RouteHeader::for_tree(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn header_rejects_bad_index() {
        let header = RouteHeader::for_tree(8);
        let _ = header.symbol(1, 2);
    }

    #[test]
    fn reset_for_tree_matches_fresh_header() {
        let mut header = RouteHeader::for_tree(16);
        header.set(3, 5, RouteSymbol::Both);
        header.reset_for_tree(8);
        assert_eq!(header, RouteHeader::for_tree(8));
        header.reset_for_tree(16);
        assert_eq!(header, RouteHeader::for_tree(16));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn reset_for_tree_rejects_non_power_of_two() {
        let mut header = RouteHeader::for_tree(8);
        header.reset_for_tree(3);
    }

    #[test]
    fn baseline_path_known_values() {
        // dest 5 = 0b101 in an 8-leaf tree: bottom, top, bottom.
        let path = BaselinePath::to_destination(8, 5);
        assert_eq!(path.bits(), &[true, false, true]);
        assert_eq!(path.len(), 3);
        assert!(path.turn(0));
        assert!(!path.turn(1));
    }

    #[test]
    fn baseline_path_is_three_bits_for_8x8_and_four_for_16x16() {
        assert_eq!(BaselinePath::to_destination(8, 0).len(), 3);
        assert_eq!(BaselinePath::to_destination(16, 0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn baseline_path_rejects_bad_destination() {
        let _ = BaselinePath::to_destination(8, 8);
    }

    #[test]
    fn baseline_path_roundtrips() {
        for levels in 1u32..7 {
            let n = 1usize << levels;
            for dest in 0..n {
                let path = BaselinePath::to_destination(n, dest);
                assert_eq!(path.destination(), dest);
                assert_eq!(path.len() as u32, levels);
            }
        }
    }

    #[test]
    fn header_set_is_local() {
        for levels in 1u32..6 {
            let n = 1usize << levels;
            for seed in 0u64..64 {
                let mut header = RouteHeader::for_tree(n);
                let level = (seed % levels as u64) as u32;
                let index = (seed / 7) as usize % (1usize << level);
                header.set(level, index, RouteSymbol::Both);
                let active: Vec<_> = header
                    .iter()
                    .filter(|(_, _, s)| !s.is_drop())
                    .map(|(l, i, _)| (l, i))
                    .collect();
                assert_eq!(active, vec![(level, index)]);
            }
        }
    }
}
