//! Destination sets for unicast and multicast packets.
//!
//! A multicast packet targets "an arbitrary subset of destinations". Network
//! sizes in the paper (8×8, 16×16, and the projected larger MoTs) stay well
//! under 64 endpoints, so a `u64` bitmask is an exact, allocation-free
//! representation with O(1) membership tests and popcount-based sizing.

use std::fmt;

/// The maximum number of destinations a [`DestSet`] can address.
pub const MAX_DESTINATIONS: usize = 64;

/// A set of destination indices in `0..64`.
///
/// # Examples
///
/// ```
/// use asynoc_packet::DestSet;
///
/// let mut set = DestSet::unicast(3);
/// assert!(set.is_unicast());
/// set.insert(5);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 5]);
/// assert!(set.contains(5) && !set.contains(4));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DestSet(u64);

impl DestSet {
    /// The empty set.
    pub const EMPTY: DestSet = DestSet(0);

    /// Creates an empty set.
    #[must_use]
    pub const fn new() -> Self {
        DestSet(0)
    }

    /// Creates a single-destination set.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= 64`.
    #[must_use]
    pub fn unicast(dest: usize) -> Self {
        let mut set = DestSet::new();
        set.insert(dest);
        set
    }

    /// Creates a set from a raw bitmask (bit *i* set ⇒ destination *i*).
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        DestSet(bits)
    }

    /// Returns the raw bitmask.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Adds `dest` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `dest >= 64`.
    pub fn insert(&mut self, dest: usize) {
        assert!(
            dest < MAX_DESTINATIONS,
            "destination {dest} exceeds DestSet capacity {MAX_DESTINATIONS}"
        );
        self.0 |= 1 << dest;
    }

    /// Removes `dest` from the set; no-op if absent or out of range.
    pub fn remove(&mut self, dest: usize) {
        if dest < MAX_DESTINATIONS {
            self.0 &= !(1 << dest);
        }
    }

    /// Returns `true` if `dest` is in the set.
    #[must_use]
    pub fn contains(self, dest: usize) -> bool {
        dest < MAX_DESTINATIONS && self.0 & (1 << dest) != 0
    }

    /// Returns the number of destinations.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the set holds exactly one destination.
    #[must_use]
    pub const fn is_unicast(self) -> bool {
        self.0.count_ones() == 1
    }

    /// Returns the smallest destination, or `None` if the set is empty.
    #[must_use]
    pub fn first(self) -> Option<usize> {
        if self.is_empty() {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Keeps only destinations in `low..high` (a subtree's leaf range).
    #[must_use]
    pub fn restricted_to(self, low: usize, high: usize) -> DestSet {
        debug_assert!(low <= high && high <= MAX_DESTINATIONS);
        if low >= MAX_DESTINATIONS {
            return DestSet::EMPTY;
        }
        let span = high - low;
        let mask = if span >= 64 {
            u64::MAX
        } else {
            ((1u64 << span) - 1) << low
        };
        DestSet(self.0 & mask)
    }

    /// Returns `true` if any destination lies in `low..high`.
    #[must_use]
    pub fn intersects_range(self, low: usize, high: usize) -> bool {
        !self.restricted_to(low, high).is_empty()
    }

    /// Returns the union of two sets.
    #[must_use]
    pub const fn union(self, other: DestSet) -> DestSet {
        DestSet(self.0 | other.0)
    }

    /// Iterates over destinations in ascending order.
    pub fn iter(self) -> Iter {
        Iter { bits: self.0 }
    }
}

/// Iterator over the destinations of a [`DestSet`], ascending.
#[derive(Clone, Debug)]
pub struct Iter {
    bits: u64,
}

impl Iterator for Iter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            let dest = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(dest)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for DestSet {
    type Item = usize;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<usize> for DestSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = DestSet::new();
        for dest in iter {
            set.insert(dest);
        }
        set
    }
}

impl Extend<usize> for DestSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for dest in iter {
            self.insert(dest);
        }
    }
}

impl fmt::Display for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, dest) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{dest}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc_kernel::SimRng;

    #[test]
    fn unicast_has_one_member() {
        let set = DestSet::unicast(7);
        assert!(set.is_unicast());
        assert_eq!(set.len(), 1);
        assert_eq!(set.first(), Some(7));
        assert!(set.contains(7));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut set = DestSet::new();
        set.insert(0);
        set.insert(63);
        assert_eq!(set.len(), 2);
        set.remove(0);
        assert!(!set.contains(0));
        assert!(set.contains(63));
        set.remove(63);
        assert!(set.is_empty());
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut set = DestSet::unicast(1);
        set.remove(500);
        assert_eq!(set, DestSet::unicast(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn insert_rejects_out_of_range() {
        DestSet::new().insert(64);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!DestSet::from_bits(u64::MAX).contains(64));
    }

    #[test]
    fn iter_is_ascending_and_exact() {
        let set: DestSet = [5usize, 1, 3].into_iter().collect();
        let items: Vec<usize> = set.iter().collect();
        assert_eq!(items, vec![1, 3, 5]);
        assert_eq!(set.iter().len(), 3);
    }

    #[test]
    fn restricted_to_keeps_subtree_range() {
        let set: DestSet = [0usize, 2, 3, 4, 7].into_iter().collect();
        let top = set.restricted_to(0, 4);
        assert_eq!(top.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
        let bottom = set.restricted_to(4, 8);
        assert_eq!(bottom.iter().collect::<Vec<_>>(), vec![4, 7]);
        assert!(set.intersects_range(4, 8));
        assert!(!set.intersects_range(5, 7));
    }

    #[test]
    fn restricted_to_full_width() {
        let set = DestSet::from_bits(u64::MAX);
        assert_eq!(set.restricted_to(0, 64), set);
        assert_eq!(set.restricted_to(64, 64), DestSet::EMPTY);
    }

    #[test]
    fn union_merges() {
        let a = DestSet::unicast(1);
        let b = DestSet::unicast(2);
        assert_eq!(a.union(b).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn display_lists_members() {
        let set: DestSet = [2usize, 4].into_iter().collect();
        assert_eq!(set.to_string(), "{2,4}");
        assert_eq!(DestSet::EMPTY.to_string(), "{}");
    }

    fn bits64(rng: &mut SimRng) -> u64 {
        rng.range_inclusive(0, usize::MAX) as u64
    }

    #[test]
    fn collect_matches_membership() {
        let mut rng = SimRng::seed_from(5);
        for _case in 0..64 {
            let count = rng.index(20);
            let dests: std::collections::HashSet<usize> =
                (0..count).map(|_| rng.index(64)).collect();
            let set: DestSet = dests.iter().copied().collect();
            assert_eq!(set.len(), dests.len());
            for d in 0..64 {
                assert_eq!(set.contains(d), dests.contains(&d));
            }
        }
    }

    #[test]
    fn restrict_partitions() {
        let mut rng = SimRng::seed_from(6);
        for case in 0..64 {
            let bits = match case {
                0 => 0,
                1 => u64::MAX,
                _ => bits64(&mut rng),
            };
            for split in [0, 1, 31, 32, 63, 64, rng.range_inclusive(0, 64)] {
                let set = DestSet::from_bits(bits);
                let low = set.restricted_to(0, split);
                let high = set.restricted_to(split, 64);
                assert_eq!(low.union(high), set);
                assert_eq!(low.bits() & high.bits(), 0);
            }
        }
    }

    #[test]
    fn iter_sorted() {
        let mut rng = SimRng::seed_from(7);
        for case in 0..64 {
            let bits = match case {
                0 => 0,
                1 => u64::MAX,
                _ => bits64(&mut rng),
            };
            let items: Vec<usize> = DestSet::from_bits(bits).iter().collect();
            assert!(items.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(items.len(), bits.count_ones() as usize);
        }
    }
}
