//! Credit-protocol property tests for the VC mesh substrate.
//!
//! Three invariants, each checked across ten seeds and both multicast
//! schemes:
//!
//! 1. **Credits never go negative and are conserved.** The router's
//!    serial-mode ledger audits every credit decrement against the
//!    receiver's free-slot count; `credit_checks` counts the audits and
//!    `credit_violations` the failures. (Debug builds also back this
//!    with `debug_assert!`s inside the switch-allocation path, so a
//!    violation aborts the test binary outright.)
//! 2. **No VC deadlock under random multicast traffic.** Every injected
//!    packet must finish draining before the engine's hard cap — a
//!    cyclic VC dependency would strand flits and show up as
//!    `packets_incomplete > 0`.
//! 3. **Bounded progress.** A run observed through the streaming
//!    telemetry watchdog must never trip the mid-run `no_progress`
//!    watchpoint (consecutive delivery-free windows with copies still
//!    in flight). The engine ends its drain once every measured
//!    header has landed, so tail flits of the youngest worms may
//!    legitimately remain at close — the close-time residue record is
//!    tolerated, a mid-run stall is not.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use asynoc_engine::Observer;
use asynoc_kernel::Duration;
use asynoc_mesh::MeshSize;
use asynoc_stats::Phases;
use asynoc_telemetry::{JsonValue, StreamConfig, StreamSink, TimeSeries, WatchConfig};
use asynoc_traffic::Benchmark;
use asynoc_vcmesh::{McastScheme, VcMeshConfig, VcMeshNetwork, VcMeshReport};

/// Ten fixed seeds; Fibonacci so the spacing is irregular.
const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

const SCHEMES: [McastScheme; 2] = [McastScheme::XyTree, McastScheme::Dpm];

fn phases() -> Phases {
    Phases::new(Duration::from_ns(80), Duration::from_ns(800))
}

fn network(seed: u64, mcast: McastScheme, shards: usize) -> VcMeshNetwork {
    let size = MeshSize::new(4, 4).expect("4x4 is a valid mesh size");
    VcMeshNetwork::new(
        VcMeshConfig::new(size)
            .with_seed(seed)
            .with_mcast(mcast)
            .with_shards(shards),
    )
    .expect("config is valid")
}

fn run(seed: u64, mcast: McastScheme, shards: usize) -> VcMeshReport {
    network(seed, mcast, shards)
        .run(Benchmark::Multicast10, 0.1, phases())
        .expect("run succeeds")
}

/// Credits are audited on every grant in serial mode, and the audit
/// never finds a negative or over-returned credit counter.
#[test]
fn credits_are_conserved_and_never_negative_across_seeds() {
    for seed in SEEDS {
        for mcast in SCHEMES {
            let report = run(seed, mcast, 1);
            assert!(
                report.credit_checks > 0,
                "seed {seed} {mcast}: the credit ledger never armed"
            );
            assert_eq!(
                report.credit_violations, 0,
                "seed {seed} {mcast}: {} credit conservation violation(s)",
                report.credit_violations
            );
        }
    }
}

/// Random multicast traffic drains completely under both schemes: no
/// packet is stranded by a cyclic VC dependency.
#[test]
fn no_vc_deadlock_under_random_multicast_traffic() {
    for seed in SEEDS {
        for mcast in SCHEMES {
            let report = run(seed, mcast, 1);
            assert!(
                report.packets_measured > 0,
                "seed {seed} {mcast}: no packets measured — traffic never started"
            );
            assert_eq!(
                report.packets_incomplete, 0,
                "seed {seed} {mcast}: {} packet(s) stranded (VC deadlock?)",
                report.packets_incomplete
            );
        }
    }
}

/// Shared byte sink so the test can own the stream the sink writes.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The streaming watchdog sees bounded progress: no `no_progress`
/// watchpoint fires mid-run, and the close-time residue check finds
/// every flit delivered.
#[test]
fn progress_watchdog_stays_quiet_on_clean_multicast_runs() {
    for seed in SEEDS {
        let buf = SharedBuf::default();
        let net = network(seed, McastScheme::Dpm, 1);
        let endpoints = net.config().size().endpoints();
        let mut sink = StreamSink::new(
            Box::new(buf.clone()),
            StreamConfig {
                substrate: "vcmesh".to_string(),
                config: JsonValue::Object(vec![]),
                window: Duration::from_ns(100),
                trace_limit: None,
                watch: WatchConfig::default(),
            },
            phases(),
            endpoints,
            TimeSeries::single_level(Duration::from_ns(100), "router", endpoints),
            Box::new(|router: usize| format!("r{router}")),
        )
        .expect("sink construction succeeds");
        let report = {
            let mut observers: [&mut dyn Observer<usize>; 1] = [&mut sink];
            net.run_with_observers(Benchmark::Multicast10, 0.1, phases(), &mut observers)
                .expect("run succeeds")
        };
        assert_eq!(
            report.packets_incomplete, 0,
            "seed {seed}: run did not drain"
        );
        sink.finish(JsonValue::Object(vec![]))
            .expect("finish succeeds");
        let text = String::from_utf8(buf.0.borrow().clone()).expect("stream is UTF-8");
        for line in text
            .lines()
            .filter(|l| l.contains("\"type\":\"watchpoint\""))
        {
            assert!(
                line.contains("run ended with"),
                "seed {seed}: mid-run watchpoint fired:\n{line}"
            );
        }
        assert!(
            !text.contains("consecutive windows"),
            "seed {seed}: progress stalled mid-run"
        );
    }
}
