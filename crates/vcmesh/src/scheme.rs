//! Multicast routing schemes on the credit-based VC mesh.
//!
//! Both schemes answer the same question a router asks when a header flit
//! reaches the front of an input FIFO: *how do I split this flit's
//! destination subset across my output ports?* The answer is a partition
//! of the subset — one piece per output branch, plus a local piece when
//! this router is itself a destination — and the router forwards one flit
//! copy per non-empty piece.
//!
//! - **Tree-based XY** groups destinations by their XY first hop, so the
//!   packet traces the XY multicast tree and forks exactly at divergence
//!   points (the scheme surveyed in arXiv 1610.00751).
//! - **Dynamic Partition Merging** (Tiwari et al., arXiv 2108.00566)
//!   additionally considers *merging* the whole partition into a single
//!   worm toward the nearest destination whenever that path overlap makes
//!   the total link count cheaper; the choice is re-evaluated at every
//!   hop. Because the tree split is always among the candidates, DPM's
//!   planned (and therefore simulated) link traversals are ≤ the tree's
//!   for the same destination set, by induction over the recursion.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use asynoc_mesh::{route_port, MeshSize, Port, RouterId};
use asynoc_packet::DestSet;

/// Which multicast routing scheme the VC mesh runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum McastScheme {
    /// Tree-based XY multicast: fork at XY divergence points.
    #[default]
    XyTree,
    /// Dynamic Partition Merging: merge partitions whose paths overlap.
    Dpm,
}

impl McastScheme {
    /// The scheme's CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            McastScheme::XyTree => "xy-tree",
            McastScheme::Dpm => "dpm",
        }
    }
}

impl fmt::Display for McastScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for McastScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "xy-tree" => Ok(McastScheme::XyTree),
            "dpm" => Ok(McastScheme::Dpm),
            other => Err(format!(
                "unknown multicast scheme '{other}' (use xy-tree or dpm)"
            )),
        }
    }
}

/// The router one hop from `here` through `port` (`here` for `Local`).
///
/// # Panics
///
/// Panics (in debug builds) if the hop leaves the mesh.
#[must_use]
pub(crate) fn step(size: MeshSize, here: usize, port: Port) -> usize {
    let (x, y) = size.coords(here);
    match port {
        Port::North => size.index(x, y - 1),
        Port::South => size.index(x, y + 1),
        Port::East => size.index(x + 1, y),
        Port::West => size.index(x - 1, y),
        Port::Local => here,
    }
}

fn router_id(size: MeshSize, here: usize) -> RouterId {
    let (x, y) = size.coords(here);
    RouterId { x, y }
}

/// Splits `branch` by XY first hop from `here`; index by [`Port::index`].
/// `here` itself (if present) lands in the `Local` slot.
#[must_use]
pub fn tree_partition(size: MeshSize, here: usize, branch: DestSet) -> [DestSet; 5] {
    let at = router_id(size, here);
    let mut parts = [DestSet::EMPTY; 5];
    for dest in branch.iter() {
        parts[route_port(size, at, dest).index()].insert(dest);
    }
    parts
}

/// The nearest remaining destination (ties broken toward the lowest
/// index), which a merged worm heads for first.
fn greedy_target(size: MeshSize, here: usize, rest: DestSet) -> usize {
    let mut best = usize::MAX;
    let mut best_hops = usize::MAX;
    for dest in rest.iter() {
        let hops = size.hops(here, dest);
        if hops < best_hops {
            best_hops = hops;
            best = dest;
        }
    }
    best
}

/// Memoized Dynamic Partition Merging planner.
///
/// `cost(here, branch)` is the minimum number of link traversals needed to
/// deliver `branch` from `here` under DPM's two candidate moves (tree
/// split vs. merged worm); `partition` makes the matching choice. The
/// memo is a pure cache — lookups never affect results — so the planner
/// clones freely into shard-local models.
#[derive(Clone, Debug, Default)]
pub struct DpmPlanner {
    memo: HashMap<(usize, u64), u64>,
}

impl DpmPlanner {
    /// Creates an empty planner.
    #[must_use]
    pub fn new() -> Self {
        DpmPlanner::default()
    }

    /// Minimum link traversals to deliver `branch` from `here`.
    ///
    /// Terminates because every recursive call strictly decreases the
    /// pair (destination count, distance to the nearest destination):
    /// a tree split hands each subset one hop closer to all its members,
    /// and a merged worm's hop toward the greedy target shrinks the
    /// minimum distance by one.
    #[must_use]
    pub fn cost(&mut self, size: MeshSize, here: usize, branch: DestSet) -> u64 {
        let mut rest = branch;
        rest.remove(here);
        if rest.is_empty() {
            return 0;
        }
        if let Some(&cached) = self.memo.get(&(here, rest.bits())) {
            return cached;
        }
        let (tree, worm) = self.candidates(size, here, rest);
        let best = tree.min(worm);
        self.memo.insert((here, rest.bits()), best);
        best
    }

    /// Splits `branch` across output ports at `here`, merging the whole
    /// remainder into one worm when that is strictly cheaper than the
    /// XY tree split (ties keep the tree).
    #[must_use]
    pub fn partition(&mut self, size: MeshSize, here: usize, branch: DestSet) -> [DestSet; 5] {
        let mut parts = tree_partition(size, here, branch);
        let mut rest = branch;
        rest.remove(here);
        if rest.len() < 2 {
            return parts; // nothing to merge
        }
        let (tree, worm) = self.candidates(size, here, rest);
        if worm < tree {
            let merged = route_port(size, router_id(size, here), greedy_target(size, here, rest));
            for port in [Port::North, Port::South, Port::East, Port::West] {
                parts[port.index()] = DestSet::EMPTY;
            }
            parts[merged.index()] = rest;
        }
        parts
    }

    /// (tree cost, worm cost) of delivering the non-local set `rest`.
    fn candidates(&mut self, size: MeshSize, here: usize, rest: DestSet) -> (u64, u64) {
        let parts = tree_partition(size, here, rest);
        let mut tree = 0u64;
        for port in [Port::North, Port::South, Port::East, Port::West] {
            let part = parts[port.index()];
            if !part.is_empty() {
                tree += 1 + self.cost(size, step(size, here, port), part);
            }
        }
        let toward = route_port(size, router_id(size, here), greedy_target(size, here, rest));
        let worm = 1 + self.cost(size, step(size, here, toward), rest);
        (tree, worm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size4() -> MeshSize {
        MeshSize::new(4, 4).unwrap()
    }

    fn set(dests: &[usize]) -> DestSet {
        dests.iter().copied().collect()
    }

    /// Walks a scheme's partitions from `source` until every destination
    /// is locally delivered, returning total link traversals.
    fn walk(size: MeshSize, dpm: Option<&mut DpmPlanner>, source: usize, dests: DestSet) -> u64 {
        let mut dpm = dpm;
        let mut frontier = vec![(source, dests)];
        let mut links = 0u64;
        let mut delivered = Vec::new();
        let mut steps = 0;
        while let Some((here, branch)) = frontier.pop() {
            steps += 1;
            assert!(steps < 10_000, "partition walk does not converge");
            let parts = match dpm.as_deref_mut() {
                Some(planner) => planner.partition(size, here, branch),
                None => tree_partition(size, here, branch),
            };
            let mut rebuilt = DestSet::EMPTY;
            for port in Port::ALL {
                let part = parts[port.index()];
                rebuilt = rebuilt.union(part);
                if part.is_empty() {
                    continue;
                }
                if port == Port::Local {
                    assert_eq!(part, DestSet::unicast(here), "local piece must be here");
                    delivered.push(here);
                } else {
                    links += 1;
                    frontier.push((step(size, here, port), part));
                }
            }
            assert_eq!(rebuilt, branch, "partition must be exact at {here}");
        }
        delivered.sort_unstable();
        assert_eq!(delivered, dests.iter().collect::<Vec<_>>());
        links
    }

    #[test]
    fn parses_and_displays() {
        assert_eq!(
            "xy-tree".parse::<McastScheme>().unwrap(),
            McastScheme::XyTree
        );
        assert_eq!("dpm".parse::<McastScheme>().unwrap(), McastScheme::Dpm);
        assert!("vct".parse::<McastScheme>().is_err());
        assert_eq!(McastScheme::Dpm.to_string(), "dpm");
    }

    #[test]
    fn tree_partition_groups_by_first_hop() {
        let s = size4();
        // From router 5 = (1,1): 6=(2,1) east, 4=(0,1) west, 1=(1,0)
        // north, 13=(1,3) south, 5 itself local.
        let parts = tree_partition(s, 5, set(&[1, 4, 5, 6, 13]));
        assert_eq!(parts[Port::North.index()], set(&[1]));
        assert_eq!(parts[Port::South.index()], set(&[13]));
        assert_eq!(parts[Port::East.index()], set(&[6]));
        assert_eq!(parts[Port::West.index()], set(&[4]));
        assert_eq!(parts[Port::Local.index()], set(&[5]));
        // X-first: 10=(2,2) leaves east even though it is also south.
        let parts = tree_partition(s, 5, set(&[10]));
        assert_eq!(parts[Port::East.index()], set(&[10]));
    }

    #[test]
    fn tree_walk_matches_manhattan_union() {
        let s = size4();
        // A single destination costs exactly its hop count.
        assert_eq!(walk(s, None, 0, set(&[15])), s.hops(0, 15) as u64);
        // Two destinations sharing an XY prefix pay it once.
        let shared = walk(s, None, 0, set(&[3, 7]));
        assert_eq!(shared, 3 + 1, "prefix 0→3 shared, one extra hop to 7");
    }

    #[test]
    fn dpm_cost_never_exceeds_tree_cost() {
        let s = size4();
        let mut dpm = DpmPlanner::new();
        let cases: &[&[usize]] = &[
            &[15],
            &[3, 12],
            &[1, 4, 5],
            &[2, 7, 8, 13],
            &[0, 3, 12, 15],
            &[1, 2, 3, 5, 6, 7, 9, 10, 11],
            &[4, 6, 9, 11, 14],
        ];
        for dests in cases {
            for source in 0..s.endpoints() {
                let branch = set(dests);
                let tree = walk(s, None, source, branch);
                let merged = walk(s, Some(&mut dpm), source, branch);
                assert!(
                    merged <= tree,
                    "DPM ({merged}) beat by tree ({tree}) from {source} to {branch}"
                );
                assert_eq!(
                    merged,
                    dpm.cost(s, source, branch),
                    "walked links must equal planned cost from {source}"
                );
            }
        }
    }

    #[test]
    fn dpm_merges_collinear_destinations() {
        let s = size4();
        let mut dpm = DpmPlanner::new();
        // 1=(1,0) and 14=(2,3) from 0: the tree forks east + south at the
        // source (cost 1 + 5); merging through the near destination first
        // is not cheaper here, but a chain 1=(1,0), 5=(1,1), 13=(1,3) is
        // one straight worm after the first hop.
        let chain = set(&[1, 5, 13]);
        assert_eq!(dpm.cost(s, 0, chain), 4, "east then straight south");
        let parts = dpm.partition(s, 1, set(&[5, 13]));
        assert_eq!(parts[Port::South.index()], set(&[5, 13]), "merged worm");
    }
}
