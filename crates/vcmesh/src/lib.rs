//! A credit-based virtual-channel 2-D mesh NoC with in-network
//! multicast — the modern synchronous baseline the paper's speculative
//! MoT competes against.
//!
//! Where the `asynoc-mesh` baseline serializes every multicast into
//! unicast clones over single-flit handshaken links, this substrate
//! models the reference router microarchitecture used by synchronous
//! multicast studies: per-VC input FIFOs, credit-based flow control with
//! credit return as first-class sim events, VC and switch allocation,
//! and two competing in-network multicast schemes — tree-based XY
//! (fork at divergence points) and Dynamic Partition Merging (Tiwari et
//! al., arXiv 2108.00566), which merges partitions whose paths overlap.
//!
//! It runs on the same `asynoc-engine` event loop as the other two
//! substrates, so every command, observer, fault plan, stream schema,
//! and sharding mode applies unchanged.

pub mod scheme;
pub mod sim;

pub use asynoc_kernel::SchedulerKind;
pub use asynoc_mesh::{MeshError, MeshSize};
pub use scheme::{DpmPlanner, McastScheme};
pub use sim::{VcMeshConfig, VcMeshNetwork, VcMeshReport, VcMeshTiming, VC_COUNT, VC_DEPTH};
