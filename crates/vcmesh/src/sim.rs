//! The credit-based VC mesh simulator, expressed as an engine
//! [`SimModel`].
//!
//! Unlike the wormhole mesh baseline (single-flit channels, stall
//! pressure propagating link by link), this substrate models the modern
//! synchronous reference design: per-VC input FIFOs, credit-based flow
//! control, and in-network multicast. Each inter-router link carries
//! `VC_COUNT` data channels and `VC_COUNT` credit-return channels, all
//! first-class sim channels — so link-stall faults apply to the credit
//! loop exactly as they do to data, and the sharded engine cuts the
//! credit loop with the same conservative lookahead discipline.
//!
//! A router's `fire` runs a fixpoint over four phases — absorb returned
//! credits, transmit FIFO heads (VC + switch allocation), drain arrived
//! flits into FIFOs, and return credits upstream — because progress in
//! one phase (a pop freeing a FIFO slot) can enable another within the
//! same wakeup without generating an engine event.
//!
//! Multicast forks are atomic: a header forwards only when *every*
//! branch of its scheme partition is ready (output VC unowned, credits
//! available, channel free, cycle floor elapsed), and all copies launch
//! together. Forks with two or more neighbor branches additionally
//! require enough credits for the whole packet on each branch, so a fork
//! is fully absorbed downstream and branch coupling cannot close a cycle
//! the XY channel order leaves open.

use std::collections::VecDeque;

use asynoc_engine::{
    ArmedFaults, ChannelEnds, Ctx, FaultDomain, ForwardInfo, NodeRef, Observer, Partition, RunSpec,
    ShardModel, SimEvent, SimModel,
};
use asynoc_kernel::{Duration, SchedulerKind, Time};
use asynoc_mesh::{MeshError, MeshSize, Port};
use asynoc_nodes::{FlitClass, KindTiming};
use asynoc_packet::{DestSet, Flit, RouteHeader};
use asynoc_stats::{latency::LatencyStats, Phases};
use asynoc_traffic::{Benchmark, SourceTraffic};

use crate::scheme::{tree_partition, DpmPlanner, McastScheme};

/// Virtual channels per link.
pub const VC_COUNT: usize = 2;
/// Flit slots per input VC FIFO (= the credit pool per output VC).
pub const VC_DEPTH: usize = 8;

const PORTS: usize = 5;
const LOCAL: usize = 4; // Port::Local.index()
const SLOTS: usize = PORTS * VC_COUNT;

/// Timing parameters of the VC mesh.
///
/// The router core reuses the wormhole mesh's calibrated traversal
/// figures (the comparison should isolate the flow-control and multicast
/// discipline, not re-litigate gate delays); the credit loop adds the
/// return-wire flight and the upstream acknowledge.
#[derive(Clone, Debug, PartialEq)]
pub struct VcMeshTiming {
    /// Router traversal parameters (shared by all ports and VCs).
    pub router: KindTiming,
    /// Per-link wire delay (data direction).
    pub wire_delay: Duration,
    /// Channel-free delay at an ejection sink.
    pub sink_ack: Duration,
    /// Minimum flit spacing out of a source.
    pub source_cycle: Duration,
    /// Credit-return wire flight (downstream router → upstream counter).
    pub credit_flight: Duration,
    /// Channel-free delay after absorbing a returned credit.
    pub credit_ack: Duration,
}

impl VcMeshTiming {
    /// The default comparison parameters.
    #[must_use]
    pub fn calibrated() -> Self {
        VcMeshTiming {
            router: KindTiming {
                forward_header: Duration::from_ps(320),
                forward_body: Duration::from_ps(250),
                ack_extra: Duration::from_ps(120),
                drop_ack: Duration::from_ps(80),
                cycle_floor: Duration::from_ps(200),
            },
            wire_delay: Duration::from_ps(90),
            sink_ack: Duration::from_ps(200),
            source_cycle: Duration::from_ps(100),
            credit_flight: Duration::from_ps(300),
            credit_ack: Duration::from_ps(200),
        }
    }
}

impl Default for VcMeshTiming {
    fn default() -> Self {
        VcMeshTiming::calibrated()
    }
}

/// Static description of a VC mesh network.
#[derive(Clone, Debug, PartialEq)]
pub struct VcMeshConfig {
    size: MeshSize,
    timing: VcMeshTiming,
    flits_per_packet: u8,
    seed: u64,
    mcast: McastScheme,
    scheduler: SchedulerKind,
    shards: usize,
    profile: bool,
    progress: bool,
    latency_cap: Option<usize>,
}

impl VcMeshConfig {
    /// Creates a configuration with calibrated timing, 5-flit packets,
    /// tree-based XY multicast, and seed 0.
    #[must_use]
    pub fn new(size: MeshSize) -> Self {
        VcMeshConfig {
            size,
            timing: VcMeshTiming::calibrated(),
            flits_per_packet: 5,
            seed: 0,
            mcast: McastScheme::XyTree,
            scheduler: SchedulerKind::default(),
            shards: 1,
            profile: false,
            progress: false,
            latency_cap: None,
        }
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the timing parameters.
    #[must_use]
    pub fn with_timing(mut self, timing: VcMeshTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Replaces the packet length.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    #[must_use]
    pub fn with_flits_per_packet(mut self, flits: u8) -> Self {
        assert!(flits > 0, "packets must have at least one flit");
        self.flits_per_packet = flits;
        self
    }

    /// Replaces the multicast routing scheme.
    #[must_use]
    pub fn with_mcast(mut self, mcast: McastScheme) -> Self {
        self.mcast = mcast;
        self
    }

    /// The multicast routing scheme runs use.
    #[must_use]
    pub fn mcast(&self) -> McastScheme {
        self.mcast
    }

    /// Replaces the event-queue scheduler (results are bit-identical
    /// under either kind; this only affects run speed).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The event-queue scheduler runs use.
    #[must_use]
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Splits runs across `shards` conservative shards (threads) — bands
    /// of whole mesh rows, cutting only north/south data links and their
    /// credit-return twins. Results are bit-identical for every shard
    /// count. The model clamps the count to the row count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a run needs at least one shard");
        self.shards = shards;
        self
    }

    /// How many shards execute each run (default 1: serial).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Enables runtime self-profiling (see the mesh substrate; host-side
    /// metadata only, never part of determinism comparisons).
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Whether runs collect an engine profile (default off).
    #[must_use]
    pub fn profile(&self) -> bool {
        self.profile
    }

    /// Enables the stderr progress heartbeat.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Whether runs print a progress heartbeat (default off).
    #[must_use]
    pub fn progress(&self) -> bool {
        self.progress
    }

    /// Caps the engine's stored latency-sample reservoir (`None` = store
    /// every sample).
    #[must_use]
    pub fn with_latency_cap(mut self, cap: Option<usize>) -> Self {
        self.latency_cap = cap;
        self
    }

    /// The latency-sample reservoir cap (`None` = unbounded).
    #[must_use]
    pub fn latency_cap(&self) -> Option<usize> {
        self.latency_cap
    }

    /// The mesh dimensions.
    #[must_use]
    pub fn size(&self) -> MeshSize {
        self.size
    }
}

/// Measurements from one VC mesh run.
#[derive(Clone, Debug)]
pub struct VcMeshReport {
    /// Per-logical-packet latency (creation → last header arrival).
    pub latency: LatencyStats,
    /// Offered/injected/delivered flit rates per endpoint.
    pub throughput: asynoc_stats::throughput::ThroughputReport,
    /// Logical packets measured.
    pub packets_measured: usize,
    /// Measured packets still in flight at the end (saturation — or,
    /// for this substrate, VC-deadlock — indicator).
    pub packets_incomplete: usize,
    /// Mean router-to-router hops of measured destinations (analytic XY
    /// distance, as the benchmark sampled them).
    pub mean_hops: f64,
    /// Inter-router header-flit launches for measured packets: the link
    /// traversals a multicast scheme pays. DPM's total is ≤ the XY
    /// tree's on identical traffic (the Tiwari et al. claim).
    pub link_traversals: u64,
    /// In-measurement-window FIFO pushes per VC.
    pub vc_pushes: [u64; VC_COUNT],
    /// Peak in-window FIFO occupancy per VC (over all routers/ports).
    pub vc_peak: [u64; VC_COUNT],
    /// Credit-conservation audits performed (serial runs only: the
    /// ledger needs the whole fabric in one address space).
    pub credit_checks: u64,
    /// Audits where `free + in-flight + buffered + owed + returning`
    /// differed from the credit pool. Always 0 in a correct build.
    pub credit_violations: u64,
    /// Flits that arrived at their ejection sink.
    pub flits_delivered: u64,
    /// Source launches deferred because the injection channel was busy.
    pub flits_throttled: u64,
    /// Discrete events the engine processed over the whole run.
    pub events_processed: u64,
    /// How many conservative shards executed the run (1 for serial).
    pub shards: usize,
    /// Events processed per shard (one entry for a serial run).
    pub shard_events: Vec<u64>,
    /// Host wall-clock time the run took.
    pub wall: std::time::Duration,
    /// The engine's self-profile (see [`VcMeshConfig::with_profile`]).
    pub profile: Option<Box<asynoc_engine::probe::EngineProfile>>,
}

impl VcMeshReport {
    /// Accepted/offered ratio.
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        self.throughput.acceptance()
    }
}

impl std::fmt::Display for VcMeshReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packets={} latency[{}] throughput[{}] hops={:.2} links={} vc_pushes={:?} \
             vc_peak={:?} credit_audits={}/{} events={} shards={} wall={:?}",
            self.packets_measured,
            self.latency,
            self.throughput,
            self.mean_hops,
            self.link_traversals,
            self.vc_pushes,
            self.vc_peak,
            self.credit_violations,
            self.credit_checks,
            self.events_processed,
            self.shards,
            self.wall
        )
    }
}

/// A ready-to-run VC mesh network.
#[derive(Clone, Debug)]
pub struct VcMeshNetwork {
    config: VcMeshConfig,
}

impl VcMeshNetwork {
    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid [`VcMeshConfig`]; returns
    /// `Result` for API parity with the other substrates.
    pub fn new(config: VcMeshConfig) -> Result<Self, MeshError> {
        Ok(VcMeshNetwork { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &VcMeshConfig {
        &self.config
    }

    /// Runs `benchmark` at `rate` flits/ns per endpoint over `phases`
    /// (with a bounded drain, like the other substrates).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive rate or a traffic-layer
    /// rejection.
    pub fn run(
        &self,
        benchmark: Benchmark,
        rate: f64,
        phases: Phases,
    ) -> Result<VcMeshReport, MeshError> {
        self.run_with_observers(benchmark, rate, phases, &mut [])
    }

    /// Runs one benchmark with caller-supplied observers on the engine's
    /// event stream. Router nodes are identified by their linear index.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive rate or a traffic-layer
    /// rejection.
    pub fn run_with_observers(
        &self,
        benchmark: Benchmark,
        rate: f64,
        phases: Phases,
        extra: &mut [&mut dyn Observer<usize>],
    ) -> Result<VcMeshReport, MeshError> {
        self.execute(benchmark, rate, phases, extra, None)
    }

    /// Runs one benchmark with an armed fault table threaded into the
    /// engine's injection hooks. Stall faults apply to credit-return
    /// channels exactly as to data channels.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive rate or a traffic-layer
    /// rejection.
    pub fn run_with_faults(
        &self,
        benchmark: Benchmark,
        rate: f64,
        phases: Phases,
        faults: &mut ArmedFaults,
        extra: &mut [&mut dyn Observer<usize>],
    ) -> Result<VcMeshReport, MeshError> {
        self.execute(benchmark, rate, phases, extra, Some(faults))
    }

    /// The legal fault-injection targets of this mesh. Every data *and*
    /// credit channel is stallable; XY multicast reads destination
    /// indices, not tree symbols, so there are no corruption sites.
    #[must_use]
    pub fn fault_domain(&self) -> FaultDomain {
        let model = VcMeshModel::new(&self.config, Phases::paper_standard(false));
        FaultDomain {
            channels: model.wiring.len(),
            endpoints: self.config.size.endpoints(),
            corrupt_sites: Vec::new(),
        }
    }

    fn execute(
        &self,
        benchmark: Benchmark,
        rate: f64,
        phases: Phases,
        extra: &mut [&mut dyn Observer<usize>],
        faults: Option<&mut ArmedFaults>,
    ) -> Result<VcMeshReport, MeshError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(MeshError::InvalidRate { rate });
        }
        let n = self.config.size.endpoints();
        let mut traffic = Vec::with_capacity(n);
        for s in 0..n {
            traffic.push(SourceTraffic::new(
                benchmark,
                n,
                s,
                rate,
                self.config.flits_per_packet,
                self.config.seed,
            )?);
        }

        // Bridge the caller's observers into a local slice (see the MoT
        // simulator for why the adapter is needed).
        struct Extras<'x, 'y>(&'x mut [&'y mut dyn Observer<usize>]);
        impl Observer<usize> for Extras<'_, '_> {
            fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, usize>) {
                for observer in self.0.iter_mut() {
                    observer.on_event(at, in_window, event);
                }
            }
        }
        let mut extras = Extras(extra);

        let model = VcMeshModel::new(&self.config, phases);
        let spec = RunSpec::new(phases, true)
            .with_scheduler(self.config.scheduler)
            .with_profile(self.config.profile)
            .with_progress(self.config.progress)
            .with_latency_cap(self.config.latency_cap);
        let observers: &mut [&mut dyn Observer<usize>] = &mut [&mut extras];
        let shards = self.config.shards;
        let (engine, model) = match faults {
            None => asynoc_engine::run_sharded(model, traffic, spec, shards, observers),
            Some(faults) => asynoc_engine::run_sharded_with_faults(
                model, traffic, spec, shards, faults, observers,
            ),
        };

        Ok(VcMeshReport {
            latency: engine.latency,
            throughput: engine.throughput,
            packets_measured: engine.packets_measured,
            packets_incomplete: engine.packets_incomplete,
            mean_hops: model.mean_hops(),
            link_traversals: model.link_traversals,
            vc_pushes: model.vc_pushes,
            vc_peak: model.vc_peak,
            credit_checks: model.credit_checks,
            credit_violations: model.credit_violations,
            flits_delivered: engine.flits_delivered,
            flits_throttled: engine.flits_throttled,
            events_processed: engine.events_processed,
            shards: engine.shards,
            shard_events: engine.shard_events,
            wall: engine.wall,
            profile: engine.profile,
        })
    }
}

// ---------------------------------------------------------------------
// The substrate
// ---------------------------------------------------------------------

/// The scheme partition a header locked in, replayed by its body and
/// tail flits: up to five `(output port, output VC, destination subset)`
/// branches.
#[derive(Clone, Copy, Debug)]
struct RouteBranches {
    branches: [(u8, u8, DestSet); PORTS],
    len: u8,
}

impl RouteBranches {
    fn new() -> Self {
        RouteBranches {
            branches: [(0, 0, DestSet::EMPTY); PORTS],
            len: 0,
        }
    }

    fn push(&mut self, port: usize, vc: usize, part: DestSet) {
        self.branches[self.len as usize] = (port as u8, vc as u8, part);
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = (usize, usize, DestSet)> + '_ {
        self.branches[..self.len as usize]
            .iter()
            .map(|&(p, v, d)| (p as usize, v as usize, d))
    }

    fn neighbor_branches(&self) -> usize {
        self.iter().filter(|&(p, _, _)| p != LOCAL).count()
    }
}

/// Per-router state: input FIFOs, credit counters, worm bookkeeping.
#[derive(Clone, Debug)]
struct RouterState {
    /// Input FIFOs, `[in port][vc]` (Local uses VC 0 only).
    fifo: [[VecDeque<Flit>; VC_COUNT]; PORTS],
    /// Credits held for the output link at `[out port][vc]`.
    credits: [[u8; VC_COUNT]; PORTS],
    /// Credits to return upstream for the input link at `[in port][vc]`.
    owed: [[u8; VC_COUNT]; PORTS],
    /// Payload for the next returned credit: a clone of the last flit
    /// popped from that FIFO (channels carry flits; any flit will do).
    token: [[Option<Flit>; VC_COUNT]; PORTS],
    /// Active route per input VC, set by the header, cleared by the tail.
    route: [[Option<RouteBranches>; VC_COUNT]; PORTS],
    /// Worm ownership of output VCs: which `(in port, in vc)` holds them.
    owner: [[Option<(u8, u8)>; VC_COUNT]; PORTS],
    /// Per-output-port cycle floor (shared by the port's VCs: one
    /// physical link).
    next_fire: [Time; PORTS],
    /// Round-robin start slot for the input scan.
    prefer: usize,
}

impl RouterState {
    fn new() -> Self {
        RouterState {
            fifo: std::array::from_fn(|_| std::array::from_fn(|_| VecDeque::new())),
            credits: [[VC_DEPTH as u8; VC_COUNT]; PORTS],
            owed: [[0; VC_COUNT]; PORTS],
            token: std::array::from_fn(|_| std::array::from_fn(|_| None)),
            route: [[None; VC_COUNT]; PORTS],
            owner: [[None; VC_COUNT]; PORTS],
            next_fire: [Time::ZERO; PORTS],
            prefer: 0,
        }
    }
}

/// The VC mesh substrate. Channel ids are allocated router by router:
/// for each neighbor link (north/south/east/west order, skipping edges)
/// the `VC_COUNT` data channels then the `VC_COUNT` credit-return
/// channels, then the injection channel, then the ejection channel.
#[derive(Clone)]
struct VcMeshModel {
    size: MeshSize,
    timing: VcMeshTiming,
    mcast: McastScheme,
    phases: Phases,
    /// Credit-conservation ledger armed? Serial runs only: in-flight
    /// counts span both ends of a link, which sharded clones cannot see.
    ledger: bool,
    wiring: Vec<ChannelEnds<usize>>,
    /// Data channels into router `r`, `[in port][vc]` (`usize::MAX`
    /// where absent; Local = the injection channel at VC 0).
    in_data: Vec<[[usize; VC_COUNT]; PORTS]>,
    /// Data channels out of router `r` (Local = the ejection channel).
    out_data: Vec<[[usize; VC_COUNT]; PORTS]>,
    /// Credit channels into `r`, indexed by the *output* port they
    /// replenish.
    credit_in: Vec<[[usize; VC_COUNT]; PORTS]>,
    /// Credit channels out of `r`, indexed by the *input* port they
    /// acknowledge.
    credit_out: Vec<[[usize; VC_COUNT]; PORTS]>,
    state: Vec<RouterState>,
    dpm: DpmPlanner,
    /// Ledger: flits launched but not yet drained, per data channel.
    data_in_flight: Vec<u32>,
    /// Ledger: credits launched but not yet absorbed, per credit channel.
    credit_in_flight: Vec<u32>,
    hop_sum: u64,
    hop_count: u64,
    link_traversals: u64,
    vc_pushes: [u64; VC_COUNT],
    vc_peak: [u64; VC_COUNT],
    credit_checks: u64,
    credit_violations: u64,
}

impl VcMeshModel {
    fn new(config: &VcMeshConfig, phases: Phases) -> Self {
        let size = config.size;
        let n = size.endpoints();
        let mut wiring: Vec<ChannelEnds<usize>> = Vec::new();
        let mut in_data = vec![[[usize::MAX; VC_COUNT]; PORTS]; n];
        let mut out_data = vec![[[usize::MAX; VC_COUNT]; PORTS]; n];
        let mut credit_in = vec![[[usize::MAX; VC_COUNT]; PORTS]; n];
        let mut credit_out = vec![[[usize::MAX; VC_COUNT]; PORTS]; n];
        let mut alloc = |ends: ChannelEnds<usize>| -> usize {
            wiring.push(ends);
            wiring.len() - 1
        };
        for r in 0..n {
            let (x, y) = size.coords(r);
            let neighbors = [
                (Port::North, x as isize, y as isize - 1, Port::South),
                (Port::South, x as isize, y as isize + 1, Port::North),
                (Port::East, x as isize + 1, y as isize, Port::West),
                (Port::West, x as isize - 1, y as isize, Port::East),
            ];
            for (port, nx, ny, opposite) in neighbors {
                if nx < 0 || ny < 0 || nx as usize >= size.cols() || ny as usize >= size.rows() {
                    continue;
                }
                let neighbor = size.index(nx as usize, ny as usize);
                for v in 0..VC_COUNT {
                    let data = alloc(ChannelEnds {
                        upstream: NodeRef::Node(r),
                        downstream: NodeRef::Node(neighbor),
                    });
                    out_data[r][port.index()][v] = data;
                    in_data[neighbor][opposite.index()][v] = data;
                }
                for v in 0..VC_COUNT {
                    let credit = alloc(ChannelEnds {
                        upstream: NodeRef::Node(neighbor),
                        downstream: NodeRef::Node(r),
                    });
                    credit_in[r][port.index()][v] = credit;
                    credit_out[neighbor][opposite.index()][v] = credit;
                }
            }
            let inject = alloc(ChannelEnds {
                upstream: NodeRef::Source(r),
                downstream: NodeRef::Node(r),
            });
            in_data[r][LOCAL][0] = inject;
            let eject = alloc(ChannelEnds {
                upstream: NodeRef::Node(r),
                downstream: NodeRef::Sink(r),
            });
            out_data[r][LOCAL][0] = eject;
        }

        let channels = wiring.len();
        VcMeshModel {
            size,
            timing: config.timing.clone(),
            mcast: config.mcast,
            phases,
            ledger: config.shards == 1,
            wiring,
            in_data,
            out_data,
            credit_in,
            credit_out,
            state: (0..n).map(|_| RouterState::new()).collect(),
            dpm: DpmPlanner::new(),
            data_in_flight: vec![0; channels],
            credit_in_flight: vec![0; channels],
            hop_sum: 0,
            hop_count: 0,
            link_traversals: 0,
            vc_pushes: [0; VC_COUNT],
            vc_peak: [0; VC_COUNT],
            credit_checks: 0,
            credit_violations: 0,
        }
    }

    fn mean_hops(&self) -> f64 {
        if self.hop_count == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.hop_count as f64
        }
    }

    /// Splits `branch` at `r` per the configured scheme and assigns each
    /// neighbor branch an output VC. XY-tree keeps the input VC (each VC
    /// is then an independent, acyclic XY tree network); DPM toggles the
    /// VC when this router is itself a delivery point, so a merged
    /// worm's post-delivery segment — the spot where DPM's path can
    /// break XY order — continues on the other VC.
    fn plan(&mut self, r: usize, branch: DestSet, in_vc: usize) -> RouteBranches {
        let parts = match self.mcast {
            McastScheme::XyTree => tree_partition(self.size, r, branch),
            McastScheme::Dpm => self.dpm.partition(self.size, r, branch),
        };
        let out_vc = if self.mcast == McastScheme::Dpm && branch.contains(r) {
            (in_vc + 1) % VC_COUNT
        } else {
            in_vc
        };
        let mut route = RouteBranches::new();
        for port in Port::ALL {
            let part = parts[port.index()];
            if part.is_empty() {
                continue;
            }
            if port == Port::Local {
                route.push(LOCAL, 0, part);
            } else {
                route.push(port.index(), out_vc, part);
            }
        }
        route
    }

    fn receive_credits(&mut self, r: usize, ctx: &mut Ctx<'_, '_, usize>) -> bool {
        let mut progress = false;
        for p in 0..LOCAL {
            for v in 0..VC_COUNT {
                let ch = self.credit_in[r][p][v];
                if ch == usize::MAX || ctx.arrived(ch).is_none() {
                    continue;
                }
                let _credit = ctx.take_arrived(ch);
                ctx.free_after(ch, self.timing.credit_ack);
                if self.ledger {
                    self.credit_in_flight[ch] -= 1;
                }
                let credits = &mut self.state[r].credits[p][v];
                *credits += 1;
                debug_assert!(
                    *credits as usize <= VC_DEPTH,
                    "credit counter overran the pool at router {r}"
                );
                progress = true;
            }
        }
        progress
    }

    /// VC + switch allocation over the FIFO heads, round-robin across
    /// the ten `(in port, vc)` slots.
    fn transmit(&mut self, r: usize, ctx: &mut Ctx<'_, '_, usize>) -> bool {
        let mut progress = false;
        let start = self.state[r].prefer;
        for k in 0..SLOTS {
            let slot = (start + k) % SLOTS;
            if self.try_forward(r, slot / VC_COUNT, slot % VC_COUNT, ctx) {
                self.state[r].prefer = (slot + 1) % SLOTS;
                progress = true;
            }
        }
        progress
    }

    fn try_forward(&mut self, r: usize, p: usize, v: usize, ctx: &mut Ctx<'_, '_, usize>) -> bool {
        let (kind, branch, flit_count, id_bit) = match self.state[r].fifo[p][v].front() {
            None => return false,
            Some(flit) => (
                flit.kind(),
                flit.branch(),
                flit.descriptor().flit_count(),
                (flit.descriptor().id().as_u64() & 1) as usize,
            ),
        };
        let route = match (kind.is_header(), self.state[r].route[p][v]) {
            (true, None) => {
                // Injected packets pick their starting VC by packet-id
                // parity, spreading load across both VC planes.
                let in_vc = if p == LOCAL { id_bit % VC_COUNT } else { v };
                self.plan(r, branch, in_vc)
            }
            (false, Some(route)) => route,
            (got_header, _) => unreachable!(
                "router {r} port {p} vc {v}: {} flit with route state {}",
                kind,
                if got_header { "already set" } else { "missing" }
            ),
        };

        // Atomic fork: every branch must be ready before any copy moves.
        // A multi-neighbor fork needs whole-packet credits per branch so
        // it is fully absorbed downstream (no branch coupling).
        let needed = if kind.is_header() && route.neighbor_branches() >= 2 {
            (flit_count as usize).min(VC_DEPTH) as u8
        } else {
            1
        };
        let now = ctx.now();
        let mut floor_block: Option<Time> = None;
        for (po, vo, _) in route.iter() {
            let (ch, vc) = if po == LOCAL {
                (self.out_data[r][LOCAL][0], 0)
            } else {
                (self.out_data[r][po][vo], vo)
            };
            if po != LOCAL {
                match self.state[r].owner[po][vc] {
                    None => {
                        if !kind.is_header() {
                            debug_assert!(false, "worm body lost its output lock");
                            return false;
                        }
                    }
                    Some(owner) => {
                        if kind.is_header() || owner != (p as u8, v as u8) {
                            return false; // held by another worm
                        }
                    }
                }
                if self.state[r].credits[po][vc] < needed {
                    return false; // woken by the credit's arrival
                }
            }
            if !ctx.is_free(ch) {
                return false; // woken by the output's free event
            }
            if now < self.state[r].next_fire[po] {
                let at = self.state[r].next_fire[po];
                floor_block = Some(floor_block.map_or(at, |t: Time| t.max(at)));
            }
        }
        if let Some(at) = floor_block {
            ctx.retry(r, at);
            return false;
        }

        let flit = self.state[r].fifo[p][v].pop_front().expect("head checked");
        let class = FlitClass::of(kind);
        let measured = self.phases.in_measurement(flit.descriptor().created_at());
        ctx.emit(&SimEvent::Forward {
            node: r,
            flit: &flit,
            info: ForwardInfo::Arbitrated { input: p },
            copies: route.len,
            busy: self.timing.router.free_delay(class),
        });
        let flight = self.timing.router.forward(class) + self.timing.wire_delay;
        for (po, vo, part) in route.iter() {
            if po == LOCAL {
                ctx.launch(
                    self.out_data[r][LOCAL][0],
                    flit.clone().with_branch(part),
                    flight,
                );
            } else {
                let ch = self.out_data[r][po][vo];
                ctx.launch(ch, flit.clone().with_branch(part), flight);
                self.state[r].credits[po][vo] -= 1;
                if self.ledger {
                    self.data_in_flight[ch] += 1;
                }
                if kind.is_header() && measured {
                    self.link_traversals += 1;
                }
                match kind {
                    asynoc_packet::FlitKind::Header => {
                        self.state[r].owner[po][vo] = Some((p as u8, v as u8));
                    }
                    asynoc_packet::FlitKind::Tail => {
                        self.state[r].owner[po][vo] = None;
                    }
                    _ => {}
                }
            }
            self.state[r].next_fire[po] = now + self.timing.router.cycle_floor;
        }
        match kind {
            asynoc_packet::FlitKind::Header => self.state[r].route[p][v] = Some(route),
            asynoc_packet::FlitKind::Tail => self.state[r].route[p][v] = None,
            _ => {}
        }
        if p != LOCAL {
            // The pop freed a FIFO slot: owe the upstream router a credit.
            self.state[r].owed[p][v] += 1;
            self.state[r].token[p][v] = Some(flit);
        }
        true
    }

    fn drain_inputs(&mut self, r: usize, ctx: &mut Ctx<'_, '_, usize>) -> bool {
        let mut progress = false;
        for p in 0..PORTS {
            let vcs = if p == LOCAL { 1 } else { VC_COUNT };
            for v in 0..vcs {
                let ch = self.in_data[r][p][v];
                if ch == usize::MAX || ctx.arrived(ch).is_none() {
                    continue;
                }
                if self.state[r].fifo[p][v].len() >= VC_DEPTH {
                    // Only the creditless injection channel may back up;
                    // neighbor links never overrun their credit pool.
                    debug_assert!(p == LOCAL, "credit overrun on a neighbor link at {r}");
                    continue;
                }
                let flit = ctx.take_arrived(ch);
                let class = FlitClass::of(flit.kind());
                ctx.free_after(ch, self.timing.router.free_delay(class));
                if self.ledger && p != LOCAL {
                    self.data_in_flight[ch] -= 1;
                }
                self.state[r].fifo[p][v].push_back(flit);
                if ctx.in_window() {
                    self.vc_pushes[v] += 1;
                    self.vc_peak[v] = self.vc_peak[v].max(self.state[r].fifo[p][v].len() as u64);
                }
                progress = true;
            }
        }
        progress
    }

    fn return_credits(&mut self, r: usize, ctx: &mut Ctx<'_, '_, usize>) -> bool {
        let mut progress = false;
        for p in 0..LOCAL {
            for v in 0..VC_COUNT {
                let ch = self.credit_out[r][p][v];
                if ch == usize::MAX || self.state[r].owed[p][v] == 0 || !ctx.is_free(ch) {
                    continue; // the channel's free event re-fires us
                }
                let token = self.state[r].token[p][v]
                    .clone()
                    .expect("an owed credit implies a previously popped flit");
                ctx.launch(ch, token, self.timing.credit_flight);
                self.state[r].owed[p][v] -= 1;
                if self.ledger {
                    self.credit_in_flight[ch] += 1;
                }
                progress = true;
            }
        }
        progress
    }

    /// Serial-run invariant: for every output link and VC, the credit
    /// pool splits exactly into free credits + flits in flight + flits
    /// buffered downstream + credits owed + credits in flight back.
    fn audit_credits(&mut self, r: usize) {
        let (x, y) = self.size.coords(r);
        let neighbors = [
            (Port::North, x as isize, y as isize - 1, Port::South),
            (Port::South, x as isize, y as isize + 1, Port::North),
            (Port::East, x as isize + 1, y as isize, Port::West),
            (Port::West, x as isize - 1, y as isize, Port::East),
        ];
        for (port, nx, ny, opposite) in neighbors {
            if nx < 0
                || ny < 0
                || nx as usize >= self.size.cols()
                || ny as usize >= self.size.rows()
            {
                continue;
            }
            let nb = self.size.index(nx as usize, ny as usize);
            let (p, q) = (port.index(), opposite.index());
            for v in 0..VC_COUNT {
                let total = u32::from(self.state[r].credits[p][v])
                    + self.data_in_flight[self.out_data[r][p][v]]
                    + self.state[nb].fifo[q][v].len() as u32
                    + u32::from(self.state[nb].owed[q][v])
                    + self.credit_in_flight[self.credit_in[r][p][v]];
                self.credit_checks += 1;
                if total != VC_DEPTH as u32 {
                    self.credit_violations += 1;
                }
            }
        }
    }
}

impl SimModel for VcMeshModel {
    type Node = usize;

    fn endpoints(&self) -> usize {
        self.size.endpoints()
    }

    fn channel_count(&self) -> usize {
        self.wiring.len()
    }

    fn channel_ends(&self, channel: usize) -> ChannelEnds<usize> {
        self.wiring[channel]
    }

    fn source_channel(&self, source: usize) -> usize {
        self.in_data[source][LOCAL][0]
    }

    fn source_wire_delay(&self) -> Duration {
        self.timing.wire_delay
    }

    fn source_cycle(&self) -> Duration {
        self.timing.source_cycle
    }

    fn sink_ack(&self) -> Duration {
        self.timing.sink_ack
    }

    /// In-network multicast: one packet, forked at divergence points.
    fn serializes_multicast(&self) -> bool {
        false
    }

    fn route(&self, _source: usize, _dests: DestSet) -> RouteHeader {
        // The VC mesh routes by the flit's destination subset, not tree
        // symbols; a minimal one-slot header keeps allocation trivial.
        RouteHeader::for_tree(2)
    }

    fn route_into(&self, _source: usize, _dests: DestSet, header: &mut RouteHeader) {
        header.reset_for_tree(2);
    }

    fn on_packet(&mut self, source: usize, dests: DestSet, measured: bool) {
        if !measured {
            return;
        }
        for dest in dests.iter() {
            self.hop_sum += self.size.hops(source, dest) as u64;
            self.hop_count += 1;
        }
    }

    fn fire(&mut self, router: usize, ctx: &mut Ctx<'_, '_, usize>) {
        // Fixpoint: a pop frees a FIFO slot, enabling a drain, enabling
        // a credit return — none of which generates an engine event for
        // this router, so iterate until nothing moves.
        loop {
            let mut progress = false;
            progress |= self.receive_credits(router, ctx);
            progress |= self.transmit(router, ctx);
            progress |= self.drain_inputs(router, ctx);
            progress |= self.return_credits(router, ctx);
            if !progress {
                break;
            }
        }
        if self.ledger {
            self.audit_credits(router);
        }
    }
}

impl ShardModel for VcMeshModel {
    /// Bands of whole mesh rows, exactly like the wormhole mesh — but
    /// the cut north/south links each drag their credit-return twins
    /// across the band boundary, so the lookahead must also admit the
    /// credit loop's delays: a credit launch (`credit_flight`) and its
    /// absorption acknowledge (`credit_ack`), alongside data launches
    /// and frees.
    fn partition(&self, shards: usize) -> Partition {
        let rows = self.size.rows();
        let shards = shards.clamp(1, rows);
        let router = &self.timing.router;
        let wire = self.timing.wire_delay;
        let lookahead = [FlitClass::Header, FlitClass::Body]
            .into_iter()
            .flat_map(|class| [router.forward(class) + wire, router.free_delay(class)])
            .chain([self.timing.credit_flight, self.timing.credit_ack])
            .min()
            .expect("delays considered");
        let band = |endpoint: usize| {
            let (_, y) = self.size.coords(endpoint);
            y * shards / rows
        };
        Partition::from_assignment(self, shards, lookahead, |node| match node {
            NodeRef::Source(s) => band(s),
            NodeRef::Node(r) => band(r),
            NodeRef::Sink(d) => band(d),
        })
    }

    /// Counters accumulate per shard (each router is owned by exactly
    /// one shard); fold them back. Per-VC peaks merge by maximum.
    fn merge_shards(&mut self, shards: Vec<Self>) {
        for shard in shards {
            self.hop_sum += shard.hop_sum;
            self.hop_count += shard.hop_count;
            self.link_traversals += shard.link_traversals;
            for v in 0..VC_COUNT {
                self.vc_pushes[v] += shard.vc_pushes[v];
                self.vc_peak[v] = self.vc_peak[v].max(shard.vc_peak[v]);
            }
            self.credit_checks += shard.credit_checks;
            self.credit_violations += shard.credit_violations;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_phases() -> Phases {
        Phases::new(Duration::from_ns(80), Duration::from_ns(800))
    }

    fn network(cols: usize, rows: usize, mcast: McastScheme) -> VcMeshNetwork {
        VcMeshNetwork::new(
            VcMeshConfig::new(MeshSize::new(cols, rows).unwrap())
                .with_seed(42)
                .with_mcast(mcast),
        )
        .unwrap()
    }

    #[test]
    fn light_load_delivers_everything() {
        for mcast in [McastScheme::XyTree, McastScheme::Dpm] {
            for (c, r) in [(2usize, 2usize), (4, 4)] {
                let report = network(c, r, mcast)
                    .run(Benchmark::UniformRandom, 0.1, quick_phases())
                    .unwrap();
                assert!(
                    report.packets_measured > 0,
                    "{mcast} {c}x{r}: nothing measured"
                );
                assert_eq!(
                    report.packets_incomplete, 0,
                    "{mcast} {c}x{r}: lost packets"
                );
                assert!(
                    report.acceptance() > 0.98,
                    "{mcast} {c}x{r}: refused at light load"
                );
                assert_eq!(report.credit_violations, 0, "{mcast} {c}x{r}: ledger broke");
                assert!(
                    report.credit_checks > 0,
                    "{mcast} {c}x{r}: ledger never ran"
                );
            }
        }
    }

    #[test]
    fn multicast_delivers_in_network() {
        for mcast in [McastScheme::XyTree, McastScheme::Dpm] {
            let report = network(4, 4, mcast)
                .run(Benchmark::Multicast5, 0.15, quick_phases())
                .unwrap();
            assert!(report.packets_measured > 0, "{mcast}: nothing measured");
            assert_eq!(
                report.packets_incomplete, 0,
                "{mcast}: undelivered multicast"
            );
            assert!(report.link_traversals > 0, "{mcast}: no links counted");
            assert_eq!(report.credit_violations, 0, "{mcast}: ledger broke");
        }
    }

    #[test]
    fn both_vc_planes_carry_traffic() {
        let report = network(4, 4, McastScheme::XyTree)
            .run(Benchmark::UniformRandom, 0.2, quick_phases())
            .unwrap();
        assert!(report.vc_pushes[0] > 0, "VC0 idle");
        assert!(
            report.vc_pushes[1] > 0,
            "VC1 idle (id-parity allocation broken)"
        );
        assert!(report.vc_peak.iter().all(|&p| p <= VC_DEPTH as u64));
    }

    #[test]
    fn dpm_uses_no_more_links_than_tree() {
        for seed in [1u64, 7, 42] {
            let mut reports = Vec::new();
            for mcast in [McastScheme::XyTree, McastScheme::Dpm] {
                let net = VcMeshNetwork::new(
                    VcMeshConfig::new(MeshSize::new(4, 4).unwrap())
                        .with_seed(seed)
                        .with_mcast(mcast),
                )
                .unwrap();
                reports.push(
                    net.run(Benchmark::Multicast10, 0.1, quick_phases())
                        .unwrap(),
                );
            }
            let (tree, dpm) = (&reports[0], &reports[1]);
            assert_eq!(
                tree.packets_measured, dpm.packets_measured,
                "seed {seed}: injection must be identical across schemes"
            );
            assert_eq!(tree.packets_incomplete, 0, "seed {seed}");
            assert_eq!(dpm.packets_incomplete, 0, "seed {seed}");
            assert!(
                dpm.link_traversals <= tree.link_traversals,
                "seed {seed}: DPM {} > tree {}",
                dpm.link_traversals,
                tree.link_traversals
            );
        }
    }

    #[test]
    fn determinism() {
        for mcast in [McastScheme::XyTree, McastScheme::Dpm] {
            let a = network(4, 4, mcast)
                .run(Benchmark::Multicast5, 0.2, quick_phases())
                .unwrap();
            let b = network(4, 4, mcast)
                .run(Benchmark::Multicast5, 0.2, quick_phases())
                .unwrap();
            assert_eq!(a.latency.mean(), b.latency.mean());
            assert_eq!(a.events_processed, b.events_processed);
            assert_eq!(a.link_traversals, b.link_traversals);
        }
    }

    #[test]
    fn sharded_runs_match_serial_bit_for_bit() {
        for mcast in [McastScheme::XyTree, McastScheme::Dpm] {
            let net = VcMeshNetwork::new(
                VcMeshConfig::new(MeshSize::new(4, 4).unwrap())
                    .with_seed(11)
                    .with_mcast(mcast),
            )
            .unwrap();
            let serial = net.run(Benchmark::Multicast5, 0.2, quick_phases()).unwrap();
            assert_eq!(serial.shards, 1);
            for shards in [2, 4] {
                let config = net.config().clone().with_shards(shards);
                let sharded = VcMeshNetwork::new(config)
                    .unwrap()
                    .run(Benchmark::Multicast5, 0.2, quick_phases())
                    .unwrap();
                assert_eq!(sharded.shards, shards);
                assert_eq!(sharded.events_processed, serial.events_processed, "{mcast}");
                assert_eq!(sharded.latency.mean(), serial.latency.mean(), "{mcast}");
                assert_eq!(sharded.latency.count(), serial.latency.count());
                assert_eq!(sharded.throughput, serial.throughput);
                assert_eq!(sharded.packets_measured, serial.packets_measured);
                assert_eq!(sharded.packets_incomplete, serial.packets_incomplete);
                assert_eq!(sharded.mean_hops, serial.mean_hops);
                assert_eq!(sharded.link_traversals, serial.link_traversals, "{mcast}");
                assert_eq!(sharded.vc_pushes, serial.vc_pushes, "{mcast}");
                assert_eq!(sharded.vc_peak, serial.vc_peak, "{mcast}");
            }
        }
    }

    #[test]
    fn rate_validation() {
        assert!(matches!(
            network(2, 2, McastScheme::XyTree).run(Benchmark::Shuffle, 0.0, quick_phases()),
            Err(MeshError::InvalidRate { .. })
        ));
    }

    #[test]
    fn forwards_report_fork_copies() {
        struct Spy {
            forwards: u64,
            max_copies: u8,
            delivers: u64,
        }
        impl Observer<usize> for Spy {
            fn on_event(&mut self, _at: Time, _in_window: bool, event: &SimEvent<'_, usize>) {
                match event {
                    SimEvent::Forward { copies, .. } => {
                        self.forwards += 1;
                        self.max_copies = self.max_copies.max(*copies);
                    }
                    SimEvent::Deliver { .. } => self.delivers += 1,
                    _ => {}
                }
            }
        }
        let mut spy = Spy {
            forwards: 0,
            max_copies: 0,
            delivers: 0,
        };
        let report = network(4, 4, McastScheme::XyTree)
            .run_with_observers(Benchmark::Multicast10, 0.1, quick_phases(), &mut [&mut spy])
            .unwrap();
        assert!(spy.forwards > 0, "routers forwarded nothing");
        assert!(spy.delivers > 0, "nothing delivered");
        assert!(spy.max_copies >= 2, "multicast never forked in-network");
        assert!(report.packets_measured > 0);
    }
}
