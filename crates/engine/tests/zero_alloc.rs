//! The zero-allocation steady-state guarantee.
//!
//! The probe crate's counting global allocator wraps the system
//! allocator (this harness is where it grew out of; the CLI installs
//! the same one for its profile report); an observer snapshots the
//! count at the first in-window event and at the first post-window
//! event. Construction and warm-up may allocate freely (the pool fills,
//! the calendar queue settles its bucket count, source queues and
//! bucket rings reach their high-water marks); once the measurement
//! window opens, `Session::run` must not touch the allocator at all —
//! under either scheduler.
//!
//! This test runs with `harness = false` and owns the whole process: the
//! counter is process-global, and libtest's runner machinery (the main
//! thread parked on a channel while the test thread runs) performs a
//! one-time lazy allocation at a nondeterministic moment — occasionally
//! inside the measurement window. A single-threaded `main` makes every
//! count in the window attributable to `Session::run`.

use asynoc_engine::probe::{allocations, CountingAlloc};
use asynoc_engine::{
    run, ChannelEnds, Ctx, ForwardInfo, NodeRef, Observer, RunSpec, SimEvent, SimModel,
};
use asynoc_kernel::{Duration, SchedulerKind, Time};
use asynoc_packet::{DestSet, RouteHeader};
use asynoc_stats::Phases;
use asynoc_traffic::{Benchmark, SourceTraffic};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Two endpoints joined by one arbitrating crossbar node: channels 0–1
/// inject into the node, channels 2–3 deliver to the sinks. The smallest
/// substrate that still exercises forwarding, arbitration-free conflict
/// (output busy), serialized multicast clones, and descriptor recycling.
struct Crossbar;

impl SimModel for Crossbar {
    type Node = ();

    fn endpoints(&self) -> usize {
        2
    }

    fn channel_count(&self) -> usize {
        4
    }

    fn channel_ends(&self, channel: usize) -> ChannelEnds<()> {
        if channel < 2 {
            ChannelEnds {
                upstream: NodeRef::Source(channel),
                downstream: NodeRef::Node(()),
            }
        } else {
            ChannelEnds {
                upstream: NodeRef::Node(()),
                downstream: NodeRef::Sink(channel - 2),
            }
        }
    }

    fn source_channel(&self, source: usize) -> usize {
        source
    }

    fn source_wire_delay(&self) -> Duration {
        Duration::from_ps(50)
    }

    fn source_cycle(&self) -> Duration {
        Duration::from_ps(100)
    }

    fn sink_ack(&self) -> Duration {
        Duration::from_ps(100)
    }

    fn serializes_multicast(&self) -> bool {
        true
    }

    fn route(&self, _source: usize, _dests: DestSet) -> RouteHeader {
        RouteHeader::for_tree(2)
    }

    fn route_into(&self, _source: usize, _dests: DestSet, header: &mut RouteHeader) {
        header.reset_for_tree(2);
    }

    fn fire(&mut self, _node: (), ctx: &mut Ctx<'_, '_, ()>) {
        for input in 0..2 {
            let Some(flit) = ctx.arrived(input) else {
                continue;
            };
            let dest = flit.descriptor().dests().first().expect("unicast clones");
            let out = 2 + dest;
            if !ctx.is_free(out) {
                continue;
            }
            let flit = ctx.take_arrived(input);
            ctx.emit(&SimEvent::Forward {
                node: (),
                flit: &flit,
                info: ForwardInfo::Arbitrated { input },
                copies: 1,
                busy: Duration::from_ps(150),
            });
            ctx.launch(out, flit, Duration::from_ps(200));
            ctx.free_after(input, Duration::from_ps(150));
        }
    }
}

/// Snapshots the global allocation counter at the first in-window event
/// and keeps re-snapshotting at every later one, so `at_window_close`
/// ends up holding the count at the window's last event. Holds only two
/// `Option<u64>`s, so observing never allocates.
#[derive(Default)]
struct AllocWindow {
    at_window_open: Option<u64>,
    at_window_close: Option<u64>,
}

impl Observer<()> for AllocWindow {
    fn on_event(&mut self, _at: Time, in_window: bool, _event: &SimEvent<'_, ()>) {
        if in_window {
            let count = allocations();
            if self.at_window_open.is_none() {
                self.at_window_open = Some(count);
            }
            self.at_window_close = Some(count);
        }
    }
}

fn main() {
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let traffic: Vec<SourceTraffic> = (0..2)
            .map(|s| SourceTraffic::new(Benchmark::Multicast5, 2, s, 0.4, 5, 23).unwrap())
            .collect();
        let spec = RunSpec::new(
            Phases::new(Duration::from_ns(200), Duration::from_ns(800)),
            true,
        )
        .with_scheduler(kind);
        let mut window = AllocWindow::default();
        let (report, _model) = run(Crossbar, traffic, spec, &mut [&mut window]);

        assert!(report.packets_measured > 0, "{kind:?}: nothing measured");
        assert_eq!(report.packets_incomplete, 0, "{kind:?}: packets in flight");
        let open = window
            .at_window_open
            .expect("the window saw at least one event");
        let close = window
            .at_window_close
            .expect("the window saw a closing event");
        assert_eq!(
            close - open,
            0,
            "{kind:?}: {} heap allocation(s) inside the measurement window",
            close - open
        );
        println!("{kind:?}: zero allocations in window, ok");
    }
}
