//! Descriptor recycling for the zero-allocation steady state.
//!
//! Every injected packet needs an `Arc<PacketDescriptor>` whose route
//! header owns a heap-allocated symbol vector. Allocating one per packet
//! makes the run loop's throughput hostage to the allocator; instead,
//! when a packet's tail flit is consumed at a sink the session hands the
//! descriptor back to a [`FlitPool`], and the next injection rewrites it
//! in place ([`PacketDescriptor::reset`] + an in-place route rebuild).
//! After warm-up the pool population matches the in-flight packet count
//! and injection stops touching the allocator entirely — the property
//! the counting-allocator test in `tests/zero_alloc.rs` enforces.

use std::sync::Arc;

use asynoc_packet::PacketDescriptor;
use asynoc_probe::PoolStats;

/// A bounded free-list of packet descriptors.
pub(crate) struct FlitPool {
    free: Vec<Arc<PacketDescriptor>>,
    /// Recycles beyond this population are dropped; bounds memory on
    /// pathological workloads without affecting the steady state.
    cap: usize,
    /// Behavior counters ([`FlitPool::stats`]); plain adds, always on.
    stats: PoolStats,
}

impl FlitPool {
    /// Creates an empty pool holding at most `cap` descriptors.
    pub(crate) fn new(cap: usize) -> Self {
        FlitPool {
            free: Vec::with_capacity(cap),
            cap,
            stats: PoolStats::default(),
        }
    }

    /// The pool's behavior counters so far: takes, recycle hits, and the
    /// occupancy high-water mark.
    pub(crate) fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Returns a descriptor whose storage can be rewritten in place, or
    /// `None` if the pool has none (the caller allocates fresh).
    ///
    /// Only uniquely-held descriptors are returned: multicast delivers
    /// one tail per destination, so the same descriptor can be recycled
    /// while sibling copies are still in flight — those entries are
    /// simply dropped here, releasing their refcount.
    pub(crate) fn take(&mut self) -> Option<Arc<PacketDescriptor>> {
        self.stats.takes += 1;
        while let Some(descriptor) = self.free.pop() {
            if Arc::strong_count(&descriptor) == 1 {
                self.stats.hits += 1;
                return Some(descriptor);
            }
        }
        None
    }

    /// Offers a delivered packet's descriptor back to the pool. Shared
    /// descriptors (other flits of the train still in flight) are
    /// refused now and re-offered when their last holder delivers.
    pub(crate) fn recycle(&mut self, descriptor: Arc<PacketDescriptor>) {
        if self.free.len() < self.cap && Arc::strong_count(&descriptor) == 1 {
            self.free.push(descriptor);
            self.stats.recycled += 1;
            self.stats.occupancy_high_water =
                self.stats.occupancy_high_water.max(self.free.len() as u64);
        } else {
            self.stats.rejected += 1;
        }
    }

    /// Current free-list population (test introspection).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc_kernel::Time;
    use asynoc_packet::{DestSet, PacketId, RouteHeader};

    fn descriptor(id: u64) -> Arc<PacketDescriptor> {
        Arc::new(PacketDescriptor::new(
            PacketId::new(id),
            0,
            DestSet::unicast(1),
            RouteHeader::for_tree(8),
            5,
            Time::ZERO,
        ))
    }

    #[test]
    fn recycled_descriptor_is_reused() {
        let mut pool = FlitPool::new(8);
        let first = descriptor(1);
        pool.recycle(first);
        let taken = pool.take().expect("pool has one descriptor");
        assert_eq!(taken.id(), PacketId::new(1));
        assert!(pool.take().is_none());
    }

    #[test]
    fn shared_descriptors_are_refused() {
        let mut pool = FlitPool::new(8);
        let shared = descriptor(2);
        let holder = Arc::clone(&shared);
        pool.recycle(shared);
        assert_eq!(pool.len(), 0, "shared descriptor must not be pooled");
        // Once the sibling copy delivers, its recycle succeeds.
        pool.recycle(holder);
        assert_eq!(pool.len(), 1);
        assert!(pool.take().is_some());
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = FlitPool::new(2);
        for id in 0..5 {
            pool.recycle(descriptor(id));
        }
        assert_eq!(pool.len(), 2);
    }
}
