//! Armed fault state the run loop consults.
//!
//! [`ArmedFaults`] is the compiled, mutable form of a fault plan: tables
//! the engine's hot paths probe at channel launches, source header
//! firings, and (via the model) routing-symbol reads. When no entry is
//! armed every probe is one `Option` branch, so the hooks are free for
//! clean runs — `run` passes no fault state at all and
//! [`run_with_faults`](crate::run_with_faults) threads one in.
//!
//! The struct is substrate-agnostic: channels, sources, and symbol sites
//! are plain indices; the substrate's fault domain decides which indices
//! are legal targets.

use asynoc_kernel::{Duration, FaultClass};
use asynoc_packet::RouteSymbol;

/// A transient extra delay on a channel's next `hits` launches.
#[derive(Clone, Debug)]
struct StallFault {
    channel: usize,
    hits_left: u32,
    extra: Duration,
}

/// A corrupted (or stuck) routing symbol at a fanout site, applied to
/// whole trains so headers and bodies stay coherent.
#[derive(Clone, Debug)]
struct SymbolFault {
    site: usize,
    hits_left: u32,
    symbol: RouteSymbol,
    class: FaultClass,
}

/// Per-train override state once a symbol fault latched onto a packet.
#[derive(Clone, Debug)]
struct ActiveOverride {
    site: usize,
    packet: u64,
    symbol: RouteSymbol,
}

/// A drop fault on one source's nth generated header.
#[derive(Clone, Debug)]
struct SourceFault {
    source: usize,
    /// Which header (0-based, in generation order) this entry targets.
    nth: u64,
    /// Times the header is dropped before going through (ignored when
    /// `lethal`).
    drops: u32,
    /// Source timeout before each re-send.
    retry_delay: Duration,
    /// `true` → the packet is discarded outright (unrecoverable).
    lethal: bool,
    consumed: bool,
}

/// Live drop state for one in-progress header.
#[derive(Clone, Debug)]
struct ActiveDrop {
    source: usize,
    packet: u64,
    drops_left: u32,
    retry_delay: Duration,
}

/// The legal fault-injection targets of one elaborated substrate.
///
/// Substrates expose this so plan generators draw targets only where a
/// fault is meaningful (and, for symbol corruption, provably
/// recoverable): arbitrary indices would either miss or violate the
/// delivery audit rather than model a physical fault.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultDomain {
    /// Total channel count; stall targets are `0..channels`.
    pub channels: usize,
    /// Endpoint count; drop/lose targets are `0..endpoints`.
    pub endpoints: usize,
    /// Symbol-read sites where a widened (`Both`) override is
    /// recoverable: every spurious copy is guaranteed to throttle at a
    /// non-speculative stage before reaching arbitration. Empty on
    /// substrates without tree routing (the mesh).
    pub corrupt_sites: Vec<usize>,
}

/// What the source must do about a header the fault layer intercepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceFaultAction {
    /// Drop the flit on the link; re-send after the timeout.
    Resend {
        /// Source timeout before the re-send.
        delay: Duration,
    },
    /// Discard the whole packet (drop budget exhausted by plan).
    Lose,
}

/// Counters of every fault the armed state actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Channel launches stalled.
    pub stalls: u64,
    /// Trains whose routing symbol was corrupted.
    pub corrupted: u64,
    /// Trains forced into speculative broadcast.
    pub stuck: u64,
    /// Header flits dropped at a source (each followed by a re-send
    /// unless the packet was lethal).
    pub drops: u64,
    /// Packets discarded at the source.
    pub lost: u64,
}

impl FaultSummary {
    /// Total individual fault events fired.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stalls + self.corrupted + self.stuck + self.drops + self.lost
    }
}

/// The armed fault tables one run consults. Build with the `add_*`
/// methods (typically from a decoded `asynoc-faults` plan), pass to
/// [`run_with_faults`](crate::run_with_faults), then read back the
/// [`summary`](ArmedFaults::summary).
#[derive(Clone, Debug, Default)]
pub struct ArmedFaults {
    stalls: Vec<StallFault>,
    symbols: Vec<SymbolFault>,
    sources: Vec<SourceFault>,
    active_overrides: Vec<ActiveOverride>,
    active_drops: Vec<ActiveDrop>,
    /// Headers generated per source so far (indexes `SourceFault::nth`).
    header_seq: Vec<u64>,
    summary: FaultSummary,
}

impl ArmedFaults {
    /// An empty (disarmed) table.
    #[must_use]
    pub fn new() -> Self {
        ArmedFaults::default()
    }

    /// Whether any fault entry is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        !(self.stalls.is_empty() && self.symbols.is_empty() && self.sources.is_empty())
    }

    /// Arms `hits` extra-delay stalls on `channel`.
    pub fn add_stall(&mut self, channel: usize, hits: u32, extra: Duration) {
        self.stalls.push(StallFault {
            channel,
            hits_left: hits,
            extra,
        });
    }

    /// Arms `hits` whole-train symbol overrides at fanout site `site`.
    /// `class` distinguishes a corrupted read ([`FaultClass::SymbolCorrupt`])
    /// from a stuck broadcast ([`FaultClass::StuckBroadcast`]).
    pub fn add_symbol(&mut self, site: usize, hits: u32, symbol: RouteSymbol, class: FaultClass) {
        self.symbols.push(SymbolFault {
            site,
            hits_left: hits,
            symbol,
            class,
        });
    }

    /// Arms a recoverable drop: `source`'s `nth` header is dropped
    /// `drops` times, re-sent after `retry_delay` each time.
    pub fn add_drop(&mut self, source: usize, nth: u64, drops: u32, retry_delay: Duration) {
        self.sources.push(SourceFault {
            source,
            nth,
            drops,
            retry_delay,
            lethal: false,
            consumed: false,
        });
    }

    /// Arms an unrecoverable loss: `source`'s `nth` header — and its
    /// whole train — is discarded at the source.
    pub fn add_lose(&mut self, source: usize, nth: u64) {
        self.sources.push(SourceFault {
            source,
            nth,
            drops: 0,
            retry_delay: Duration::ZERO,
            lethal: true,
            consumed: false,
        });
    }

    /// What this table actually fired so far.
    #[must_use]
    pub fn summary(&self) -> FaultSummary {
        self.summary
    }

    /// Overwrites the summary with the serially-ordered totals the
    /// sharded fold reconstructed (each shard fired only its own share).
    pub(crate) fn force_summary(&mut self, summary: FaultSummary) {
        self.summary = summary;
    }

    /// Consumes one stall hit for a launch on `channel`, if armed.
    pub(crate) fn stall_for(&mut self, channel: usize) -> Option<Duration> {
        let entry = self
            .stalls
            .iter_mut()
            .find(|s| s.channel == channel && s.hits_left > 0)?;
        entry.hits_left -= 1;
        self.summary.stalls += 1;
        Some(entry.extra)
    }

    /// The symbol `site` reads for a flit of `packet` — `None` when no
    /// override applies. The boolean is `true` exactly once per train,
    /// when the override first latches (the caller emits the fault event
    /// then). Overrides latch on headers and persist for the train so
    /// body flits follow their header.
    pub(crate) fn symbol_override(
        &mut self,
        site: usize,
        packet: u64,
        is_header: bool,
    ) -> Option<(RouteSymbol, FaultClass, bool)> {
        if let Some(active) = self
            .active_overrides
            .iter()
            .find(|a| a.site == site && a.packet == packet)
        {
            let class = self
                .symbols
                .iter()
                .find(|s| s.site == site)
                .map_or(FaultClass::SymbolCorrupt, |s| s.class);
            return Some((active.symbol, class, false));
        }
        if !is_header {
            return None;
        }
        let entry = self
            .symbols
            .iter_mut()
            .find(|s| s.site == site && s.hits_left > 0)?;
        entry.hits_left -= 1;
        match entry.class {
            FaultClass::StuckBroadcast => self.summary.stuck += 1,
            _ => self.summary.corrupted += 1,
        }
        let (symbol, class) = (entry.symbol, entry.class);
        self.active_overrides.push(ActiveOverride {
            site,
            packet,
            symbol,
        });
        Some((symbol, class, true))
    }

    /// Called once per header the source pops for launch; returns the
    /// action the fault layer demands, if any. Retried headers (same
    /// packet) resume their live drop state instead of matching new
    /// entries, so `nth` counts *generated* headers, not attempts.
    pub(crate) fn on_source_header(
        &mut self,
        source: usize,
        packet: u64,
    ) -> Option<SourceFaultAction> {
        if let Some(pos) = self
            .active_drops
            .iter()
            .position(|a| a.source == source && a.packet == packet)
        {
            let active = &mut self.active_drops[pos];
            if active.drops_left > 0 {
                active.drops_left -= 1;
                self.summary.drops += 1;
                return Some(SourceFaultAction::Resend {
                    delay: active.retry_delay,
                });
            }
            self.active_drops.remove(pos);
            return None;
        }
        if self.header_seq.len() <= source {
            self.header_seq.resize(source + 1, 0);
        }
        let seq = self.header_seq[source];
        self.header_seq[source] += 1;
        let entry = self
            .sources
            .iter_mut()
            .find(|s| s.source == source && s.nth == seq && !s.consumed)?;
        entry.consumed = true;
        if entry.lethal {
            self.summary.drops += 1;
            self.summary.lost += 1;
            return Some(SourceFaultAction::Lose);
        }
        if entry.drops == 0 {
            return None;
        }
        self.summary.drops += 1;
        self.active_drops.push(ActiveDrop {
            source,
            packet,
            drops_left: entry.drops - 1,
            retry_delay: entry.retry_delay,
        });
        Some(SourceFaultAction::Resend {
            delay: entry.retry_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_probes_are_inert() {
        let mut faults = ArmedFaults::new();
        assert!(!faults.is_armed());
        assert_eq!(faults.stall_for(3), None);
        assert_eq!(faults.symbol_override(1, 7, true), None);
        assert_eq!(faults.on_source_header(0, 7), None);
        assert_eq!(faults.summary(), FaultSummary::default());
    }

    #[test]
    fn stalls_consume_hits() {
        let mut faults = ArmedFaults::new();
        faults.add_stall(5, 2, Duration::from_ps(300));
        assert!(faults.is_armed());
        assert_eq!(faults.stall_for(4), None, "other channels untouched");
        assert_eq!(faults.stall_for(5), Some(Duration::from_ps(300)));
        assert_eq!(faults.stall_for(5), Some(Duration::from_ps(300)));
        assert_eq!(faults.stall_for(5), None, "budget exhausted");
        assert_eq!(faults.summary().stalls, 2);
    }

    #[test]
    fn symbol_overrides_latch_per_train() {
        let mut faults = ArmedFaults::new();
        faults.add_symbol(9, 1, RouteSymbol::Both, FaultClass::SymbolCorrupt);
        // Body flits of an unlatched train pass through unharmed.
        assert_eq!(faults.symbol_override(9, 40, false), None);
        let (sym, class, fresh) = faults.symbol_override(9, 41, true).expect("latches");
        assert_eq!(sym, RouteSymbol::Both);
        assert_eq!(class, FaultClass::SymbolCorrupt);
        assert!(fresh);
        // Re-reads (retries, body flits) keep the override, not fresh.
        let (sym, _, fresh) = faults.symbol_override(9, 41, false).expect("still latched");
        assert_eq!(sym, RouteSymbol::Both);
        assert!(!fresh);
        let (_, _, fresh) = faults.symbol_override(9, 41, true).expect("header retry");
        assert!(!fresh);
        // The single hit is spent; the next train is clean.
        assert_eq!(faults.symbol_override(9, 42, true), None);
        assert_eq!(faults.summary().corrupted, 1);
    }

    #[test]
    fn drops_resend_then_clear() {
        let mut faults = ArmedFaults::new();
        faults.add_drop(2, 1, 2, Duration::from_ps(500));
        // Header 0 passes, header 1 matches.
        assert_eq!(faults.on_source_header(2, 100), None);
        assert_eq!(
            faults.on_source_header(2, 101),
            Some(SourceFaultAction::Resend {
                delay: Duration::from_ps(500)
            })
        );
        // The retried header resumes the live state, not a new match.
        assert_eq!(
            faults.on_source_header(2, 101),
            Some(SourceFaultAction::Resend {
                delay: Duration::from_ps(500)
            })
        );
        assert_eq!(faults.on_source_header(2, 101), None, "finally goes out");
        assert_eq!(faults.on_source_header(2, 102), None, "later headers clean");
        assert_eq!(faults.summary().drops, 2);
        assert_eq!(faults.summary().lost, 0);
    }

    #[test]
    fn lethal_drop_counts_as_lost() {
        let mut faults = ArmedFaults::new();
        faults.add_lose(0, 0);
        assert_eq!(faults.on_source_header(0, 7), Some(SourceFaultAction::Lose));
        assert_eq!(faults.summary().lost, 1);
        assert_eq!(faults.on_source_header(0, 8), None);
    }
}
