//! The engine's event loop, channel plumbing, and measurement protocol.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

use asynoc_kernel::{Duration, FaultClass, SchedulerKind, SchedulerQueue, Time};
use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader, RouteSymbol};
use asynoc_probe::{EngineProfile, EventKindCounts, PhaseWall, ProgressMeter, ShardProfile};
use asynoc_stats::throughput::ThroughputReport;
use asynoc_stats::{LatencyStats, Phases, ThroughputCounter};
use asynoc_traffic::SourceTraffic;

use crate::fault::{ArmedFaults, SourceFaultAction};
use crate::observer::{Observer, SimEvent};
use crate::pool::FlitPool;
use crate::shard::{EventRecord, OwnedSimEvent, PendOp, ShardState, WireMsg};

/// One end of a channel: who launches into it / who consumes from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef<N> {
    /// A traffic source (engine-managed).
    Source(usize),
    /// A substrate node (model-managed).
    Node(N),
    /// A delivery endpoint (engine-managed).
    Sink(usize),
}

/// Static wiring of one channel.
#[derive(Clone, Copy, Debug)]
pub struct ChannelEnds<N> {
    /// The entity that launches flits into this channel and is woken when
    /// it frees.
    pub upstream: NodeRef<N>,
    /// The entity woken when a flit arrives at this channel's far end.
    pub downstream: NodeRef<N>,
}

/// A stable ordering key for a substrate's node identifiers.
///
/// The engine totally orders simultaneous events by a canonical
/// `(event kind, entity index)` key (see the crate docs on scheduler
/// independence); retry events target model nodes, so the model's node
/// type must map injectively into a `u64` that is the same on every
/// run. Keys must fit in 56 bits — the top byte carries the event kind.
pub trait NodeKey {
    /// This node's ordering key (injective over the substrate's nodes).
    fn node_key(&self) -> u64;
}

impl NodeKey for () {
    fn node_key(&self) -> u64 {
        0
    }
}

impl NodeKey for usize {
    fn node_key(&self) -> u64 {
        *self as u64
    }
}

/// What a substrate must provide to run on the engine.
///
/// The engine owns sources, sinks, channels, the event queue, and all
/// measurement; the model owns its nodes' dynamic state and fires them
/// when the engine wakes them.
pub trait SimModel {
    /// The substrate's node identifier (e.g. an enum of fanout/fanin
    /// indices for the MoT, a router index for the mesh).
    type Node: Copy + std::fmt::Debug + NodeKey + Send;

    /// Number of traffic endpoints (sources == sinks).
    fn endpoints(&self) -> usize;
    /// Total channel count; channel ids are `0..channel_count()`.
    fn channel_count(&self) -> usize;
    /// Wiring of `channel`.
    fn channel_ends(&self, channel: usize) -> ChannelEnds<Self::Node>;
    /// The injection channel of `source`.
    fn source_channel(&self, source: usize) -> usize;
    /// Flight time of a flit from a source onto its injection channel.
    fn source_wire_delay(&self) -> Duration;
    /// Minimum flit spacing out of a source.
    fn source_cycle(&self) -> Duration;
    /// Channel-free delay after a sink consumes a flit.
    fn sink_ack(&self) -> Duration;
    /// Whether multicasts are serialized at the source into unicast
    /// clones (the paper's baseline; always true for the mesh).
    fn serializes_multicast(&self) -> bool;
    /// Builds the routing header a packet from `source` to `dests`
    /// carries.
    fn route(&self, source: usize, dests: DestSet) -> RouteHeader;
    /// Rewrites `header` in place for a packet from `source` to `dests`,
    /// reusing its symbol storage. The engine calls this when it recycles
    /// a delivered packet's descriptor; substrates with an in-place
    /// encoder should override the default (which falls back to
    /// [`route`](SimModel::route) and allocates).
    fn route_into(&self, source: usize, dests: DestSet, header: &mut RouteHeader) {
        *header = self.route(source, dests);
    }
    /// Hook called once per created physical packet (serialized clones
    /// included); models accumulate per-packet analytics here.
    fn on_packet(&mut self, source: usize, dest: DestSet, measured: bool) {
        let _ = (source, dest, measured);
    }
    /// Attempts to fire `node`: consume an arrived input flit, launch
    /// outputs, schedule frees/retries via `ctx`. Called whenever an
    /// event may have unblocked the node; must do nothing if the node's
    /// preconditions do not hold.
    fn fire(&mut self, node: Self::Node, ctx: &mut Ctx<'_, '_, Self::Node>);
}

/// Execution parameters of one run.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Warmup/measurement windows.
    pub phases: Phases,
    /// Whether to drain in-flight measured packets after injection stops
    /// (bounded by a hard cap so saturated runs still terminate).
    pub drain: bool,
    /// Which event-queue implementation schedules the run. Both kinds pop
    /// the identical event stream; this is a throughput knob only.
    pub scheduler: SchedulerKind,
    /// Pre-sized event-queue capacity, or `None` to derive one from the
    /// model's channel and endpoint counts (avoids early regrow churn).
    pub queue_capacity: Option<usize>,
    /// Collect a runtime self-profile ([`EngineReport::profile`]): host
    /// wall-clock phase splits, queue/pool counters, and — on sharded
    /// runs — per-shard barrier-wait histograms and mailbox traffic.
    /// Profiling only reads clocks and counters; the simulated results
    /// stay bit-identical with it on or off.
    pub profile: bool,
    /// Draw a single-line stderr heartbeat (events done, rate, per-shard
    /// lag) while the run executes. Suppressed automatically when stderr
    /// is not a terminal unless `ASYNOC_PROGRESS_FORCE` is set.
    pub progress: bool,
    /// Bound on the engine's stored latency-sample reservoir, or `None`
    /// to keep every sample (exact percentiles). Streaming runs set a
    /// cap so peak memory is independent of run length; `count`, `mean`,
    /// `min`, and `max` stay exact either way.
    pub latency_cap: Option<usize>,
}

impl RunSpec {
    /// Creates a spec with the default scheduler and a model-derived
    /// queue capacity.
    #[must_use]
    pub fn new(phases: Phases, drain: bool) -> Self {
        RunSpec {
            phases,
            drain,
            scheduler: SchedulerKind::default(),
            queue_capacity: None,
            profile: false,
            progress: false,
            latency_cap: None,
        }
    }

    /// Selects the event-queue implementation.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Overrides the event queue's initial capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Enables or disables runtime self-profiling (see
    /// [`RunSpec::profile`]).
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Enables or disables the stderr progress heartbeat (see
    /// [`RunSpec::progress`]).
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Bounds the latency-sample reservoir (see
    /// [`RunSpec::latency_cap`]).
    #[must_use]
    pub fn with_latency_cap(mut self, cap: Option<usize>) -> Self {
        self.latency_cap = cap;
        self
    }
}

/// How often the progress heartbeat may redraw.
pub(crate) const PROGRESS_INTERVAL_MS: u64 = 250;
/// Event-count mask between heartbeat ticks: the run loop only consults
/// the wall clock every `PROGRESS_TICK_MASK + 1` events.
pub(crate) const PROGRESS_TICK_MASK: u64 = 0xFFF;

/// The heartbeat a serial run owns outright (sharded runs build one
/// shared meter in the sharded runner instead).
fn serial_progress(spec: &RunSpec) -> Option<Arc<ProgressMeter>> {
    if spec.progress {
        ProgressMeter::stderr(1, PROGRESS_INTERVAL_MS).map(Arc::new)
    } else {
        None
    }
}

/// The host wall-clock phase tracker of a profiled run: stamps the
/// simulated-phase boundary crossings (warmup → measurement → drain) so
/// the profile can say where the *host's* time went. Boxed behind an
/// `Option` in [`Ctx`]; a non-profiled run pays one predictable branch
/// per event and never reads the clock.
#[derive(Debug)]
pub(crate) struct RunProf {
    measure_start: Time,
    injection_end: Time,
    /// 0 = warmup, 1 = measurement, 2 = drain.
    stage: u8,
    stamp: std::time::Instant,
    wall: PhaseWall,
}

impl RunProf {
    fn new(phases: Phases) -> Self {
        RunProf {
            measure_start: Time::ZERO + phases.warmup(),
            injection_end: phases.measurement_end(),
            stage: 0,
            stamp: std::time::Instant::now(),
            wall: PhaseWall::default(),
        }
    }

    /// Notes that the run is about to execute an event at `t`, closing
    /// any simulated phase the event has moved past. Reads the clock
    /// only at the two boundary crossings.
    #[inline]
    fn note(&mut self, t: Time) {
        while self.stage < 2 {
            let boundary = if self.stage == 0 {
                self.measure_start
            } else {
                self.injection_end
            };
            if t < boundary {
                break;
            }
            let now = std::time::Instant::now();
            let elapsed = u64::try_from((now - self.stamp).as_nanos()).unwrap_or(u64::MAX);
            if self.stage == 0 {
                self.wall.warmup_ns += elapsed;
            } else {
                self.wall.measure_ns += elapsed;
            }
            self.stamp = now;
            self.stage += 1;
        }
    }

    /// Closes the profile, attributing the remaining time to whichever
    /// phase the run ended in.
    fn close(self) -> PhaseWall {
        let mut wall = self.wall;
        let elapsed = u64::try_from(self.stamp.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match self.stage {
            0 => wall.warmup_ns += elapsed,
            1 => wall.measure_ns += elapsed,
            _ => wall.drain_ns += elapsed,
        }
        wall
    }
}

/// Everything the engine measured in one run.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Per-logical-packet latency (creation → last header arrival).
    pub latency: LatencyStats,
    /// Offered/injected/delivered flit rates per endpoint.
    pub throughput: ThroughputReport,
    /// Logical packets whose latency was measured.
    pub packets_measured: usize,
    /// Measured packets still in flight at the end (saturation
    /// indicator).
    pub packets_incomplete: usize,
    /// Flits throttled (dropped by speculation recovery) in the window.
    pub flits_throttled: u64,
    /// Flits delivered to sinks in the window.
    pub flits_delivered: u64,
    /// Events the engine processed over the whole run.
    pub events_processed: u64,
    /// How many shards executed the run (1 for a serial run).
    pub shards: usize,
    /// Events processed per shard (one entry, equal to
    /// `events_processed`, for a serial run).
    pub shard_events: Vec<u64>,
    /// Host wall-clock time the run took.
    pub wall: std::time::Duration,
    /// The runtime self-profile, when [`RunSpec::profile`] was set.
    pub profile: Option<Box<EngineProfile>>,
}

/// Events driving a simulation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event<N> {
    /// Source `source` generates its next packet.
    Inject { source: usize },
    /// The flit in flight on `channel` reaches the downstream input.
    Arrive { channel: usize },
    /// `channel` completes its handshake and becomes free.
    FreeChannel { channel: usize },
    /// Re-attempt firing after a cycle-floor stall.
    Retry { target: NodeRef<N> },
}

/// The canonical ordering key of an event: kind rank in the top byte,
/// entity index below. Simultaneous events fire in ascending key order
/// on every scheduler *and* on every shard layout — the serial loop and
/// the sharded merge both sort by `(time, key)`, which is what makes a
/// sharded run's observable stream bit-identical to the serial one.
/// Equal `(time, key)` pairs (re-scheduled retries of one target) are
/// always scheduled by the same shard and fall back to insertion order.
pub(crate) fn event_key<N: NodeKey>(event: &Event<N>) -> u64 {
    match event {
        Event::Inject { source } => *source as u64,
        Event::Arrive { channel } => (1 << 56) | *channel as u64,
        Event::FreeChannel { channel } => (2 << 56) | *channel as u64,
        Event::Retry {
            target: NodeRef::Source(source),
        } => (3 << 56) | *source as u64,
        Event::Retry {
            target: NodeRef::Node(node),
        } => (4 << 56) | node.node_key(),
        Event::Retry {
            target: NodeRef::Sink(sink),
        } => (5 << 56) | *sink as u64,
    }
}

/// Dynamic state of one channel.
#[derive(Clone, Debug)]
enum ChannelState {
    /// Empty; upstream may launch.
    Free,
    /// A flit was launched and is in flight.
    InFlight(Flit),
    /// The flit sits at the downstream input, awaiting consumption.
    Arrived(Flit),
    /// Consumed; the handshake is completing (ack in flight).
    Draining,
}

impl ChannelState {
    fn is_free(&self) -> bool {
        matches!(self, ChannelState::Free)
    }

    fn arrived(&self) -> Option<&Flit> {
        match self {
            ChannelState::Arrived(flit) => Some(flit),
            _ => None,
        }
    }
}

/// Latency bookkeeping for one logical packet.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pending {
    pub(crate) created_at: Time,
    /// Destinations that must still receive the header.
    pub(crate) awaiting: DestSet,
    pub(crate) measured: bool,
}

/// Deterministic hash state for the pending-packet map.
///
/// The std `RandomState` seeds itself per process, which makes hashmap
/// growth and tombstone layout — and therefore the run loop's exact
/// allocation behavior — vary between processes. Packet ids are
/// sequential `u64`s, so a SplitMix64 finalizer gives full avalanche
/// with one multiply chain and the same layout on every run.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct DetHashState;

impl BuildHasher for DetHashState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher(0)
    }
}

/// See [`DetHashState`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; the pending map only hashes u64 keys.
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

/// The engine state a firing node may touch.
///
/// Models read inputs ([`arrived`](Ctx::arrived)), consume them
/// ([`take_arrived`](Ctx::take_arrived)), launch outputs
/// ([`launch`](Ctx::launch)), schedule handshake completion
/// ([`free_after`](Ctx::free_after)) and cycle-floor retries
/// ([`retry`](Ctx::retry)), and report what they did
/// ([`emit`](Ctx::emit)).
pub struct Ctx<'obs, 'run, N> {
    phases: Phases,
    drain: bool,
    injection_end: Time,
    hard_cap: Time,

    queue: SchedulerQueue<Event<N>>,
    now: Time,

    channels: Vec<ChannelState>,
    source_queue: Vec<VecDeque<Flit>>,
    source_next_fire: Vec<Time>,
    traffic: Vec<SourceTraffic>,

    /// Per-source packet counters: ids are `(source << 32) | counter`,
    /// so every shard allocates the exact ids a serial run would without
    /// any cross-shard coordination.
    next_packet_id: Vec<u64>,
    pending: HashMap<u64, Pending, DetHashState>,
    pending_measured: usize,

    /// Sharded-run state, or `None` on a serial run (one branch per
    /// touch point keeps the serial hot path free).
    shard: Option<Box<ShardState<N>>>,

    latency: LatencyStats,
    throughput: ThroughputCounter,
    flits_throttled: u64,
    flits_delivered: u64,
    events_processed: u64,
    /// Per-kind event counts (always on; a u64 add per event).
    kinds: EventKindCounts,
    /// Phase wall-clock tracker, armed by [`RunSpec::profile`].
    prof: Option<Box<RunProf>>,
    /// Progress heartbeat, armed by [`RunSpec::progress`] (shared with
    /// the other shards of a sharded run).
    progress: Option<Arc<ProgressMeter>>,

    observers: &'run mut [&'obs mut dyn Observer<N>],
    /// Armed fault tables, or `None` on clean runs (one branch per hook
    /// keeps the disarmed path free).
    faults: Option<&'run mut ArmedFaults>,
}

impl<N: Copy + std::fmt::Debug + NodeKey> Ctx<'_, '_, N> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether `now` falls inside the measurement window.
    #[must_use]
    pub fn in_window(&self) -> bool {
        self.phases.in_measurement(self.now)
    }

    /// Whether `channel` is free for a launch.
    #[must_use]
    pub fn is_free(&self, channel: usize) -> bool {
        self.channels[channel].is_free()
    }

    /// The flit awaiting consumption on `channel`, if any.
    #[must_use]
    pub fn arrived(&self, channel: usize) -> Option<&Flit> {
        self.channels[channel].arrived()
    }

    /// Consumes the arrived flit on `channel`, leaving the channel
    /// draining (its handshake completes via [`free_after`](Ctx::free_after)).
    ///
    /// # Panics
    ///
    /// Panics if no flit is awaiting consumption on `channel`.
    pub fn take_arrived(&mut self, channel: usize) -> Flit {
        let state = std::mem::replace(&mut self.channels[channel], ChannelState::Draining);
        let ChannelState::Arrived(flit) = state else {
            unreachable!("take_arrived on a channel with no waiting flit");
        };
        flit
    }

    /// Schedules `event` at `at` under its canonical ordering key.
    fn schedule_event(&mut self, at: Time, event: Event<N>) {
        let key = event_key(&event);
        self.queue.schedule_keyed(at, key, event);
    }

    /// Launches `flit` onto `channel`; it arrives downstream after
    /// `flight`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `channel` is not free.
    pub fn launch(&mut self, channel: usize, flit: Flit, flight: Duration) {
        debug_assert!(self.channels[channel].is_free(), "launch on busy channel");
        let mut flight = flight;
        if let Some(extra) = self
            .faults
            .as_mut()
            .and_then(|faults| faults.stall_for(channel))
        {
            self.emit(&SimEvent::Fault {
                class: FaultClass::LinkStall,
                site: channel,
                flit: &flit,
            });
            flight += extra;
        }
        if let Some(shard) = self.shard.as_mut() {
            let owner = shard.partition.channel_downstream_shard(channel);
            if owner != shard.shard {
                // Cut channel: the arrival executes on the downstream
                // owner. Keep the local copy in flight so this side's
                // `is_free` stays honest until the free message returns.
                debug_assert!(
                    flight >= shard.partition.lookahead(),
                    "cut-channel flight below the partition's lookahead"
                );
                let at = self.now + flight;
                self.channels[channel] = ChannelState::InFlight(flit.clone());
                shard
                    .outbox
                    .push((owner, WireMsg::Arrive { channel, flit, at }));
                return;
            }
        }
        self.channels[channel] = ChannelState::InFlight(flit);
        self.schedule_event(self.now + flight, Event::Arrive { channel });
    }

    /// The routing symbol fanout site `site` reads for a flit of
    /// `packet`, when an armed fault overrides the encoded one. Returns
    /// the override plus the class to report — the class is `Some`
    /// exactly once per afflicted train, when the override first
    /// latches; the model emits the [`SimEvent::Fault`] then.
    pub fn fault_symbol(
        &mut self,
        site: usize,
        packet: u64,
        is_header: bool,
    ) -> Option<(RouteSymbol, Option<FaultClass>)> {
        let faults = self.faults.as_mut()?;
        let (symbol, class, fresh) = faults.symbol_override(site, packet, is_header)?;
        Some((symbol, fresh.then_some(class)))
    }

    /// Schedules `channel` (currently draining) to become free after
    /// `delay`, waking its upstream entity.
    pub fn free_after(&mut self, channel: usize, delay: Duration) {
        if let Some(shard) = self.shard.as_mut() {
            let owner = shard.partition.channel_upstream_shard(channel);
            if owner != shard.shard {
                // Cut channel consumed on this side: the free event wakes
                // the upstream launcher, so it executes on its shard.
                debug_assert!(
                    delay >= shard.partition.lookahead(),
                    "cut-channel free delay below the partition's lookahead"
                );
                let at = self.now + delay;
                shard.outbox.push((owner, WireMsg::Free { channel, at }));
                return;
            }
        }
        self.schedule_event(self.now + delay, Event::FreeChannel { channel });
    }

    /// Schedules a re-attempt to fire `node` at `at` (cycle-floor
    /// stalls only; all other blockings are woken by the event that
    /// clears them).
    pub fn retry(&mut self, node: N, at: Time) {
        self.schedule_event(
            at,
            Event::Retry {
                target: NodeRef::Node(node),
            },
        );
    }

    /// Reports an instrumented event to every registered observer, and
    /// folds throttle counts into the engine's statistics.
    pub fn emit(&mut self, event: &SimEvent<'_, N>) {
        let in_window = self.in_window();
        if in_window {
            if let SimEvent::Drop { .. } = event {
                self.flits_throttled += 1;
            }
        }
        if let Some(shard) = self.shard.as_mut() {
            // Sharded runs buffer the stream per executed event; the
            // fold replays it to the real observers in exact serial
            // order after the run.
            if shard.record_obs {
                shard.open_record().obs.push(OwnedSimEvent::capture(event));
            }
            return;
        }
        for observer in self.observers.iter_mut() {
            observer.on_event(self.now, in_window, event);
        }
    }

    fn alloc_id(&mut self, source: usize) -> PacketId {
        let id = PacketId::new(((source as u64) << 32) | self.next_packet_id[source]);
        self.next_packet_id[source] += 1;
        id
    }
}

/// Executes one simulation of `model` fed by `traffic`, reporting to
/// `observers`, and returns the measurements plus the model (whose
/// accumulated state — e.g. per-packet analytics from
/// [`SimModel::on_packet`] — the caller may harvest).
///
/// # Panics
///
/// Panics if `traffic` does not provide one generator per endpoint, or
/// if a header reaches a destination outside its packet's awaited set
/// (the delivery audit: a duplicate means a redundant speculative copy
/// escaped throttling).
pub fn run<M: SimModel>(
    model: M,
    traffic: Vec<SourceTraffic>,
    spec: RunSpec,
    observers: &mut [&mut dyn Observer<M::Node>],
) -> (EngineReport, M) {
    Session::new(model, traffic, spec, observers).run()
}

/// [`run`], with an armed fault table threaded into the loop's hooks:
/// channel launches may be stalled, routing-symbol reads overridden, and
/// source headers dropped (with re-send) or lost, exactly as `faults`
/// prescribes. The caller keeps ownership of `faults` and reads back its
/// [`summary`](ArmedFaults::summary) afterwards.
///
/// # Panics
///
/// As [`run`].
pub fn run_with_faults<M: SimModel>(
    model: M,
    traffic: Vec<SourceTraffic>,
    spec: RunSpec,
    faults: &mut ArmedFaults,
    observers: &mut [&mut dyn Observer<M::Node>],
) -> (EngineReport, M) {
    Session::with_faults(model, traffic, spec, observers, faults).run()
}

/// One prepared simulation: model, traffic, wiring, and all pre-sized
/// engine state, ready to [`run`](Session::run).
///
/// Construction does all the setup allocation — channel wiring, the
/// event queue (heap or calendar, per [`RunSpec::scheduler`]), source
/// queues, and the latency reservoir — so that the run loop itself can
/// stay allocation-free once the descriptor pool warms up.
///
/// # Examples
///
/// ```
/// use asynoc_engine::{ChannelEnds, Ctx, NodeRef, RunSpec, Session, SimModel};
/// use asynoc_kernel::Duration;
/// use asynoc_packet::{DestSet, RouteHeader};
/// use asynoc_stats::Phases;
/// use asynoc_traffic::{Benchmark, SourceTraffic};
///
/// /// Two endpoints joined by crossed wires: source 0 feeds sink 1 and
/// /// source 1 feeds sink 0, with no routing nodes in between.
/// struct CrossedWires;
///
/// impl SimModel for CrossedWires {
///     type Node = ();
///     fn endpoints(&self) -> usize { 2 }
///     fn channel_count(&self) -> usize { 2 }
///     fn channel_ends(&self, channel: usize) -> ChannelEnds<()> {
///         ChannelEnds {
///             upstream: NodeRef::Source(channel),
///             downstream: NodeRef::Sink(1 - channel),
///         }
///     }
///     fn source_channel(&self, source: usize) -> usize { source }
///     fn source_wire_delay(&self) -> Duration { Duration::from_ps(50) }
///     fn source_cycle(&self) -> Duration { Duration::from_ps(100) }
///     fn sink_ack(&self) -> Duration { Duration::from_ps(100) }
///     fn serializes_multicast(&self) -> bool { true }
///     fn route(&self, _source: usize, _dests: DestSet) -> RouteHeader {
///         RouteHeader::for_tree(2)
///     }
///     fn fire(&mut self, _node: (), _ctx: &mut Ctx<'_, '_, ()>) {}
/// }
///
/// // Nearest-neighbor traffic sends each packet to source + 1 (mod 2),
/// // which is exactly where the crossed wires deliver.
/// let traffic: Vec<SourceTraffic> = (0..2)
///     .map(|s| SourceTraffic::new(Benchmark::NearestNeighbor, 2, s, 0.4, 1, 7).unwrap())
///     .collect();
/// let spec = RunSpec::new(Phases::new(Duration::from_ns(2), Duration::from_ns(20)), true);
/// let (report, _model) = Session::new(CrossedWires, traffic, spec, &mut []).run();
/// assert!(report.packets_measured > 0);
/// assert_eq!(report.packets_incomplete, 0);
/// ```
pub struct Session<'obs, 'run, M: SimModel> {
    model: M,
    wiring: Vec<ChannelEnds<M::Node>>,
    source_channel: Vec<usize>,
    source_wire_delay: Duration,
    source_cycle: Duration,
    sink_ack: Duration,
    serializes_multicast: bool,
    pool: FlitPool,
    ctx: Ctx<'obs, 'run, M::Node>,
}

impl<'obs, 'run, M: SimModel> Session<'obs, 'run, M> {
    /// Prepares a clean (fault-free) simulation.
    ///
    /// # Panics
    ///
    /// Panics if `traffic` does not provide one generator per endpoint.
    pub fn new(
        model: M,
        traffic: Vec<SourceTraffic>,
        spec: RunSpec,
        observers: &'run mut [&'obs mut dyn Observer<M::Node>],
    ) -> Self {
        let progress = serial_progress(&spec);
        Session::build(model, traffic, spec, observers, None, None, None, progress)
    }

    /// Prepares a simulation with an armed fault table threaded into the
    /// loop's hooks (see [`run_with_faults`]).
    ///
    /// # Panics
    ///
    /// Panics if `traffic` does not provide one generator per endpoint.
    pub fn with_faults(
        model: M,
        traffic: Vec<SourceTraffic>,
        spec: RunSpec,
        observers: &'run mut [&'obs mut dyn Observer<M::Node>],
        faults: &'run mut ArmedFaults,
    ) -> Self {
        let progress = serial_progress(&spec);
        Session::build(
            model,
            traffic,
            spec,
            observers,
            Some(faults),
            None,
            None,
            progress,
        )
    }

    /// Prepares one shard of a sharded run: the session owns only the
    /// sources its shard was assigned, buffers its observable stream
    /// into the shard's records, and exchanges cut-channel influence via
    /// the sharded runner's mailboxes (see `crate::shard`).
    pub(crate) fn build_shard(
        model: M,
        traffic: Vec<SourceTraffic>,
        spec: RunSpec,
        faults: Option<&'run mut ArmedFaults>,
        shard: Box<ShardState<M::Node>>,
        queue: SchedulerQueue<Event<M::Node>>,
        progress: Option<Arc<ProgressMeter>>,
    ) -> Self
    where
        'obs: 'run,
    {
        Session::build(
            model,
            traffic,
            spec,
            &mut [],
            faults,
            Some(shard),
            Some(queue),
            progress,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        model: M,
        traffic: Vec<SourceTraffic>,
        spec: RunSpec,
        observers: &'run mut [&'obs mut dyn Observer<M::Node>],
        faults: Option<&'run mut ArmedFaults>,
        shard: Option<Box<ShardState<M::Node>>>,
        queue: Option<SchedulerQueue<Event<M::Node>>>,
        progress: Option<Arc<ProgressMeter>>,
    ) -> Self {
        let n = model.endpoints();
        assert_eq!(traffic.len(), n, "one traffic generator per endpoint");
        let channels = model.channel_count();
        let wiring = (0..channels).map(|c| model.channel_ends(c)).collect();
        let source_channel = (0..n).map(|s| model.source_channel(s)).collect();
        let source_wire_delay = model.source_wire_delay();
        let source_cycle = model.source_cycle();
        let sink_ack = model.sink_ack();
        let serializes_multicast = model.serializes_multicast();

        let injection_end = spec.phases.measurement_end();
        // Saturated runs never finish draining; cap the drain at one extra
        // measurement window plus warmup.
        let hard_cap = injection_end + spec.phases.measure() + spec.phases.warmup();

        // Pre-size everything the run loop touches. Pending events are
        // bounded by the channel count (one in-flight or free event each)
        // plus a few per source; measured packets by the injection rate
        // over the window.
        let queue_capacity = spec
            .queue_capacity
            .unwrap_or_else(|| (channels * 2 + n * 4).max(1024));
        let expected_packets: usize = traffic
            .iter()
            .map(|src| (spec.phases.measure().as_ps() / src.mean_gap().as_ps().max(1)) as usize + 1)
            .sum();
        let latency_capacity = expected_packets + expected_packets / 4 + 64;
        let latency_capacity = spec
            .latency_cap
            .map_or(latency_capacity, |cap| latency_capacity.min(cap));

        let mut ctx = Ctx {
            phases: spec.phases,
            drain: spec.drain,
            injection_end,
            hard_cap,
            queue: queue
                .unwrap_or_else(|| SchedulerQueue::with_capacity(spec.scheduler, queue_capacity)),
            now: Time::ZERO,
            channels: vec![ChannelState::Free; channels],
            source_queue: (0..n).map(|_| VecDeque::with_capacity(64)).collect(),
            source_next_fire: vec![Time::ZERO; n],
            traffic,
            next_packet_id: vec![0; n],
            pending: HashMap::with_capacity_and_hasher(n * 16 + 256, DetHashState),
            pending_measured: 0,
            shard,
            latency: LatencyStats::with_capacity(latency_capacity).with_cap(spec.latency_cap),
            throughput: ThroughputCounter::new(n),
            flits_throttled: 0,
            flits_delivered: 0,
            events_processed: 0,
            kinds: EventKindCounts::default(),
            prof: spec.profile.then(|| Box::new(RunProf::new(spec.phases))),
            progress,
            observers,
            faults,
        };

        // Prime each source's first injection. A shard advances every
        // source's traffic RNG identically (the per-source generators are
        // self-seeded, so unowned ones simply never advance again) but
        // schedules only the sources it owns.
        for s in 0..n {
            let gap = ctx.traffic[s].next_gap();
            let owned = ctx
                .shard
                .as_ref()
                .is_none_or(|shard| shard.partition.source_shard(s) == shard.shard);
            if owned {
                ctx.schedule_event(Time::ZERO + gap, Event::Inject { source: s });
            }
        }

        Session {
            model,
            wiring,
            source_channel,
            source_wire_delay,
            source_cycle,
            sink_ack,
            serializes_multicast,
            pool: FlitPool::new(n * 64 + 256),
            ctx,
        }
    }

    /// Executes the event loop to completion and returns the
    /// measurements plus the model (whose accumulated state the caller
    /// may harvest).
    ///
    /// # Panics
    ///
    /// Panics if a header reaches a destination outside its packet's
    /// awaited set (the delivery audit: a duplicate means a redundant
    /// speculative copy escaped throttling).
    pub fn run(mut self) -> (EngineReport, M) {
        let start = std::time::Instant::now();
        self.execute();
        self.finish(start)
    }

    fn execute(&mut self) {
        while let Some((t, event)) = self.ctx.queue.pop() {
            self.ctx.now = t;
            if t > self.ctx.hard_cap {
                break;
            }
            if !self.ctx.drain && t >= self.ctx.injection_end {
                break;
            }
            self.ctx.events_processed += 1;
            if let Some(prof) = self.ctx.prof.as_deref_mut() {
                prof.note(t);
            }
            match event {
                Event::Inject { source } => {
                    self.ctx.kinds.inject += 1;
                    self.handle_inject(source);
                }
                Event::Arrive { channel } => {
                    self.ctx.kinds.arrive += 1;
                    self.handle_arrive(channel);
                }
                Event::FreeChannel { channel } => {
                    self.ctx.kinds.free += 1;
                    self.handle_free(channel);
                }
                Event::Retry { target } => {
                    self.ctx.kinds.retry += 1;
                    self.wake(target);
                }
            }
            if self.ctx.events_processed & PROGRESS_TICK_MASK == 0 {
                if let Some(progress) = &self.ctx.progress {
                    progress.record(0, self.ctx.events_processed);
                }
            }
            if self.ctx.drain
                && self.ctx.now >= self.ctx.injection_end
                && self.ctx.pending_measured == 0
            {
                break;
            }
        }
    }

    fn finish(self, start: std::time::Instant) -> (EngineReport, M) {
        let pool_stats = self.pool.stats();
        let ctx = self.ctx;
        if let Some(progress) = &ctx.progress {
            progress.finish();
        }
        let wall = start.elapsed();
        let profile = ctx.prof.map(|prof| {
            Box::new(EngineProfile {
                wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
                lookahead_ps: 0,
                shards: vec![ShardProfile {
                    shard: 0,
                    events: ctx.events_processed,
                    kinds: ctx.kinds,
                    queue: ctx.queue.stats(),
                    pool: pool_stats,
                    phase: prof.close(),
                    ..ShardProfile::default()
                }],
            })
        });
        let throughput = ctx.throughput.per_source_gfs(ctx.phases.measure());
        let packets_measured = ctx.latency.count();
        let report = EngineReport {
            latency: ctx.latency,
            throughput,
            packets_measured,
            packets_incomplete: ctx.pending_measured,
            flits_throttled: ctx.flits_throttled,
            flits_delivered: ctx.flits_delivered,
            events_processed: ctx.events_processed,
            shards: 1,
            shard_events: vec![ctx.events_processed],
            wall,
            profile,
        };
        (report, self.model)
    }

    // ------------------------------------------------------------------
    // Sharded execution (driven by `crate::shard::run_sharded`)
    // ------------------------------------------------------------------

    /// Earliest pending local event time (published at window barriers).
    pub(crate) fn peek_time(&self) -> Option<Time> {
        self.ctx.queue.peek_time()
    }

    /// Executes every local event strictly before `end`, recording each
    /// executed event's observable effects into the shard's records.
    ///
    /// Newly scheduled local events that still fall inside the window
    /// are executed too, so on return the local frontier is at least
    /// `end` — the invariant the conservative window protocol rests on.
    pub(crate) fn execute_window(&mut self, end: Time) {
        while self.ctx.queue.peek_time().is_some_and(|t| t < end) {
            let (t, event) = self.ctx.queue.pop().expect("peeked non-empty");
            self.ctx.now = t;
            if let Some(prof) = self.ctx.prof.as_deref_mut() {
                prof.note(t);
            }
            let key = event_key(&event);
            let fault_before = self.ctx.faults.as_deref().map(ArmedFaults::summary);
            let (shard_index, occ) = {
                let shard = self.ctx.shard.as_mut().expect("sharded session");
                shard.occ += 1;
                let occ = shard.occ;
                shard.records.push(EventRecord::open(t, key, occ));
                (shard.shard, occ)
            };
            match event {
                Event::Inject { source } => {
                    self.ctx.kinds.inject += 1;
                    self.handle_inject(source);
                }
                Event::Arrive { channel } => {
                    self.ctx.kinds.arrive += 1;
                    self.handle_arrive(channel);
                }
                Event::FreeChannel { channel } => {
                    self.ctx.kinds.free += 1;
                    self.handle_free(channel);
                }
                Event::Retry { target } => {
                    self.ctx.kinds.retry += 1;
                    self.wake(target);
                }
            }
            if occ & PROGRESS_TICK_MASK == 0 {
                if let Some(progress) = &self.ctx.progress {
                    progress.record(shard_index, occ);
                }
            }
            let fault_delta = fault_before.and_then(|before| {
                let after = self.ctx.faults.as_deref().expect("still armed").summary();
                crate::shard::summary_delta(before, after)
            });
            let drain_tail = self.ctx.drain && t >= self.ctx.injection_end;
            let shard = self.ctx.shard.as_mut().expect("sharded session");
            let record = shard.records.last_mut().expect("record opened above");
            record.fault_delta = fault_delta;
            // Keep the record only if the event did something observable
            // — or if it falls in the drain tail, where the fold needs
            // every event to find the serial loop's exact stopping point.
            if record.obs.is_empty()
                && record.pend.is_empty()
                && record.fault_delta.is_none()
                && !drain_tail
            {
                shard.records.pop();
            }
            if t < self.ctx.injection_end {
                shard.pre_end_events += 1;
            }
        }
    }

    /// Applies one cross-shard message: reconstructs the channel state
    /// the sending shard established and schedules the carried event
    /// under its canonical key, so local ordering is independent of the
    /// order messages happened to be drained in.
    pub(crate) fn apply_wire_message(&mut self, message: WireMsg) {
        match message {
            WireMsg::Arrive { channel, flit, at } => {
                self.ctx.channels[channel] = ChannelState::InFlight(flit);
                self.ctx.schedule_event(at, Event::Arrive { channel });
            }
            WireMsg::Free { channel, at } => {
                // The downstream shard consumed the flit; mirror its
                // draining state so `handle_free`'s invariant holds here.
                self.ctx.channels[channel] = ChannelState::Draining;
                self.ctx.schedule_event(at, Event::FreeChannel { channel });
            }
        }
    }

    /// Drains the shard's outbound messages accumulated this window.
    pub(crate) fn take_outbox(&mut self) -> Vec<(usize, WireMsg)> {
        let shard = self.ctx.shard.as_mut().expect("sharded session");
        std::mem::take(&mut shard.outbox)
    }

    /// Returns an outbox buffer for reuse (capacity recycling).
    pub(crate) fn restore_outbox(&mut self, mut outbox: Vec<(usize, WireMsg)>) {
        outbox.clear();
        let shard = self.ctx.shard.as_mut().expect("sharded session");
        if shard.outbox.capacity() < outbox.capacity() {
            shard.outbox = outbox;
        }
    }

    /// Tears one finished shard down into what the fold consumes.
    ///
    /// The shard's profile section carries what the *session* observed
    /// (events, kinds, queue/pool counters, phase wall split); the
    /// worker loop fills in the window-protocol figures (windows,
    /// barrier waits, mailbox traffic) it alone can see.
    pub(crate) fn into_shard_parts(self) -> crate::shard::ShardParts<M> {
        let pool_stats = self.pool.stats();
        let ctx = self.ctx;
        let shard = *ctx.shard.expect("sharded session");
        let profile = ctx.prof.map(|prof| {
            Box::new(ShardProfile {
                shard: shard.shard,
                events: shard.occ,
                kinds: ctx.kinds,
                queue: ctx.queue.stats(),
                pool: pool_stats,
                phase: prof.close(),
                ..ShardProfile::default()
            })
        });
        crate::shard::ShardParts {
            records: shard.records,
            pre_end_events: shard.pre_end_events,
            throughput: ctx.throughput,
            flits_throttled: ctx.flits_throttled,
            flits_delivered: ctx.flits_delivered,
            profile,
            model: self.model,
        }
    }

    // ------------------------------------------------------------------
    // Injection
    // ------------------------------------------------------------------

    fn handle_inject(&mut self, source: usize) {
        if self.ctx.now >= self.ctx.injection_end {
            return;
        }
        let dests = self.ctx.traffic[source].next_dests();
        self.create_packets(source, dests);
        let gap = self.ctx.traffic[source].next_gap();
        self.ctx
            .schedule_event(self.ctx.now + gap, Event::Inject { source });
        self.fire_source(source);
    }

    /// Produces a descriptor for a new packet, rewriting a recycled one
    /// in place when the pool has one (no heap allocation) and
    /// allocating fresh otherwise.
    fn alloc_descriptor(
        &mut self,
        id: PacketId,
        source: usize,
        dests: DestSet,
        flits: u8,
        group: Option<PacketId>,
    ) -> Arc<PacketDescriptor> {
        if let Some(mut recycled) = self.pool.take() {
            let descriptor = Arc::get_mut(&mut recycled).expect("pooled descriptors are unique");
            descriptor.reset(id, source, dests, flits, self.ctx.now, group);
            self.model.route_into(source, dests, descriptor.route_mut());
            recycled
        } else {
            let route = self.model.route(source, dests);
            let mut descriptor =
                PacketDescriptor::new(id, source, dests, route, flits, self.ctx.now);
            if let Some(group) = group {
                descriptor = descriptor.with_group(group);
            }
            Arc::new(descriptor)
        }
    }

    fn create_packets(&mut self, source: usize, dests: DestSet) {
        let measured = self.ctx.in_window();
        let logical = self.ctx.alloc_id(source);
        let flits = self.ctx.traffic[source].flits_per_packet();
        let serialize = self.serializes_multicast && dests.len() > 1;

        let mut offered_flits = 0u64;
        if serialize {
            // Serial multicast: one unicast clone per destination, queued
            // back to back; latency is accounted against the logical packet.
            for dest in dests.iter() {
                let id = self.ctx.alloc_id(source);
                let clone_dests = DestSet::unicast(dest);
                let descriptor =
                    self.alloc_descriptor(id, source, clone_dests, flits, Some(logical));
                self.ctx.source_queue[source].extend(Flit::train(&descriptor));
                offered_flits += u64::from(flits);
                self.model.on_packet(source, clone_dests, measured);
            }
        } else {
            let descriptor = self.alloc_descriptor(logical, source, dests, flits, None);
            self.ctx.source_queue[source].extend(Flit::train(&descriptor));
            offered_flits = u64::from(flits);
            self.model.on_packet(source, dests, measured);
        }

        if let Some(shard) = self.ctx.shard.as_mut() {
            // The packet's destinations may live on other shards, so the
            // pending set is folded centrally after the run.
            shard.open_record().pend.push(PendOp::Insert {
                logical: logical.as_u64(),
                awaiting: dests,
                measured,
            });
        } else {
            self.ctx.pending.insert(
                logical.as_u64(),
                Pending {
                    created_at: self.ctx.now,
                    awaiting: dests,
                    measured,
                },
            );
            if measured {
                self.ctx.pending_measured += 1;
            }
        }
        if measured {
            self.ctx.throughput.record_offered(offered_flits);
        }
    }

    // ------------------------------------------------------------------
    // Channel events
    // ------------------------------------------------------------------

    fn handle_arrive(&mut self, channel: usize) {
        let state = std::mem::replace(&mut self.ctx.channels[channel], ChannelState::Free);
        let ChannelState::InFlight(flit) = state else {
            unreachable!("arrival on a channel that was not in flight");
        };
        self.ctx.channels[channel] = ChannelState::Arrived(flit);
        match self.wiring[channel].downstream {
            NodeRef::Sink(dest) => self.sink_consume(channel, dest),
            other => self.wake(other),
        }
    }

    fn handle_free(&mut self, channel: usize) {
        debug_assert!(
            matches!(self.ctx.channels[channel], ChannelState::Draining),
            "freed a channel that was not draining"
        );
        self.ctx.channels[channel] = ChannelState::Free;
        self.wake(self.wiring[channel].upstream);
    }

    fn wake(&mut self, target: NodeRef<M::Node>) {
        match target {
            NodeRef::Source(s) => self.fire_source(s),
            NodeRef::Node(node) => self.model.fire(node, &mut self.ctx),
            NodeRef::Sink(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Engine-managed entities
    // ------------------------------------------------------------------

    fn fire_source(&mut self, source: usize) {
        if self.ctx.source_queue[source].is_empty() {
            return;
        }
        let channel = self.source_channel[source];
        if !self.ctx.channels[channel].is_free() {
            return;
        }
        if self.ctx.now < self.ctx.source_next_fire[source] {
            self.ctx.schedule_event(
                self.ctx.source_next_fire[source],
                Event::Retry {
                    target: NodeRef::Source(source),
                },
            );
            return;
        }
        let flit = self.ctx.source_queue[source]
            .pop_front()
            .expect("queue checked non-empty");
        if flit.kind().is_header() {
            let action = self.ctx.faults.as_mut().and_then(|faults| {
                faults.on_source_header(source, flit.descriptor().id().as_u64())
            });
            match action {
                Some(SourceFaultAction::Resend { delay }) => {
                    // The header is dropped on the injection link; the
                    // source times out and re-sends the same flit.
                    self.ctx.emit(&SimEvent::Fault {
                        class: FaultClass::FlitDrop,
                        site: source,
                        flit: &flit,
                    });
                    self.ctx.source_queue[source].push_front(flit);
                    let resume = self.ctx.now + delay;
                    self.ctx.source_next_fire[source] = resume;
                    self.ctx.schedule_event(
                        resume,
                        Event::Retry {
                            target: NodeRef::Source(source),
                        },
                    );
                    return;
                }
                Some(SourceFaultAction::Lose) => {
                    // Drop budget exhausted by plan: discard the whole
                    // train and release its latency bookkeeping so the
                    // drain still terminates. Never silent — observers
                    // see both the drop and the loss.
                    self.ctx.emit(&SimEvent::Fault {
                        class: FaultClass::FlitDrop,
                        site: source,
                        flit: &flit,
                    });
                    self.ctx.emit(&SimEvent::Fault {
                        class: FaultClass::PacketLost,
                        site: source,
                        flit: &flit,
                    });
                    let id = flit.descriptor().id();
                    while self.ctx.source_queue[source]
                        .front()
                        .is_some_and(|f| f.descriptor().id() == id)
                    {
                        self.ctx.source_queue[source].pop_front();
                    }
                    self.lose_packet(&flit);
                    self.fire_source(source);
                    return;
                }
                None => {}
            }
        }
        self.ctx.emit(&SimEvent::Inject {
            source,
            flit: &flit,
        });
        if self.ctx.in_window() {
            self.ctx.throughput.record_injected(1);
        }
        let wire = self.source_wire_delay;
        self.ctx.launch(channel, flit, wire);
        self.ctx.source_next_fire[source] = self.ctx.now + self.source_cycle;
    }

    /// Releases the latency bookkeeping of a packet discarded at its
    /// source: the clone's destinations no longer await delivery, and a
    /// fully-starved logical packet leaves the pending set without a
    /// latency record (it is counted by the fault summary instead).
    fn lose_packet(&mut self, flit: &Flit) {
        let descriptor = flit.descriptor();
        let logical = descriptor.logical_id().as_u64();
        if let Some(shard) = self.ctx.shard.as_mut() {
            shard.open_record().pend.push(PendOp::Lose {
                logical,
                dests: descriptor.dests(),
            });
            return;
        }
        if let Some(pending) = self.ctx.pending.get_mut(&logical) {
            for dest in descriptor.dests().iter() {
                pending.awaiting.remove(dest);
            }
            if pending.awaiting.is_empty() {
                let done = self.ctx.pending.remove(&logical).expect("entry present");
                if done.measured {
                    self.ctx.pending_measured -= 1;
                }
            }
        }
    }

    fn sink_consume(&mut self, channel: usize, dest: usize) {
        let flit = self.ctx.take_arrived(channel);
        self.ctx.free_after(channel, self.sink_ack);
        self.ctx.emit(&SimEvent::Deliver { dest, flit: &flit });
        if self.ctx.in_window() {
            self.ctx.throughput.record_delivered(1);
            self.ctx.flits_delivered += 1;
        }
        if flit.kind().is_header() {
            let logical = flit.descriptor().logical_id().as_u64();
            if let Some(shard) = self.ctx.shard.as_mut() {
                // Completion accounting (latency, the delivery audit) is
                // folded centrally; deliveries just leave a record.
                shard
                    .open_record()
                    .pend
                    .push(PendOp::Deliver { logical, dest });
            } else if let Some(pending) = self.ctx.pending.get_mut(&logical) {
                // Delivery audit: a header may reach each destination in
                // its set exactly once — a duplicate means a redundant
                // speculative copy escaped throttling, a miss would show up
                // as a never-completing packet.
                assert!(
                    pending.awaiting.contains(dest),
                    "packet {logical}: duplicate or misrouted header at destination {dest}"
                );
                pending.awaiting.remove(dest);
                if pending.awaiting.is_empty() {
                    let done = self.ctx.pending.remove(&logical).expect("entry present");
                    if done.measured {
                        self.ctx
                            .latency
                            .record(self.ctx.now.saturating_since(done.created_at));
                        self.ctx.pending_measured -= 1;
                    }
                }
            } else {
                panic!(
                    "packet {logical}: header delivered at destination {dest} after completion \
                     — a redundant speculative copy escaped throttling"
                );
            }
        }
        if flit.kind().is_tail() {
            // The tail is the last flit of its train to be consumed here;
            // once every sibling copy has delivered, the descriptor is
            // unique again and the next injection rewrites it in place.
            self.pool.recycle(flit.into_descriptor());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::ForwardInfo;
    use asynoc_traffic::Benchmark;

    /// The simplest possible substrate: two endpoints joined by one
    /// arbitrating crossbar node. Channels 0–1 inject into the node,
    /// channels 2–3 deliver to the sinks.
    struct Crossbar {
        forward: Duration,
        free: Duration,
        packets_seen: usize,
    }

    impl Crossbar {
        fn new() -> Self {
            Crossbar {
                forward: Duration::from_ps(200),
                free: Duration::from_ps(150),
                packets_seen: 0,
            }
        }
    }

    impl SimModel for Crossbar {
        type Node = ();

        fn endpoints(&self) -> usize {
            2
        }

        fn channel_count(&self) -> usize {
            4
        }

        fn channel_ends(&self, channel: usize) -> ChannelEnds<()> {
            if channel < 2 {
                ChannelEnds {
                    upstream: NodeRef::Source(channel),
                    downstream: NodeRef::Node(()),
                }
            } else {
                ChannelEnds {
                    upstream: NodeRef::Node(()),
                    downstream: NodeRef::Sink(channel - 2),
                }
            }
        }

        fn source_channel(&self, source: usize) -> usize {
            source
        }

        fn source_wire_delay(&self) -> Duration {
            Duration::from_ps(50)
        }

        fn source_cycle(&self) -> Duration {
            Duration::from_ps(100)
        }

        fn sink_ack(&self) -> Duration {
            Duration::from_ps(100)
        }

        fn serializes_multicast(&self) -> bool {
            true
        }

        fn route(&self, _source: usize, _dests: DestSet) -> RouteHeader {
            RouteHeader::for_tree(2)
        }

        fn on_packet(&mut self, _source: usize, _dest: DestSet, _measured: bool) {
            self.packets_seen += 1;
        }

        fn fire(&mut self, _node: (), ctx: &mut Ctx<'_, '_, ()>) {
            for input in 0..2 {
                let Some(flit) = ctx.arrived(input) else {
                    continue;
                };
                let dest = flit.descriptor().dests().first().expect("unicast dest");
                let out = 2 + dest;
                if !ctx.is_free(out) {
                    continue;
                }
                let flit = ctx.take_arrived(input);
                ctx.emit(&SimEvent::Forward {
                    node: (),
                    flit: &flit,
                    info: ForwardInfo::Arbitrated { input },
                    copies: 1,
                    busy: self.free,
                });
                let flight = self.forward;
                ctx.launch(out, flit, flight);
                ctx.free_after(input, self.free);
            }
        }
    }

    fn toy_traffic(seed: u64) -> Vec<SourceTraffic> {
        (0..2)
            .map(|s| SourceTraffic::new(Benchmark::UniformRandom, 2, s, 0.4, 1, seed).unwrap())
            .collect()
    }

    fn toy_spec() -> RunSpec {
        RunSpec::new(
            Phases::new(Duration::from_ns(2), Duration::from_ns(40)),
            true,
        )
    }

    #[test]
    fn crossbar_delivers_and_counts() {
        let (report, model) = run(Crossbar::new(), toy_traffic(7), toy_spec(), &mut []);
        assert!(report.packets_measured > 0, "no packets measured");
        assert_eq!(report.packets_incomplete, 0, "drain left packets in flight");
        assert!(report.flits_delivered > 0);
        assert!(report.events_processed > 0);
        assert!(model.packets_seen > 0);
        // Uncontended path: source wire (50) + node forward (200).
        assert_eq!(report.latency.min(), Some(Duration::from_ps(250)));
    }

    /// Records the engine's event stream as comparable tuples.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, &'static str, bool)>,
    }

    impl Observer<()> for Recorder {
        fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, ()>) {
            let tag = match event {
                SimEvent::Inject { .. } => "inject",
                SimEvent::Forward { .. } => "forward",
                SimEvent::Drop { .. } => "drop",
                SimEvent::Deliver { .. } => "deliver",
                SimEvent::Fault { .. } => "fault",
            };
            self.seen.push((at.as_ps(), tag, in_window));
        }
    }

    #[test]
    fn observers_see_identical_streams_in_registration_order() {
        let mut first = Recorder::default();
        let mut second = Recorder::default();
        run(
            Crossbar::new(),
            toy_traffic(3),
            toy_spec(),
            &mut [&mut first, &mut second],
        );
        assert!(!first.seen.is_empty());
        assert_eq!(first.seen, second.seen);
        let count = |tag| first.seen.iter().filter(|(_, t, _)| *t == tag).count();
        assert!(count("inject") > 0);
        assert!(count("forward") > 0);
        assert!(count("deliver") > 0);
        assert_eq!(count("drop"), 0, "the crossbar never throttles");
    }

    #[test]
    fn reruns_are_bit_identical() {
        let run_once = || run(Crossbar::new(), toy_traffic(11), toy_spec(), &mut []).0;
        let (a, b) = (run_once(), run_once());
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.latency.min(), b.latency.min());
        assert_eq!(a.latency.max(), b.latency.max());
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.flits_delivered, b.flits_delivered);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn no_drain_stops_at_injection_end() {
        let spec = RunSpec::new(
            Phases::new(Duration::from_ns(2), Duration::from_ns(40)),
            false,
        );
        let (report, _) = run(Crossbar::new(), toy_traffic(5), spec, &mut []);
        assert!(report.packets_measured > 0);
    }

    #[test]
    fn heap_and_calendar_schedulers_match_bit_for_bit() {
        let run_with = |kind| {
            let spec = toy_spec().with_scheduler(kind);
            let mut recorder = Recorder::default();
            let (report, _) = run(Crossbar::new(), toy_traffic(13), spec, &mut [&mut recorder]);
            (report, recorder.seen)
        };
        let (heap, heap_events) = run_with(SchedulerKind::Heap);
        let (calendar, calendar_events) = run_with(SchedulerKind::Calendar);
        assert_eq!(heap_events, calendar_events);
        assert_eq!(heap.latency.count(), calendar.latency.count());
        assert_eq!(heap.latency.mean(), calendar.latency.mean());
        assert_eq!(heap.throughput, calendar.throughput);
        assert_eq!(heap.events_processed, calendar.events_processed);
    }

    #[test]
    fn queue_capacity_override_is_honored() {
        let spec = toy_spec().with_queue_capacity(16);
        let (report, _) = run(Crossbar::new(), toy_traffic(7), spec, &mut []);
        let (baseline, _) = run(Crossbar::new(), toy_traffic(7), toy_spec(), &mut []);
        assert_eq!(report.latency.mean(), baseline.latency.mean());
        assert_eq!(report.events_processed, baseline.events_processed);
    }
}
