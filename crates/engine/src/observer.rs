//! The engine's instrumentation interface.

use asynoc_kernel::{Duration, FaultClass, Time};
use asynoc_packet::{Flit, RouteSymbol};

/// How a node disposed of a forwarded flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardInfo {
    /// A routing node followed (or speculatively broadened) this symbol.
    Routed(RouteSymbol),
    /// An arbitrating node granted this input.
    Arbitrated {
        /// The winning input's index at the node.
        input: usize,
    },
}

/// One instrumented occurrence inside a simulation run.
///
/// Events borrow the flit they describe; observers that need it beyond
/// the callback must copy what they use.
#[derive(Clone, Copy, Debug)]
pub enum SimEvent<'a, N> {
    /// A source launched `flit` into the network.
    Inject {
        /// The injecting endpoint.
        source: usize,
        /// The launched flit.
        flit: &'a Flit,
    },
    /// A node moved `flit` to `copies` output channel(s).
    Forward {
        /// The firing node.
        node: N,
        /// The forwarded flit.
        flit: &'a Flit,
        /// Routing or arbitration detail.
        info: ForwardInfo,
        /// Output channels launched into (more than one at multicast
        /// branch points and speculative broadcasts).
        copies: u8,
        /// How long the node's input stays occupied by this handshake.
        busy: Duration,
    },
    /// A node throttled `flit` — acknowledged upstream without
    /// forwarding (the speculation-recovery path).
    Drop {
        /// The throttling node.
        node: N,
        /// The dropped flit.
        flit: &'a Flit,
        /// How long the node's input stays occupied by the drop ack.
        busy: Duration,
    },
    /// A sink consumed `flit`.
    Deliver {
        /// The consuming endpoint.
        dest: usize,
        /// The delivered flit.
        flit: &'a Flit,
    },
    /// A fault-injection hook fired on `flit` (armed plans only; clean
    /// runs never emit this).
    Fault {
        /// What was injected.
        class: FaultClass,
        /// Where: a channel id for stalls, a substrate symbol site for
        /// corruptions, a source index for drops/losses.
        site: usize,
        /// The afflicted flit.
        flit: &'a Flit,
    },
}

/// A composable listener on the engine's event stream.
///
/// Observers are registered per run; the engine calls them synchronously,
/// in registration order, at the simulated instant each event occurs.
/// `in_window` tells the observer whether the instant falls inside the
/// measurement window (power and statistics observers typically ignore
/// warmup/drain events; a tracer records everything).
pub trait Observer<N> {
    /// Receives one event at simulated time `at`.
    fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>);
}
