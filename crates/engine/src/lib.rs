//! Substrate-agnostic discrete-event simulation engine.
//!
//! The MoT simulator (`asynoc`) and the mesh simulator (`asynoc-mesh`)
//! share one execution discipline: single-flit bundled-data channels,
//! fire-when-ready entities, stall-and-notify wakeups (no polling), FIFO
//! tie breaking on the kernel event queue, and the paper's §5.1
//! measurement protocol (offered/injected/delivered flits in a window,
//! per-logical-packet latency to the last header arrival, bounded drain).
//! This crate owns that discipline once:
//!
//! - [`SimModel`] is what a substrate implements — its channel wiring,
//!   timing constants, routing, and node firing rules.
//! - [`Observer`] receives the engine's event stream (injections,
//!   forwards, drops, deliveries) so statistics, power accounting, and
//!   tracing compose per run instead of being hard-wired into the loop.
//! - [`Session`] is one prepared simulation; [`run`] wraps it and
//!   returns an [`EngineReport`] plus the model (whose accumulated state
//!   the caller may harvest).
//! - [`run_with_faults`] is the same loop with an [`ArmedFaults`] table
//!   threaded into its hooks — deterministic fault injection (stalls,
//!   symbol corruption, source drops/losses) with zero cost when
//!   disarmed.
//! - [`parallel_map`] fans independent work items (seeds, configs,
//!   saturation probe points) across OS threads with deterministic
//!   result ordering — the experiment layer's multi-core runner.
//! - [`run_sharded`] / [`run_sharded_with_faults`] split *one* run
//!   across OS threads: a [`ShardModel`] partitions its entities into
//!   shards ([`Partition`]) synchronised in conservative lookahead-bound
//!   windows, and a deterministic fold makes the observable results —
//!   observer streams, reports, audits — bit-identical to the serial
//!   runner's for every shard count.
//!
//! # Performance discipline
//!
//! The run loop is the hot path of every experiment, so it holds two
//! standing guarantees, both enforced by tests:
//!
//! - **Scheduler-independent results.** Events are totally ordered by
//!   `(time, canonical key, insertion seq)` — the key ranks simultaneous
//!   events by kind and entity index; both the binary-heap and the
//!   calendar scheduler ([`RunSpec::scheduler`]) realize that order
//!   exactly, so a seeded run is bit-identical under either (and under
//!   any shard count; see [`run_sharded`]).
//! - **Zero-allocation steady state.** All run state is pre-sized at
//!   construction, packet descriptors are recycled through an internal
//!   free-list once their tails deliver, and event payloads are small
//!   `Copy` values stored inline in the queue — after warm-up, a clean
//!   run performs no heap allocation (see `tests/zero_alloc.rs`).

#![deny(missing_docs)]

mod fault;
mod observer;
mod pool;
mod session;
mod shard;

pub use asynoc_kernel::parallel_map;
/// The profiling vocabulary [`EngineReport::profile`] is expressed in
/// (re-exported so downstream crates need no direct `asynoc-probe`
/// dependency just to read a profile).
pub use asynoc_probe as probe;
pub use fault::{ArmedFaults, FaultDomain, FaultSummary, SourceFaultAction};
pub use observer::{ForwardInfo, Observer, SimEvent};
pub use session::{
    run, run_with_faults, ChannelEnds, Ctx, EngineReport, NodeKey, NodeRef, RunSpec, Session,
    SimModel,
};
pub use shard::{run_sharded, run_sharded_with_faults, Partition, ShardModel};
