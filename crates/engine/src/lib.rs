//! Substrate-agnostic discrete-event simulation engine.
//!
//! The MoT simulator (`asynoc`) and the mesh simulator (`asynoc-mesh`)
//! share one execution discipline: single-flit bundled-data channels,
//! fire-when-ready entities, stall-and-notify wakeups (no polling), FIFO
//! tie breaking on the kernel event queue, and the paper's §5.1
//! measurement protocol (offered/injected/delivered flits in a window,
//! per-logical-packet latency to the last header arrival, bounded drain).
//! This crate owns that discipline once:
//!
//! - [`SimModel`] is what a substrate implements — its channel wiring,
//!   timing constants, routing, and node firing rules.
//! - [`Observer`] receives the engine's event stream (injections,
//!   forwards, drops, deliveries) so statistics, power accounting, and
//!   tracing compose per run instead of being hard-wired into the loop.
//! - [`run`] executes one simulation and returns an [`EngineReport`]
//!   plus the model (whose accumulated state the caller may harvest).
//! - [`run_with_faults`] is the same loop with an [`ArmedFaults`] table
//!   threaded into its hooks — deterministic fault injection (stalls,
//!   symbol corruption, source drops/losses) with zero cost when
//!   disarmed.
//! - [`parallel_map`] fans independent work items (seeds, configs,
//!   saturation probe points) across OS threads with deterministic
//!   result ordering — the experiment layer's multi-core runner.

mod fault;
mod observer;
mod session;

pub use asynoc_kernel::parallel_map;
pub use fault::{ArmedFaults, FaultDomain, FaultSummary, SourceFaultAction};
pub use observer::{ForwardInfo, Observer, SimEvent};
pub use session::{
    run, run_with_faults, ChannelEnds, Ctx, EngineReport, NodeRef, RunSpec, SimModel,
};
