//! Conservative sharded execution with bit-identical observable streams.
//!
//! [`run_sharded`] partitions one simulation across OS threads: each
//! shard owns a subset of sources, nodes, sinks, and channels (the
//! [`Partition`] a [`ShardModel`] computes), runs its own event queue,
//! and synchronises with the other shards in lookahead-bounded time
//! windows (see `asynoc_kernel::sharded` for the window protocol).
//!
//! # Why the results are bit-identical to a serial run
//!
//! Three mechanisms compose:
//!
//! 1. **Canonical event keys.** Both the serial loop and every shard
//!    order simultaneous events by the same `(time, key)` pair (see
//!    `event_key` in the session module), so "which event fires first at
//!    time t" does not depend on which queue holds it.
//! 2. **Conservative windows.** A window never extends past the minimum
//!    cross-shard influence delay (the partition's *lookahead*), and
//!    cut-channel messages are exchanged at every window boundary, so a
//!    shard executes an event only after every message that could
//!    precede it has been delivered. Each shard therefore executes
//!    exactly the serial event sequence restricted to its own entities.
//! 3. **A deterministic fold.** Each shard records the observable
//!    payload of every interesting event (observer emissions, pending-
//!    packet transitions, fault-summary increments) tagged with
//!    `(time, key, occurrence)`. After the workers join, the fold merges
//!    the records into exact serial order on one thread: it replays
//!    observers, reruns the delivery audit, computes latency, finds the
//!    serial loop's precise drain stopping point, and trims everything
//!    the workers executed past it.
//!
//! Live aggregates that only accumulate inside the measurement window
//! (throughput counters, delivered/throttled flits) are summed directly:
//! workers never overrun *into* the window, only past its end, so those
//! sums are exact without trimming.

use std::collections::HashMap;
use std::sync::Arc;

use asynoc_kernel::{
    Duration, FaultClass, Mailboxes, SchedulerQueue, ShardedScheduler, Time, WindowBarrier,
};
use asynoc_packet::{DestSet, Flit};
use asynoc_probe::{EngineProfile, HostHistogram, ProfileSink, ProgressMeter, ShardProfile};
use asynoc_stats::{LatencyStats, ThroughputCounter};
use asynoc_traffic::SourceTraffic;

use crate::fault::{ArmedFaults, FaultSummary};
use crate::observer::{ForwardInfo, Observer, SimEvent};
use crate::session::{
    run, run_with_faults, DetHashState, EngineReport, Event, NodeRef, Pending, RunSpec, Session,
    SimModel, PROGRESS_INTERVAL_MS,
};

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// A static assignment of every simulated entity to a shard, plus the
/// lookahead bound that makes the assignment safe.
///
/// The lookahead must be a lower bound on **every** delay that crosses a
/// cut channel in either direction: flit flight times (upstream shard →
/// downstream shard) *and* handshake free delays (downstream → upstream).
/// The engine debug-asserts this on every cut-channel operation.
#[derive(Clone, Debug)]
pub struct Partition {
    shards: usize,
    lookahead: Duration,
    source_shard: Vec<u32>,
    channel_up: Vec<u32>,
    channel_down: Vec<u32>,
}

impl Partition {
    /// Derives a partition from one assignment function over the
    /// model's entities. Using a single function for sources, nodes, and
    /// sinks guarantees the maps are mutually consistent (a source and
    /// its injection channel can never disagree about their shard).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, if `lookahead` is zero while more
    /// than one shard exists, or if `assign` returns an out-of-range
    /// shard.
    pub fn from_assignment<M: SimModel>(
        model: &M,
        shards: usize,
        lookahead: Duration,
        assign: impl Fn(NodeRef<M::Node>) -> usize,
    ) -> Partition {
        assert!(shards > 0, "a partition needs at least one shard");
        assert!(
            shards == 1 || lookahead > Duration::ZERO,
            "a multi-shard partition needs a positive lookahead"
        );
        let place = |node: NodeRef<M::Node>| -> u32 {
            let shard = assign(node);
            assert!(
                shard < shards,
                "entity {node:?} assigned to shard {shard} of {shards}"
            );
            shard as u32
        };
        let source_shard = (0..model.endpoints())
            .map(|s| place(NodeRef::Source(s)))
            .collect();
        let mut channel_up = Vec::with_capacity(model.channel_count());
        let mut channel_down = Vec::with_capacity(model.channel_count());
        for channel in 0..model.channel_count() {
            let ends = model.channel_ends(channel);
            channel_up.push(place(ends.upstream));
            channel_down.push(place(ends.downstream));
        }
        Partition {
            shards,
            lookahead,
            source_shard,
            channel_up,
            channel_down,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The window width: the minimum cross-shard influence delay.
    #[must_use]
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// How many channels have their two ends on different shards.
    #[must_use]
    pub fn cut_channels(&self) -> usize {
        self.channel_up
            .iter()
            .zip(&self.channel_down)
            .filter(|(up, down)| up != down)
            .count()
    }

    /// The shard owning `source` (and its injection events).
    #[must_use]
    pub fn source_shard(&self, source: usize) -> usize {
        self.source_shard[source] as usize
    }

    /// The shard owning `channel`'s upstream end (launches, frees).
    #[must_use]
    pub fn channel_upstream_shard(&self, channel: usize) -> usize {
        self.channel_up[channel] as usize
    }

    /// The shard owning `channel`'s downstream end (arrivals).
    #[must_use]
    pub fn channel_downstream_shard(&self, channel: usize) -> usize {
        self.channel_down[channel] as usize
    }
}

/// A [`SimModel`] that can be partitioned for sharded execution.
///
/// The model is cloned once per shard; each clone only ever fires the
/// nodes its shard owns, so node state never needs synchronisation.
/// After the run, [`merge_shards`](ShardModel::merge_shards) folds the
/// clones' accumulated analytics back into the original.
pub trait ShardModel: SimModel + Clone + Send {
    /// Computes the entity-to-shard assignment and its lookahead bound
    /// for `shards` shards. Implementations may clamp `shards` down
    /// (e.g. to the row count of a mesh); the runner honours whatever
    /// the returned partition says.
    fn partition(&self, shards: usize) -> Partition;

    /// Folds the per-shard model clones' accumulated state (e.g. hop
    /// counters) back into `self` after a sharded run. The default does
    /// nothing, which is correct for models without cross-run analytics.
    fn merge_shards(&mut self, shards: Vec<Self>) {
        drop(shards);
    }
}

// ---------------------------------------------------------------------
// Per-shard record machinery (driven by the session)
// ---------------------------------------------------------------------

/// A cross-shard influence message, exchanged at window boundaries.
#[derive(Clone, Debug)]
pub(crate) enum WireMsg {
    /// A flit launched on a cut channel; it arrives downstream at `at`.
    Arrive {
        channel: usize,
        flit: Flit,
        at: Time,
    },
    /// A cut channel consumed downstream frees (upstream) at `at`.
    Free { channel: usize, at: Time },
}

/// An owned copy of one observer event, buffered for ordered replay.
#[derive(Clone, Debug)]
pub(crate) enum OwnedSimEvent<N> {
    Inject {
        source: usize,
        flit: Flit,
    },
    Forward {
        node: N,
        flit: Flit,
        info: ForwardInfo,
        copies: u8,
        busy: Duration,
    },
    Drop {
        node: N,
        flit: Flit,
        busy: Duration,
    },
    Deliver {
        dest: usize,
        flit: Flit,
    },
    Fault {
        class: FaultClass,
        site: usize,
        flit: Flit,
    },
}

impl<N: Copy> OwnedSimEvent<N> {
    /// Captures a borrowed event (the flit clone is an `Arc` bump).
    pub(crate) fn capture(event: &SimEvent<'_, N>) -> Self {
        match *event {
            SimEvent::Inject { source, flit } => OwnedSimEvent::Inject {
                source,
                flit: flit.clone(),
            },
            SimEvent::Forward {
                node,
                flit,
                info,
                copies,
                busy,
            } => OwnedSimEvent::Forward {
                node,
                flit: flit.clone(),
                info,
                copies,
                busy,
            },
            SimEvent::Drop { node, flit, busy } => OwnedSimEvent::Drop {
                node,
                flit: flit.clone(),
                busy,
            },
            SimEvent::Deliver { dest, flit } => OwnedSimEvent::Deliver {
                dest,
                flit: flit.clone(),
            },
            SimEvent::Fault { class, site, flit } => OwnedSimEvent::Fault {
                class,
                site,
                flit: flit.clone(),
            },
        }
    }

    /// The borrowed view observers receive at replay.
    pub(crate) fn as_event(&self) -> SimEvent<'_, N> {
        match self {
            OwnedSimEvent::Inject { source, flit } => SimEvent::Inject {
                source: *source,
                flit,
            },
            OwnedSimEvent::Forward {
                node,
                flit,
                info,
                copies,
                busy,
            } => SimEvent::Forward {
                node: *node,
                flit,
                info: *info,
                copies: *copies,
                busy: *busy,
            },
            OwnedSimEvent::Drop { node, flit, busy } => SimEvent::Drop {
                node: *node,
                flit,
                busy: *busy,
            },
            OwnedSimEvent::Deliver { dest, flit } => SimEvent::Deliver { dest: *dest, flit },
            OwnedSimEvent::Fault { class, site, flit } => SimEvent::Fault {
                class: *class,
                site: *site,
                flit,
            },
        }
    }
}

/// One transition of the (centrally folded) pending-packet table.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PendOp {
    /// A logical packet entered the network.
    Insert {
        logical: u64,
        awaiting: DestSet,
        measured: bool,
    },
    /// A header reached `dest`.
    Deliver { logical: u64, dest: usize },
    /// A packet was discarded at its source (lethal fault).
    Lose { logical: u64, dests: DestSet },
}

/// Everything observable one executed event produced, tagged with its
/// position in the canonical total order.
#[derive(Debug)]
pub(crate) struct EventRecord<N> {
    pub(crate) time: Time,
    pub(crate) key: u64,
    /// The shard's pop counter at this event: orders equal `(time, key)`
    /// pairs, which are always same-shard re-schedules.
    pub(crate) occ: u64,
    pub(crate) obs: Vec<OwnedSimEvent<N>>,
    pub(crate) pend: Vec<PendOp>,
    pub(crate) fault_delta: Option<FaultSummary>,
}

impl<N> EventRecord<N> {
    pub(crate) fn open(time: Time, key: u64, occ: u64) -> Self {
        EventRecord {
            time,
            key,
            occ,
            obs: Vec::new(),
            pend: Vec::new(),
            fault_delta: None,
        }
    }
}

/// The shard-local state a sharded session threads through its hooks.
#[derive(Debug)]
pub(crate) struct ShardState<N> {
    pub(crate) shard: usize,
    pub(crate) partition: Arc<Partition>,
    /// Whether observer events must be buffered (any observer present).
    pub(crate) record_obs: bool,
    /// Events popped so far (the `occ` tag).
    pub(crate) occ: u64,
    /// Events executed before the injection end (never trimmed).
    pub(crate) pre_end_events: u64,
    pub(crate) outbox: Vec<(usize, WireMsg)>,
    pub(crate) records: Vec<EventRecord<N>>,
}

impl<N> ShardState<N> {
    pub(crate) fn new(shard: usize, partition: Arc<Partition>, record_obs: bool) -> Box<Self> {
        Box::new(ShardState {
            shard,
            partition,
            record_obs,
            occ: 0,
            pre_end_events: 0,
            outbox: Vec::new(),
            records: Vec::new(),
        })
    }

    /// The record of the event currently being executed.
    pub(crate) fn open_record(&mut self) -> &mut EventRecord<N> {
        self.records
            .last_mut()
            .expect("an event record is open during dispatch")
    }
}

/// The increments `after` added over `before`, or `None` if nothing
/// fired.
pub(crate) fn summary_delta(before: FaultSummary, after: FaultSummary) -> Option<FaultSummary> {
    if before == after {
        return None;
    }
    Some(FaultSummary {
        stalls: after.stalls - before.stalls,
        corrupted: after.corrupted - before.corrupted,
        stuck: after.stuck - before.stuck,
        drops: after.drops - before.drops,
        lost: after.lost - before.lost,
    })
}

fn summary_add(a: FaultSummary, b: FaultSummary) -> FaultSummary {
    FaultSummary {
        stalls: a.stalls + b.stalls,
        corrupted: a.corrupted + b.corrupted,
        stuck: a.stuck + b.stuck,
        drops: a.drops + b.drops,
        lost: a.lost + b.lost,
    }
}

/// What one finished shard hands to the fold.
pub(crate) struct ShardParts<M: SimModel> {
    pub(crate) records: Vec<EventRecord<M::Node>>,
    pub(crate) pre_end_events: u64,
    pub(crate) throughput: ThroughputCounter,
    pub(crate) flits_throttled: u64,
    pub(crate) flits_delivered: u64,
    /// This shard's profile section, when the run was profiled.
    pub(crate) profile: Option<Box<ShardProfile>>,
    pub(crate) model: M,
}

// ---------------------------------------------------------------------
// The sharded runner
// ---------------------------------------------------------------------

/// [`run`](crate::run), executed across `shards` conservative shards.
///
/// Results — the report, every observer's event stream, and any panic
/// from the delivery audit — are bit-identical to the serial runner's
/// for every shard count, including 1 (which simply delegates to it).
/// Only [`EngineReport::shards`] / [`EngineReport::shard_events`] and
/// the wall-clock time differ.
///
/// # Panics
///
/// As [`run`](crate::run); additionally if a worker thread panics.
pub fn run_sharded<M: ShardModel>(
    model: M,
    traffic: Vec<SourceTraffic>,
    spec: RunSpec,
    shards: usize,
    observers: &mut [&mut dyn Observer<M::Node>],
) -> (EngineReport, M) {
    run_sharded_inner(model, traffic, spec, shards, observers, None)
}

/// [`run_with_faults`](crate::run_with_faults), executed across
/// `shards` conservative shards. The caller's fault table is cloned
/// into every shard; its summary is rewritten afterwards to exactly the
/// counts the serial runner would have accumulated.
///
/// # Panics
///
/// As [`run_sharded`].
pub fn run_sharded_with_faults<M: ShardModel>(
    model: M,
    traffic: Vec<SourceTraffic>,
    spec: RunSpec,
    shards: usize,
    faults: &mut ArmedFaults,
    observers: &mut [&mut dyn Observer<M::Node>],
) -> (EngineReport, M) {
    run_sharded_inner(model, traffic, spec, shards, observers, Some(faults))
}

fn run_sharded_inner<M: ShardModel>(
    mut model: M,
    traffic: Vec<SourceTraffic>,
    spec: RunSpec,
    shards: usize,
    observers: &mut [&mut dyn Observer<M::Node>],
    faults: Option<&mut ArmedFaults>,
) -> (EngineReport, M) {
    let partition = model.partition(shards);
    if partition.shards() <= 1 {
        return match faults {
            None => run(model, traffic, spec, observers),
            Some(faults) => run_with_faults(model, traffic, spec, faults, observers),
        };
    }
    let start = std::time::Instant::now();
    let n = model.endpoints();
    assert_eq!(traffic.len(), n, "one traffic generator per endpoint");
    let shard_count = partition.shards();
    let lookahead = partition.lookahead();
    let injection_end = spec.phases.measurement_end();
    let hard_cap = injection_end + spec.phases.measure() + spec.phases.warmup();
    let queue_capacity = spec
        .queue_capacity
        .unwrap_or_else(|| (model.channel_count() * 2 + n * 4).max(1024));
    let expected_packets: usize = traffic
        .iter()
        .map(|src| (spec.phases.measure().as_ps() / src.mean_gap().as_ps().max(1)) as usize + 1)
        .sum();
    let latency_capacity = expected_packets + expected_packets / 4 + 64;
    let latency_capacity = spec
        .latency_cap
        .map_or(latency_capacity, |cap| latency_capacity.min(cap));

    let scheduler: ShardedScheduler<Event<M::Node>> =
        ShardedScheduler::new(shard_count, spec.scheduler, queue_capacity, lookahead);
    let barrier = WindowBarrier::new(shard_count);
    let mailboxes: Mailboxes<WireMsg> = Mailboxes::new(shard_count);
    let partition = Arc::new(partition);
    let record_obs = !observers.is_empty();
    let base_summary = faults.as_deref().map(ArmedFaults::summary);
    let progress = if spec.progress {
        ProgressMeter::stderr(shard_count, PROGRESS_INTERVAL_MS).map(Arc::new)
    } else {
        None
    };

    let parts: Vec<ShardParts<M>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scheduler
            .into_queues()
            .into_iter()
            .enumerate()
            .map(|(shard, queue)| {
                let model = model.clone();
                let traffic = traffic.clone();
                let shard_faults = faults.as_deref().cloned();
                let state = ShardState::new(shard, Arc::clone(&partition), record_obs);
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                let progress = progress.clone();
                scope.spawn(move || {
                    run_shard_worker(
                        model,
                        traffic,
                        spec,
                        shard_faults,
                        state,
                        queue,
                        barrier,
                        mailboxes,
                        injection_end,
                        hard_cap,
                        lookahead,
                        progress,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(parts) => parts,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    if let Some(progress) = &progress {
        progress.finish();
    }

    // ------------------------------------------------------------------
    // The fold: replay the merged record stream in serial order.
    // ------------------------------------------------------------------

    // Merge positions: each shard's records are already sorted, and
    // equal (time, key) pairs never span shards, so a global sort by
    // (time, key, occ) reproduces the serial loop's execution order.
    let mut order: Vec<(u32, u32)> = Vec::new();
    for (si, part) in parts.iter().enumerate() {
        order.extend((0..part.records.len()).map(|ri| (si as u32, ri as u32)));
    }
    order.sort_by_key(|&(si, ri)| {
        let record = &parts[si as usize].records[ri as usize];
        (record.time, record.key, record.occ, si)
    });

    let mut pending: HashMap<u64, Pending, DetHashState> =
        HashMap::with_capacity_and_hasher(n * 16 + 256, DetHashState);
    let mut pending_measured = 0usize;
    let mut latency = LatencyStats::with_capacity(latency_capacity).with_cap(spec.latency_cap);
    let mut fault_total = base_summary.unwrap_or_default();
    let mut tail_events = vec![0u64; shard_count];
    for &(si, ri) in &order {
        let record = &parts[si as usize].records[ri as usize];
        let time = record.time;
        let drain_tail = spec.drain && time >= injection_end;
        if drain_tail {
            tail_events[si as usize] += 1;
        }
        if record_obs && !record.obs.is_empty() {
            let in_window = spec.phases.in_measurement(time);
            for owned in &record.obs {
                let event = owned.as_event();
                for observer in observers.iter_mut() {
                    observer.on_event(time, in_window, &event);
                }
            }
        }
        for op in &record.pend {
            match *op {
                PendOp::Insert {
                    logical,
                    awaiting,
                    measured,
                } => {
                    pending.insert(
                        logical,
                        Pending {
                            created_at: time,
                            awaiting,
                            measured,
                        },
                    );
                    if measured {
                        pending_measured += 1;
                    }
                }
                PendOp::Deliver { logical, dest } => {
                    if let Some(entry) = pending.get_mut(&logical) {
                        assert!(
                            entry.awaiting.contains(dest),
                            "packet {logical}: duplicate or misrouted header at destination {dest}"
                        );
                        entry.awaiting.remove(dest);
                        if entry.awaiting.is_empty() {
                            let done = pending.remove(&logical).expect("entry present");
                            if done.measured {
                                latency.record(time.saturating_since(done.created_at));
                                pending_measured -= 1;
                            }
                        }
                    } else {
                        panic!(
                            "packet {logical}: header delivered at destination {dest} after \
                             completion — a redundant speculative copy escaped throttling"
                        );
                    }
                }
                PendOp::Lose { logical, dests } => {
                    if let Some(entry) = pending.get_mut(&logical) {
                        for dest in dests.iter() {
                            entry.awaiting.remove(dest);
                        }
                        if entry.awaiting.is_empty() {
                            let done = pending.remove(&logical).expect("entry present");
                            if done.measured {
                                pending_measured -= 1;
                            }
                        }
                    }
                }
            }
        }
        if let Some(delta) = record.fault_delta {
            fault_total = summary_add(fault_total, delta);
        }
        // The serial loop stops at the first post-injection event that
        // leaves no measured packet in flight; trim everything after it.
        if drain_tail && pending_measured == 0 {
            break;
        }
    }

    if let Some(faults) = faults {
        faults.force_summary(fault_total);
    }

    let mut throughput = ThroughputCounter::new(n);
    let mut flits_throttled = 0;
    let mut flits_delivered = 0;
    let mut shard_events = Vec::with_capacity(shard_count);
    let mut shard_models = Vec::with_capacity(shard_count);
    let mut shard_profiles = Vec::new();
    for (si, part) in parts.into_iter().enumerate() {
        throughput.absorb(&part.throughput);
        flits_throttled += part.flits_throttled;
        flits_delivered += part.flits_delivered;
        shard_events.push(part.pre_end_events + tail_events[si]);
        shard_models.push(part.model);
        if let Some(profile) = part.profile {
            shard_profiles.push(*profile);
        }
    }
    model.merge_shards(shard_models);

    let profile = spec.profile.then(|| {
        Box::new(EngineProfile {
            wall_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            lookahead_ps: lookahead.as_ps(),
            shards: shard_profiles,
        })
    });
    let packets_measured = latency.count();
    let report = EngineReport {
        latency,
        throughput: throughput.per_source_gfs(spec.phases.measure()),
        packets_measured,
        packets_incomplete: pending_measured,
        flits_throttled,
        flits_delivered,
        events_processed: shard_events.iter().sum(),
        shards: shard_count,
        shard_events,
        wall: start.elapsed(),
        profile,
    };
    (report, model)
}

/// One shard's worker: the conservative window loop.
///
/// Every shard derives the same window plan from the same barrier-
/// published snapshot, so there is no coordinator thread. Cut-channel
/// messages sent inside a window are stamped at least one lookahead
/// ahead of its start, and are delivered before the window that could
/// execute them — the conservative correctness invariant.
#[allow(clippy::too_many_arguments)]
fn run_shard_worker<M: SimModel>(
    model: M,
    traffic: Vec<SourceTraffic>,
    spec: RunSpec,
    mut faults: Option<ArmedFaults>,
    state: Box<ShardState<M::Node>>,
    queue: SchedulerQueue<Event<M::Node>>,
    barrier: &WindowBarrier,
    mailboxes: &Mailboxes<WireMsg>,
    injection_end: Time,
    hard_cap: Time,
    lookahead: Duration,
    progress: Option<Arc<ProgressMeter>>,
) -> ShardParts<M> {
    let shard = state.shard;
    let drain = spec.drain;
    // Window-protocol profiling: barrier waits are the only probes that
    // read the host clock, so they sit behind the sink; the message
    // counters are plain adds on the (cold) per-window path.
    let sink = ProfileSink::new(spec.profile);
    let mut windows = 0u64;
    let mut barrier_wait = HostHistogram::new();
    let mut sent = vec![0u64; mailboxes.shards()];
    let mut received = 0u64;
    let mut mailbox_high_water = 0u64;
    let mut session = Session::build_shard(
        model,
        traffic,
        spec,
        faults.as_mut(),
        state,
        queue,
        progress,
    );
    let mut inbox: Vec<WireMsg> = Vec::new();
    // Publish the local frontier; every shard computes the same global
    // minimum and hence the same next window. `None` means globally
    // idle: the run quiesced.
    loop {
        let wait = sink.start();
        let Some(window_start) = barrier.publish_and_sync(shard, session.peek_time()) else {
            break;
        };
        if let Some(wait) = wait {
            barrier_wait.record(wait.elapsed());
        }
        if !drain && window_start >= injection_end {
            break;
        }
        if window_start > hard_cap {
            break;
        }
        let window_end = if drain {
            // `hard_cap` is inclusive in the serial loop; one extra
            // picosecond makes the exclusive window bound match it.
            (window_start + lookahead).min(hard_cap + Duration::from_ps(1))
        } else {
            (window_start + lookahead).min(injection_end)
        };
        windows += 1;
        session.execute_window(window_end);
        let mut outbox = session.take_outbox();
        for (to, message) in outbox.drain(..) {
            let depth = mailboxes.send(to, message);
            sent[to] += 1;
            mailbox_high_water = mailbox_high_water.max(depth as u64);
        }
        session.restore_outbox(outbox);
        let wait = sink.start();
        barrier.flush_done();
        if let Some(wait) = wait {
            barrier_wait.record(wait.elapsed());
        }
        mailboxes.drain_into(shard, &mut inbox);
        received += inbox.len() as u64;
        for message in inbox.drain(..) {
            session.apply_wire_message(message);
        }
    }
    let mut parts = session.into_shard_parts();
    if let Some(profile) = parts.profile.as_deref_mut() {
        profile.windows = windows;
        profile.barrier_wait = barrier_wait;
        profile.sent = sent;
        profile.received = received;
        profile.mailbox_depth_high_water = mailbox_high_water;
    }
    parts
}
