//! Fault plans: the replayable, text-encodable form of an injection
//! campaign.
//!
//! A plan is an ordered list of [`FaultEntry`] values. The text encoding
//! is a semicolon-separated list of colon-separated tokens, compact
//! enough to paste into an `asynoc faults --plan` invocation:
//!
//! ```text
//! stall:<channel>:<hits>:<extra_ps>      transient link stall
//! corrupt:<site>:<hits>:<both|drop>      corrupted routing symbol
//! stuck:<site>:<hits>                    stuck speculative broadcast
//! drop:<source>:<nth>:<drops>:<delay_ps> dropped header + retries
//! lose:<source>:<nth>                    unrecoverable packet loss
//! ```
//!
//! Plans either come from [`FaultPlan::parse`] or from
//! [`FaultPlan::random`], which draws targets from a substrate's
//! [`FaultDomain`] with the workspace's own seeded RNG, so a `(seed,
//! density, domain)` triple always reproduces the same plan.

use std::fmt;

use asynoc_engine::{ArmedFaults, FaultDomain};
use asynoc_kernel::{Duration, SimRng};
use asynoc_packet::RouteSymbol;

/// One armed fault in a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEntry {
    /// A transient extra delay on a channel's next `hits` launches.
    Stall {
        /// Target channel index.
        channel: usize,
        /// Launches affected.
        hits: u32,
        /// Extra delay per affected launch.
        extra_ps: u64,
    },
    /// A corrupted routing-symbol read at a fanout site: the node sees
    /// `symbol` (`Both` widens the route, `Drop` starves a subtree)
    /// instead of what the header encodes, for `hits` whole trains.
    Corrupt {
        /// Fanout flat index.
        site: usize,
        /// Trains affected.
        hits: u32,
        /// The symbol the node reads instead.
        symbol: RouteSymbol,
    },
    /// A speculative broadcast stuck on: the site reads `Both` for
    /// `hits` trains regardless of the encoded route.
    Stuck {
        /// Fanout flat index.
        site: usize,
        /// Trains affected.
        hits: u32,
    },
    /// A recoverable header drop: `source`'s `nth` generated header is
    /// dropped `drops` times, re-sent after `delay_ps` each time.
    Drop {
        /// Source endpoint index.
        source: usize,
        /// Which generated header (0-based).
        nth: u64,
        /// Drop count before the header goes through.
        drops: u32,
        /// Retry timeout per drop.
        delay_ps: u64,
    },
    /// An unrecoverable loss: `source`'s `nth` header — and its whole
    /// train — is discarded at the source.
    Lose {
        /// Source endpoint index.
        source: usize,
        /// Which generated header (0-based).
        nth: u64,
    },
}

impl FaultEntry {
    /// The entry's text token (inverse of [`FaultEntry::parse`]).
    #[must_use]
    pub fn encode(&self) -> String {
        match *self {
            FaultEntry::Stall {
                channel,
                hits,
                extra_ps,
            } => format!("stall:{channel}:{hits}:{extra_ps}"),
            FaultEntry::Corrupt { site, hits, symbol } => {
                let sym = match symbol {
                    RouteSymbol::Both => "both",
                    _ => "drop",
                };
                format!("corrupt:{site}:{hits}:{sym}")
            }
            FaultEntry::Stuck { site, hits } => format!("stuck:{site}:{hits}"),
            FaultEntry::Drop {
                source,
                nth,
                drops,
                delay_ps,
            } => format!("drop:{source}:{nth}:{drops}:{delay_ps}"),
            FaultEntry::Lose { source, nth } => format!("lose:{source}:{nth}"),
        }
    }

    /// Parses one token.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the malformed token.
    pub fn parse(token: &str) -> Result<FaultEntry, PlanError> {
        let bad = || PlanError::new(format!("malformed fault token {token:?}"));
        let fields: Vec<&str> = token.split(':').collect();
        let uint = |raw: &str| raw.parse::<u64>().map_err(|_| bad());
        match fields.as_slice() {
            ["stall", channel, hits, extra] => Ok(FaultEntry::Stall {
                channel: uint(channel)? as usize,
                hits: uint(hits)? as u32,
                extra_ps: uint(extra)?,
            }),
            ["corrupt", site, hits, sym] => {
                let symbol = match *sym {
                    "both" => RouteSymbol::Both,
                    "drop" => RouteSymbol::Drop,
                    _ => return Err(bad()),
                };
                Ok(FaultEntry::Corrupt {
                    site: uint(site)? as usize,
                    hits: uint(hits)? as u32,
                    symbol,
                })
            }
            ["stuck", site, hits] => Ok(FaultEntry::Stuck {
                site: uint(site)? as usize,
                hits: uint(hits)? as u32,
            }),
            ["drop", source, nth, drops, delay] => Ok(FaultEntry::Drop {
                source: uint(source)? as usize,
                nth: uint(nth)?,
                drops: uint(drops)? as u32,
                delay_ps: uint(delay)?,
            }),
            ["lose", source, nth] => Ok(FaultEntry::Lose {
                source: uint(source)? as usize,
                nth: uint(nth)?,
            }),
            _ => Err(bad()),
        }
    }

    /// Whether this entry, on a substrate with `domain`, is guaranteed
    /// to leave the delivered-destination multiset intact.
    ///
    /// Stalls delay without losing; drops re-send; a widened (`Both`)
    /// override — including a stuck broadcast — recovers only at sites
    /// the substrate certifies ([`FaultDomain::corrupt_sites`]). A
    /// `Drop` override starves a subtree and a lethal loss discards a
    /// packet: both degrade delivery.
    #[must_use]
    pub fn recoverable(&self, domain: &FaultDomain) -> bool {
        match *self {
            FaultEntry::Stall { .. } | FaultEntry::Drop { .. } => true,
            FaultEntry::Corrupt { site, symbol, .. } => {
                symbol == RouteSymbol::Both && domain.corrupt_sites.contains(&site)
            }
            FaultEntry::Stuck { site, .. } => domain.corrupt_sites.contains(&site),
            FaultEntry::Lose { .. } => false,
        }
    }

    /// The worst-case extra latency this entry can inject, ps.
    #[must_use]
    pub fn delay_budget_ps(&self) -> u64 {
        match *self {
            FaultEntry::Stall { hits, extra_ps, .. } => u64::from(hits) * extra_ps,
            FaultEntry::Drop {
                drops, delay_ps, ..
            } => u64::from(drops) * delay_ps,
            _ => 0,
        }
    }
}

/// A malformed plan encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError {
    message: String,
}

impl PlanError {
    fn new(message: impl Into<String>) -> Self {
        PlanError {
            message: message.into(),
        }
    }

    /// The user-facing message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PlanError {}

/// An ordered fault-injection campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed entries, in plan order.
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (arms nothing).
    #[must_use]
    pub fn new(entries: Vec<FaultEntry>) -> Self {
        FaultPlan { entries }
    }

    /// Parses the semicolon-separated text encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first malformed token.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let entries = text
            .split(';')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(FaultEntry::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { entries })
    }

    /// The plan's text encoding (inverse of [`FaultPlan::parse`]).
    #[must_use]
    pub fn encode(&self) -> String {
        self.entries
            .iter()
            .map(FaultEntry::encode)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Draws a deterministic, *recoverable-only* plan for `domain`:
    /// mostly stalls, some source drops, and — where the substrate
    /// certifies safe sites — widened/stuck symbol overrides. The same
    /// `(seed, density, domain)` always yields the same plan.
    #[must_use]
    pub fn random(seed: u64, density: f64, domain: &FaultDomain) -> FaultPlan {
        let mut rng = SimRng::seed_from(seed);
        let mut entries = Vec::new();
        if domain.channels == 0 || domain.endpoints == 0 {
            return FaultPlan { entries };
        }
        let sites = (domain.channels + domain.endpoints) as f64;
        let budget = ((sites * density.clamp(0.0, 1.0)) / 4.0).ceil().max(1.0) as usize;
        for _ in 0..budget {
            let stall = |rng: &mut SimRng| FaultEntry::Stall {
                channel: rng.index(domain.channels),
                hits: 1 + rng.index(3) as u32,
                extra_ps: 200 + 100 * rng.index(9) as u64,
            };
            match rng.index(4) {
                0 | 1 => entries.push(stall(&mut rng)),
                2 => entries.push(FaultEntry::Drop {
                    source: rng.index(domain.endpoints),
                    nth: rng.index(6) as u64,
                    drops: 1 + rng.index(2) as u32,
                    delay_ps: 400 + 100 * rng.index(7) as u64,
                }),
                _ if domain.corrupt_sites.is_empty() => entries.push(stall(&mut rng)),
                _ => {
                    let site = domain.corrupt_sites[rng.index(domain.corrupt_sites.len())];
                    let hits = 1 + rng.index(2) as u32;
                    entries.push(if rng.chance(0.5) {
                        FaultEntry::Stuck { site, hits }
                    } else {
                        FaultEntry::Corrupt {
                            site,
                            hits,
                            symbol: RouteSymbol::Both,
                        }
                    });
                }
            }
        }
        FaultPlan { entries }
    }

    /// Whether every entry is recoverable on a substrate with `domain`.
    #[must_use]
    pub fn recoverable(&self, domain: &FaultDomain) -> bool {
        self.entries.iter().all(|e| e.recoverable(domain))
    }

    /// Total worst-case injected latency, ps (the oracle's bound on how
    /// much the faulted run's mean may exceed the clean run's).
    #[must_use]
    pub fn delay_budget_ps(&self) -> u64 {
        self.entries.iter().map(FaultEntry::delay_budget_ps).sum()
    }

    /// Compiles the plan into the engine's armed table.
    #[must_use]
    pub fn arm(&self) -> ArmedFaults {
        use asynoc_kernel::FaultClass;
        let mut armed = ArmedFaults::new();
        for entry in &self.entries {
            match *entry {
                FaultEntry::Stall {
                    channel,
                    hits,
                    extra_ps,
                } => armed.add_stall(channel, hits, Duration::from_ps(extra_ps)),
                FaultEntry::Corrupt { site, hits, symbol } => {
                    armed.add_symbol(site, hits, symbol, FaultClass::SymbolCorrupt);
                }
                FaultEntry::Stuck { site, hits } => {
                    armed.add_symbol(site, hits, RouteSymbol::Both, FaultClass::StuckBroadcast);
                }
                FaultEntry::Drop {
                    source,
                    nth,
                    drops,
                    delay_ps,
                } => armed.add_drop(source, nth, drops, Duration::from_ps(delay_ps)),
                FaultEntry::Lose { source, nth } => armed.add_lose(source, nth),
            }
        }
        armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_text_round_trips() {
        let text = "stall:3:2:500;corrupt:9:1:both;stuck:4:1;drop:0:2:1:700;lose:7:0";
        let plan = FaultPlan::parse(text).expect("valid plan");
        assert_eq!(plan.entries.len(), 5);
        assert_eq!(plan.encode(), text);
        assert_eq!(FaultPlan::parse(&plan.encode()), Ok(plan));
    }

    #[test]
    fn malformed_tokens_are_named() {
        for bad in ["stall:3:2", "corrupt:9:1:left", "explode:1", "drop:a:0:1:5"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                err.message().contains(bad.split(':').next().unwrap()),
                "{err}"
            );
        }
        // Empty segments are tolerated (trailing semicolons).
        assert_eq!(FaultPlan::parse(";;"), Ok(FaultPlan::default()));
    }

    #[test]
    fn random_plans_are_seed_reproducible_and_recoverable() {
        let domain = FaultDomain {
            channels: 48,
            endpoints: 8,
            corrupt_sites: vec![1, 5, 9],
        };
        let a = FaultPlan::random(77, 0.5, &domain);
        let b = FaultPlan::random(77, 0.5, &domain);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.entries.is_empty());
        assert!(a.recoverable(&domain));
        let c = FaultPlan::random(78, 0.5, &domain);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn random_plans_respect_an_empty_corrupt_domain() {
        let domain = FaultDomain {
            channels: 20,
            endpoints: 4,
            corrupt_sites: Vec::new(),
        };
        let plan = FaultPlan::random(5, 1.0, &domain);
        assert!(plan
            .entries
            .iter()
            .all(|e| matches!(e, FaultEntry::Stall { .. } | FaultEntry::Drop { .. })));
    }

    #[test]
    fn recoverability_distinguishes_widen_from_starve() {
        let domain = FaultDomain {
            channels: 10,
            endpoints: 4,
            corrupt_sites: vec![2],
        };
        let widen_safe = FaultEntry::Corrupt {
            site: 2,
            hits: 1,
            symbol: RouteSymbol::Both,
        };
        let widen_unsafe = FaultEntry::Corrupt {
            site: 3,
            hits: 1,
            symbol: RouteSymbol::Both,
        };
        let starve = FaultEntry::Corrupt {
            site: 2,
            hits: 1,
            symbol: RouteSymbol::Drop,
        };
        assert!(widen_safe.recoverable(&domain));
        assert!(!widen_unsafe.recoverable(&domain));
        assert!(!starve.recoverable(&domain));
        assert!(!FaultEntry::Lose { source: 0, nth: 0 }.recoverable(&domain));
    }

    #[test]
    fn delay_budget_sums_stalls_and_retries() {
        let plan =
            FaultPlan::parse("stall:1:2:300;drop:0:1:2:500;lose:0:0;stuck:1:4").expect("valid");
        assert_eq!(plan.delay_budget_ps(), 2 * 300 + 2 * 500);
    }

    #[test]
    fn arm_compiles_every_entry() {
        let plan = FaultPlan::parse("stall:1:1:100;drop:0:0:1:100;lose:1:0").expect("valid");
        let armed = plan.arm();
        assert!(armed.is_armed());
        assert!(!FaultPlan::default().arm().is_armed());
    }
}
