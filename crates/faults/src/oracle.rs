//! The differential conformance oracle.
//!
//! Every faulted run is paired with a clean run under the same seed and
//! traffic, and the pair must satisfy the fault model's guarantees:
//!
//! - **Recoverable plans** (stalls, retried drops, certified-safe
//!   widened symbols): the delivered-destination multiset is *identical*
//!   to the clean twin's, and the mean-latency delta is bounded by the
//!   plan's injected-delay budget (plus congestion slack — spurious
//!   speculative copies queue behind real traffic).
//! - **Unrecoverable plans** (lethal losses, starved subtrees): the
//!   degradation is *graceful* — nothing vanishes silently. Every armed
//!   fault that fired appears in the ledger, every packet the ledger
//!   lost is absent from the deliveries, and every broken span tree is
//!   explained by fault records ([`broken_with_cause`] reconciles
//!   exactly with the ledger's loss count).
//!
//! [`broken_with_cause`]: crate::RunOutcome::broken_with_cause

use asynoc_engine::FaultDomain;
use asynoc_telemetry::JsonValue;

use crate::outcome::RunOutcome;
use crate::plan::FaultPlan;

/// One named oracle check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleCheck {
    /// Stable check identifier (appears in the JSON report).
    pub name: &'static str,
    /// Whether the pair satisfied it.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The verdict over one clean/faulted pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Whether the plan was judged under the recoverable contract.
    pub recoverable: bool,
    /// The individual checks, in evaluation order.
    pub checks: Vec<OracleCheck>,
}

impl OracleVerdict {
    /// Whether every check passed.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failing checks.
    #[must_use]
    pub fn failures(&self) -> Vec<&OracleCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// The verdict as a report section.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("recoverable".to_string(), JsonValue::Bool(self.recoverable)),
            ("pass".to_string(), JsonValue::Bool(self.pass())),
            (
                "checks".to_string(),
                JsonValue::Array(
                    self.checks
                        .iter()
                        .map(|c| {
                            JsonValue::Object(vec![
                                ("name".to_string(), JsonValue::str(c.name)),
                                ("pass".to_string(), JsonValue::Bool(c.pass)),
                                ("detail".to_string(), JsonValue::str(c.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn check(name: &'static str, pass: bool, detail: String) -> OracleCheck {
    OracleCheck { name, pass, detail }
}

/// Latency slack granted on top of the plan's injected-delay budget:
/// spurious speculative copies and retried headers queue behind real
/// traffic, so the bound cannot be exact — but it must stay the same
/// order of magnitude as the clean mean.
fn latency_bound_ps(clean_mean: u64, budget_ps: u64) -> u64 {
    clean_mean + budget_ps + clean_mean.max(2_000)
}

/// Judges one differential pair against the fault model's guarantees.
#[must_use]
pub fn judge(
    clean: &RunOutcome,
    faulted: &RunOutcome,
    plan: &FaultPlan,
    domain: &FaultDomain,
) -> OracleVerdict {
    let recoverable = plan.recoverable(domain);
    let mut checks = Vec::new();

    // Shared guarantees first: a clean twin is pure, and nothing the
    // armed table fired is missing from the observers' ledger.
    checks.push(check(
        "clean-twin-pure",
        clean.ledger.total() == 0 && clean.summary.total() == 0,
        format!(
            "clean run recorded {} fault events (must be 0)",
            clean.ledger.total()
        ),
    ));
    checks.push(check(
        "no-silent-faults",
        faulted.ledger.total() == faulted.summary.total(),
        format!(
            "armed table fired {} events, ledger observed {}",
            faulted.summary.total(),
            faulted.ledger.total()
        ),
    ));

    if recoverable {
        checks.push(check(
            "delivery-multiset",
            clean.deliveries == faulted.deliveries,
            format!(
                "clean delivered {} (logical, dest) pairs, faulted {}",
                clean.deliveries.len(),
                faulted.deliveries.len()
            ),
        ));
        checks.push(check(
            "no-incomplete-packets",
            faulted.packets_incomplete == clean.packets_incomplete,
            format!(
                "faulted left {} measured packets incomplete vs clean {}",
                faulted.packets_incomplete, clean.packets_incomplete
            ),
        ));
        match (clean.mean_latency_ps, faulted.mean_latency_ps) {
            (Some(clean_mean), Some(faulted_mean)) => {
                let bound = latency_bound_ps(clean_mean, plan.delay_budget_ps());
                checks.push(check(
                    "latency-attributable",
                    faulted_mean <= bound,
                    format!(
                        "faulted mean {faulted_mean} ps vs clean {clean_mean} ps \
                         + budget {} ps (bound {bound} ps)",
                        plan.delay_budget_ps()
                    ),
                ));
            }
            (clean_mean, faulted_mean) => checks.push(check(
                "latency-attributable",
                clean_mean == faulted_mean,
                "one side measured no packets".to_string(),
            )),
        }
    } else {
        // Graceful degradation: deliveries may shrink but never grow or
        // shift, lost packets are accounted and absent, and every broken
        // tree has a recorded cause.
        let subset = faulted
            .deliveries
            .iter()
            .all(|(key, &count)| clean.deliveries.get(key).is_some_and(|&c| c >= count));
        checks.push(check(
            "delivery-subset",
            subset,
            "faulted deliveries must be a sub-multiset of the clean twin's".to_string(),
        ));
        let lost_absent = faulted.ledger.lost_packets().iter().all(|&lost| {
            faulted
                .deliveries
                .keys()
                .all(|&(logical, _)| logical != lost)
        });
        checks.push(check(
            "lost-packets-absent",
            lost_absent,
            format!(
                "{} ledger-lost packets must have no deliveries",
                faulted.ledger.lost()
            ),
        ));
        checks.push(check(
            "loss-accounted",
            faulted.ledger.lost() == faulted.broken_with_cause as u64,
            format!(
                "ledger lost {} packets, span analysis explains {} broken trees",
                faulted.ledger.lost(),
                faulted.broken_with_cause
            ),
        ));
        checks.push(check(
            "no-unexplained-breakage",
            faulted.broken_trees == faulted.broken_with_cause,
            format!(
                "{} broken trees, {} with a recorded fault cause",
                faulted.broken_trees, faulted.broken_with_cause
            ),
        ));
    }

    OracleVerdict {
        recoverable,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc_telemetry::FaultLedger;

    fn domain() -> FaultDomain {
        FaultDomain {
            channels: 16,
            endpoints: 4,
            corrupt_sites: vec![2],
        }
    }

    fn outcome(pairs: &[((u64, usize), u64)]) -> RunOutcome {
        RunOutcome {
            deliveries: pairs.iter().copied().collect(),
            mean_latency_ps: Some(1_000),
            ..RunOutcome::default()
        }
    }

    #[test]
    fn identical_pairs_pass_the_recoverable_contract() {
        let plan = FaultPlan::parse("stall:3:1:200").expect("valid");
        let clean = outcome(&[((1, 0), 1), ((1, 3), 1)]);
        let faulted = outcome(&[((1, 0), 1), ((1, 3), 1)]);
        let verdict = judge(&clean, &faulted, &plan, &domain());
        assert!(verdict.recoverable);
        assert!(verdict.pass(), "failures: {:?}", verdict.failures());
    }

    #[test]
    fn multiset_divergence_fails_a_recoverable_plan() {
        let plan = FaultPlan::parse("stall:3:1:200").expect("valid");
        let clean = outcome(&[((1, 0), 1), ((1, 3), 1)]);
        let faulted = outcome(&[((1, 0), 1)]);
        let verdict = judge(&clean, &faulted, &plan, &domain());
        assert!(!verdict.pass());
        assert!(verdict
            .failures()
            .iter()
            .any(|c| c.name == "delivery-multiset"));
    }

    #[test]
    fn unbounded_latency_fails_a_recoverable_plan() {
        let plan = FaultPlan::parse("stall:3:1:200").expect("valid");
        let clean = outcome(&[((1, 0), 1)]);
        let mut faulted = outcome(&[((1, 0), 1)]);
        faulted.mean_latency_ps = Some(1_000_000);
        let verdict = judge(&clean, &faulted, &plan, &domain());
        assert!(verdict
            .failures()
            .iter()
            .any(|c| c.name == "latency-attributable"));
    }

    #[test]
    fn lethal_plans_use_the_degradation_contract() {
        let plan = FaultPlan::parse("lose:0:0").expect("valid");
        let clean = outcome(&[((1, 0), 1), ((2, 1), 1)]);
        let mut faulted = outcome(&[((2, 1), 1)]);
        let mut ledger = FaultLedger::new();
        // Simulate the engine's lethal pair of events via the ledger's
        // public view: one lost packet with logical id 1.
        let _ = &mut ledger;
        faulted.broken_trees = 1;
        faulted.broken_with_cause = 1;
        let verdict = judge(&clean, &faulted, &plan, &domain());
        assert!(!verdict.recoverable);
        // ledger.lost() is 0 but broken_with_cause is 1 → loss-accounted fails.
        assert!(verdict
            .failures()
            .iter()
            .any(|c| c.name == "loss-accounted"));
        // The subset and absence checks hold.
        assert!(verdict
            .checks
            .iter()
            .any(|c| c.name == "delivery-subset" && c.pass));
    }

    #[test]
    fn extra_deliveries_fail_the_degradation_contract() {
        let plan = FaultPlan::parse("corrupt:9:1:drop").expect("valid");
        let clean = outcome(&[((1, 0), 1)]);
        let faulted = outcome(&[((1, 0), 1), ((1, 2), 1)]);
        let verdict = judge(&clean, &faulted, &plan, &domain());
        assert!(verdict
            .failures()
            .iter()
            .any(|c| c.name == "delivery-subset"));
    }

    #[test]
    fn verdict_json_round_trips() {
        let plan = FaultPlan::parse("stall:3:1:200").expect("valid");
        let clean = outcome(&[((1, 0), 1)]);
        let faulted = outcome(&[((1, 0), 1)]);
        let verdict = judge(&clean, &faulted, &plan, &domain());
        let json = verdict.to_json();
        assert_eq!(JsonValue::parse(&json.render()), Ok(json.clone()));
        assert_eq!(json.get("pass"), Some(&JsonValue::Bool(true)));
    }
}
