//! Minimal-reproducer shrinking for failing fault plans.
//!
//! When a differential pair violates the oracle, the interesting
//! artifact is not the original (often random) plan but the smallest
//! sub-plan that still fails: it names the one interaction the fault
//! model got wrong. [`shrink_plan`] greedily bisects the entry list —
//! drop each entry, keep the removal whenever the predicate still
//! fails, iterate to a fixpoint — then shrinks surviving entries'
//! budgets (`hits`/`drops` down to 1). The result replays from the CLI:
//! [`replay_command`] prints the exact `asynoc faults` line.

use crate::plan::{FaultEntry, FaultPlan};

/// Shrinks `plan` to a (locally) minimal sub-plan on which
/// `still_fails` holds. The predicate is assumed true for `plan`
/// itself; it is re-evaluated on every candidate, so it should run the
/// same deterministic differential pair each time.
pub fn shrink_plan(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    // Pass 1: remove whole entries until no single removal still fails.
    let mut changed = true;
    while changed && current.entries.len() > 1 {
        changed = false;
        let mut index = 0;
        while index < current.entries.len() && current.entries.len() > 1 {
            let mut candidate = current.clone();
            candidate.entries.remove(index);
            if still_fails(&candidate) {
                current = candidate;
                changed = true;
            } else {
                index += 1;
            }
        }
    }
    // Pass 2: shrink surviving budgets to their unit forms.
    for index in 0..current.entries.len() {
        let shrunk = match current.entries[index] {
            FaultEntry::Stall {
                channel,
                hits,
                extra_ps,
            } if hits > 1 => Some(FaultEntry::Stall {
                channel,
                hits: 1,
                extra_ps,
            }),
            FaultEntry::Corrupt { site, hits, symbol } if hits > 1 => Some(FaultEntry::Corrupt {
                site,
                hits: 1,
                symbol,
            }),
            FaultEntry::Stuck { site, hits } if hits > 1 => {
                Some(FaultEntry::Stuck { site, hits: 1 })
            }
            FaultEntry::Drop {
                source,
                nth,
                drops,
                delay_ps,
            } if drops > 1 => Some(FaultEntry::Drop {
                source,
                nth,
                drops: 1,
                delay_ps,
            }),
            _ => None,
        };
        if let Some(entry) = shrunk {
            let mut candidate = current.clone();
            candidate.entries[index] = entry;
            if still_fails(&candidate) {
                current = candidate;
            }
        }
    }
    current
}

/// The exact CLI line that replays a failing differential pair.
#[must_use]
pub fn replay_command(
    substrate: &str,
    arch: Option<&str>,
    benchmark: &str,
    rate: f64,
    size: usize,
    seed: u64,
    plan: &FaultPlan,
) -> String {
    let arch = arch.map_or(String::new(), |a| format!(" --arch {a}"));
    format!(
        "asynoc faults --substrate {substrate}{arch} --benchmark {benchmark} \
         --rate {rate} --size {size} --seed {seed} --oracle --plan '{}'",
        plan.encode()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_isolates_the_culprit_entry() {
        let plan =
            FaultPlan::parse("stall:1:3:200;lose:0:0;stall:2:1:100;drop:3:1:2:500").expect("valid");
        // "Fails" iff the plan still contains a lethal loss.
        let minimal = shrink_plan(&plan, |p| {
            p.entries
                .iter()
                .any(|e| matches!(e, FaultEntry::Lose { .. }))
        });
        assert_eq!(
            minimal.entries,
            vec![FaultEntry::Lose { source: 0, nth: 0 }]
        );
    }

    #[test]
    fn shrinking_reduces_budgets_to_units() {
        let plan = FaultPlan::parse("stall:1:5:200").expect("valid");
        let minimal = shrink_plan(&plan, |p| {
            p.entries
                .iter()
                .any(|e| matches!(e, FaultEntry::Stall { .. }))
        });
        assert_eq!(
            minimal.entries,
            vec![FaultEntry::Stall {
                channel: 1,
                hits: 1,
                extra_ps: 200
            }]
        );
    }

    #[test]
    fn shrinking_never_returns_an_empty_plan() {
        let plan = FaultPlan::parse("stall:1:1:200").expect("valid");
        let minimal = shrink_plan(&plan, |_| true);
        assert_eq!(minimal, plan);
    }

    #[test]
    fn replay_command_is_copy_pasteable() {
        let plan = FaultPlan::parse("stall:3:1:200;lose:0:1").expect("valid");
        let line = replay_command("mot", Some("Baseline"), "Multicast5", 0.2, 8, 42, &plan);
        assert!(line.starts_with("asynoc faults --substrate mot --arch Baseline"));
        assert!(line.contains("--plan 'stall:3:1:200;lose:0:1'"));
        assert!(line.contains("--oracle"));
    }
}
