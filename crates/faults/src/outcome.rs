//! Instrumented fault runs and their distilled outcomes.
//!
//! The oracle never compares raw reports: both sides of a differential
//! pair are reduced to a [`RunOutcome`] — the delivered-destination
//! multiset, the mean latency, the fault ledger, and the span-tree
//! fault counters — by running the substrate with the same observer
//! stack. Clean runs use the plain observer path (no fault state is
//! even constructed, keeping the zero-cost guarantee honest); faulted
//! runs thread the armed plan through `run_with_faults`.

use std::collections::BTreeMap;

use asynoc::{Benchmark, Network, Observer, Phases, RunConfig, SimEvent, Time};
use asynoc_analysis::SpanForest;
use asynoc_engine::FaultSummary;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_telemetry::{FaultLedger, TraceCollector};
use asynoc_vcmesh::{McastScheme, VcMeshConfig, VcMeshNetwork};

use crate::plan::FaultPlan;

/// Forwards one event to a caller-supplied observer slice (`&mut dyn`
/// is invariant in the trait object's lifetime, so the caller's
/// observers can't join a slice of short-lived local ones directly).
struct Extras<'x, 'y, N>(&'x mut [&'y mut dyn Observer<N>]);

impl<N> Observer<N> for Extras<'_, '_, N> {
    fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        for observer in self.0.iter_mut() {
            observer.on_event(at, in_window, event);
        }
    }
}

/// The delivered-destination multiset: how many header flits each
/// `(logical packet, destination)` pair received. Recoverable faults
/// must leave this identical to the clean twin's.
pub type DeliveryMultiset = BTreeMap<(u64, usize), u64>;

/// Observer recording every header delivery, ungated by the
/// measurement window (the differential oracle compares whole runs).
#[derive(Clone, Debug, Default)]
pub struct DeliveryLog {
    deliveries: DeliveryMultiset,
}

impl DeliveryLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        DeliveryLog::default()
    }

    /// The recorded multiset.
    #[must_use]
    pub fn deliveries(&self) -> &DeliveryMultiset {
        &self.deliveries
    }

    /// Consumes the log.
    #[must_use]
    pub fn into_deliveries(self) -> DeliveryMultiset {
        self.deliveries
    }
}

impl<N> Observer<N> for DeliveryLog {
    fn on_event(&mut self, _at: Time, _in_window: bool, event: &SimEvent<'_, N>) {
        let SimEvent::Deliver { dest, flit } = event else {
            return;
        };
        if flit.kind().is_header() {
            let key = (flit.descriptor().logical_id().as_u64(), *dest);
            *self.deliveries.entry(key).or_default() += 1;
        }
    }
}

/// Everything the oracle needs to know about one run.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Header deliveries per `(logical packet, destination)`.
    pub deliveries: DeliveryMultiset,
    /// Mean measured latency, ps (`None` when nothing was measured).
    pub mean_latency_ps: Option<u64>,
    /// Measured packets still undelivered at the end of the run.
    pub packets_incomplete: usize,
    /// The observers' fault ledger (empty on clean runs).
    pub ledger: FaultLedger,
    /// The armed table's own fire counters (default on clean runs).
    pub summary: FaultSummary,
    /// Span trees touched by at least one fault record.
    pub fault_affected_trees: usize,
    /// Span trees that never closed.
    pub broken_trees: usize,
    /// Broken trees explained by fault records (never silent loss).
    pub broken_with_cause: usize,
    /// The engine's self-profile, when the run enabled profiling.
    /// Host-side metadata only — the oracle never compares it.
    pub profile: Option<Box<asynoc_engine::probe::EngineProfile>>,
}

/// Trace capacity for outcome runs: the differential tests use short
/// windows, so this comfortably captures every event.
const TRACE_CAPACITY: usize = 500_000;

fn distill(
    deliveries: DeliveryMultiset,
    mean_latency_ps: Option<u64>,
    packets_incomplete: usize,
    ledger: FaultLedger,
    summary: FaultSummary,
    forest: &SpanForest,
    profile: Option<Box<asynoc_engine::probe::EngineProfile>>,
) -> RunOutcome {
    RunOutcome {
        deliveries,
        mean_latency_ps,
        packets_incomplete,
        ledger,
        summary,
        fault_affected_trees: forest.fault_affected,
        broken_trees: forest.broken_trees,
        broken_with_cause: forest.broken_with_cause,
        profile,
    }
}

/// Runs the MoT substrate, faulted iff `plan` is non-empty, and
/// distills the outcome.
///
/// # Errors
///
/// Returns the substrate's own error on an invalid run specification.
pub fn run_mot_outcome(
    net: &Network,
    run: &RunConfig,
    plan: Option<&FaultPlan>,
) -> Result<RunOutcome, asynoc::SimError> {
    run_mot_outcome_observed(net, run, plan, &mut [])
}

/// [`run_mot_outcome`] with caller-supplied observers (e.g. a streaming
/// sink) registered after the oracle's own. Extra observers see the
/// identical, ungated event stream and cannot perturb the outcome —
/// streamed fault runs stay oracle-clean.
///
/// # Errors
///
/// Returns the substrate's own error on an invalid run specification.
pub fn run_mot_outcome_observed(
    net: &Network,
    run: &RunConfig,
    plan: Option<&FaultPlan>,
    observers: &mut [&mut dyn Observer<asynoc::MotNode>],
) -> Result<RunOutcome, asynoc::SimError> {
    let mut log = DeliveryLog::new();
    let mut ledger = FaultLedger::new();
    let mut trace = TraceCollector::generic(TRACE_CAPACITY);
    let mut extras = Extras(observers);
    let mut extra: Vec<&mut dyn Observer<asynoc::MotNode>> =
        vec![&mut log, &mut ledger, &mut trace, &mut extras];
    let (report, summary) = match plan {
        Some(plan) if !plan.entries.is_empty() => {
            let mut armed = plan.arm();
            let report = net.run_with_faults(run, &mut armed, &mut extra)?;
            (report, armed.summary())
        }
        _ => (
            net.run_with_observers(run, &mut extra)?,
            FaultSummary::default(),
        ),
    };
    let forest = SpanForest::build(trace.records());
    Ok(distill(
        log.into_deliveries(),
        report.latency.mean().map(|d| d.as_ps()),
        report.packets_incomplete,
        ledger,
        summary,
        &forest,
        report.profile,
    ))
}

/// Runs the mesh substrate, faulted iff `plan` is non-empty, and
/// distills the outcome.
///
/// # Errors
///
/// Returns the substrate's own error on an invalid run specification.
pub fn run_mesh_outcome(
    net: &MeshNetwork,
    benchmark: Benchmark,
    rate: f64,
    phases: Phases,
    plan: Option<&FaultPlan>,
) -> Result<RunOutcome, asynoc_mesh::MeshError> {
    run_mesh_outcome_observed(net, benchmark, rate, phases, plan, &mut [])
}

/// [`run_mesh_outcome`] with caller-supplied observers (e.g. a
/// streaming sink) registered after the oracle's own. Extra observers
/// see the identical, ungated event stream and cannot perturb the
/// outcome — streamed fault runs stay oracle-clean.
///
/// # Errors
///
/// Returns the substrate's own error on an invalid run specification.
pub fn run_mesh_outcome_observed(
    net: &MeshNetwork,
    benchmark: Benchmark,
    rate: f64,
    phases: Phases,
    plan: Option<&FaultPlan>,
    observers: &mut [&mut dyn Observer<usize>],
) -> Result<RunOutcome, asynoc_mesh::MeshError> {
    let mut log = DeliveryLog::new();
    let mut ledger = FaultLedger::new();
    let mut trace: TraceCollector<usize> = TraceCollector::generic(TRACE_CAPACITY);
    let mut extras = Extras(observers);
    let mut extra: Vec<&mut dyn Observer<usize>> =
        vec![&mut log, &mut ledger, &mut trace, &mut extras];
    let (report, summary) = match plan {
        Some(plan) if !plan.entries.is_empty() => {
            let mut armed = plan.arm();
            let report = net.run_with_faults(benchmark, rate, phases, &mut armed, &mut extra)?;
            (report, armed.summary())
        }
        _ => (
            net.run_with_observers(benchmark, rate, phases, &mut extra)?,
            FaultSummary::default(),
        ),
    };
    let forest = SpanForest::build(trace.records());
    Ok(distill(
        log.into_deliveries(),
        report.latency.mean().map(|d| d.as_ps()),
        report.packets_incomplete,
        ledger,
        summary,
        &forest,
        report.profile,
    ))
}

/// Runs the VC mesh substrate, faulted iff `plan` is non-empty, and
/// distills the outcome.
///
/// # Errors
///
/// Returns the substrate's own error on an invalid run specification.
pub fn run_vcmesh_outcome(
    net: &VcMeshNetwork,
    benchmark: Benchmark,
    rate: f64,
    phases: Phases,
    plan: Option<&FaultPlan>,
) -> Result<RunOutcome, asynoc_mesh::MeshError> {
    run_vcmesh_outcome_observed(net, benchmark, rate, phases, plan, &mut [])
}

/// [`run_vcmesh_outcome`] with caller-supplied observers (e.g. a
/// streaming sink) registered after the oracle's own. Extra observers
/// see the identical, ungated event stream and cannot perturb the
/// outcome — streamed fault runs stay oracle-clean.
///
/// # Errors
///
/// Returns the substrate's own error on an invalid run specification.
pub fn run_vcmesh_outcome_observed(
    net: &VcMeshNetwork,
    benchmark: Benchmark,
    rate: f64,
    phases: Phases,
    plan: Option<&FaultPlan>,
    observers: &mut [&mut dyn Observer<usize>],
) -> Result<RunOutcome, asynoc_mesh::MeshError> {
    let mut log = DeliveryLog::new();
    let mut ledger = FaultLedger::new();
    let mut trace: TraceCollector<usize> = TraceCollector::generic(TRACE_CAPACITY);
    let mut extras = Extras(observers);
    let mut extra: Vec<&mut dyn Observer<usize>> =
        vec![&mut log, &mut ledger, &mut trace, &mut extras];
    let (report, summary) = match plan {
        Some(plan) if !plan.entries.is_empty() => {
            let mut armed = plan.arm();
            let report = net.run_with_faults(benchmark, rate, phases, &mut armed, &mut extra)?;
            (report, armed.summary())
        }
        _ => (
            net.run_with_observers(benchmark, rate, phases, &mut extra)?,
            FaultSummary::default(),
        ),
    };
    let forest = SpanForest::build(trace.records());
    Ok(distill(
        log.into_deliveries(),
        report.latency.mean().map(|d| d.as_ps()),
        report.packets_incomplete,
        ledger,
        summary,
        &forest,
        report.profile,
    ))
}

/// Convenience constructor for the standard differential VC mesh
/// network.
///
/// # Errors
///
/// Returns the mesh's own error on a degenerate size.
pub fn vcmesh_network(
    side: usize,
    seed: u64,
    flits: u8,
    shards: usize,
    mcast: McastScheme,
) -> Result<VcMeshNetwork, asynoc_mesh::MeshError> {
    let size = MeshSize::new(side, side)?;
    VcMeshNetwork::new(
        VcMeshConfig::new(size)
            .with_seed(seed)
            .with_flits_per_packet(flits)
            .with_shards(shards)
            .with_mcast(mcast),
    )
}

/// Convenience constructor for the standard differential mesh network.
///
/// # Errors
///
/// Returns the mesh's own error on a degenerate size.
pub fn mesh_network(
    side: usize,
    seed: u64,
    flits: u8,
    shards: usize,
) -> Result<MeshNetwork, asynoc_mesh::MeshError> {
    let size = MeshSize::new(side, side)?;
    MeshNetwork::new(
        MeshConfig::new(size)
            .with_seed(seed)
            .with_flits_per_packet(flits)
            .with_shards(shards),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc::{Architecture, Duration, MotSize, NetworkConfig};

    fn quick_run() -> RunConfig {
        RunConfig::new(Benchmark::Multicast5, 0.2)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(20), Duration::from_ns(120)))
    }

    fn small_net(seed: u64) -> Network {
        Network::new(
            NetworkConfig::new(
                MotSize::new(8).expect("valid"),
                Architecture::BasicHybridSpeculative,
            )
            .with_seed(seed),
        )
        .expect("valid config")
    }

    #[test]
    fn clean_outcomes_record_deliveries_and_no_faults() {
        let net = small_net(11);
        let outcome = run_mot_outcome(&net, &quick_run(), None).expect("run succeeds");
        assert!(!outcome.deliveries.is_empty(), "headers were delivered");
        assert_eq!(outcome.ledger.total(), 0);
        assert_eq!(outcome.summary.total(), 0);
        assert_eq!(outcome.fault_affected_trees, 0);
        assert!(outcome.mean_latency_ps.is_some());
    }

    #[test]
    fn stalled_outcome_matches_clean_deliveries() {
        let net = small_net(11);
        let clean = run_mot_outcome(&net, &quick_run(), None).expect("clean run");
        let plan = FaultPlan::parse("stall:0:3:400;stall:5:2:300").expect("valid");
        let faulted = run_mot_outcome(&net, &quick_run(), Some(&plan)).expect("faulted run");
        assert_eq!(clean.deliveries, faulted.deliveries);
        assert_eq!(faulted.summary.stalls, faulted.ledger.total());
        assert!(faulted.summary.stalls > 0, "the stalls actually fired");
    }
}
