//! `asynoc-faults` — deterministic fault injection with a differential
//! conformance oracle.
//!
//! The speculation protocol's whole claim is *local recovery*: a
//! mis-speculated copy dies at the next non-speculative stage without
//! anyone upstream noticing. This crate stress-tests that claim by
//! injecting seed-reproducible faults into the shared engine's run loop
//! — on both substrates — and holding every faulted run against a clean
//! twin under the same seed:
//!
//! - [`FaultPlan`] — the replayable campaign: transient link stalls,
//!   corrupted/stuck routing symbols, dropped-and-retried headers, and
//!   unrecoverable packet losses, encodable as compact text
//!   (`stall:3:2:500;lose:0:1`) and drawable at random from a
//!   substrate's certified [`FaultDomain`].
//! - [`run_mot_outcome`] / [`run_mesh_outcome`] — instrumented runs
//!   distilled to a [`RunOutcome`]: the delivered-destination multiset
//!   ([`DeliveryLog`]), the fault ledger, and the span-tree fault
//!   counters.
//! - [`judge`] — the oracle: recoverable plans must leave the delivery
//!   multiset identical with a latency delta bounded by the injected
//!   budget; unrecoverable plans must degrade gracefully (every loss in
//!   the ledger, every broken tree explained).
//! - [`shrink_plan`] / [`replay_command`] — failing plans bisect to a
//!   minimal reproducer and print the exact `asynoc faults` replay line.

#![deny(missing_docs)]

pub mod oracle;
pub mod outcome;
pub mod plan;
pub mod shrink;

pub use oracle::{judge, OracleCheck, OracleVerdict};
pub use outcome::{
    mesh_network, run_mesh_outcome, run_mesh_outcome_observed, run_mot_outcome,
    run_mot_outcome_observed, run_vcmesh_outcome, run_vcmesh_outcome_observed, vcmesh_network,
    DeliveryLog, DeliveryMultiset, RunOutcome,
};
pub use plan::{FaultEntry, FaultPlan, PlanError};
pub use shrink::{replay_command, shrink_plan};

// Re-exported so plan targets and verdicts can be produced without a
// direct engine dependency.
pub use asynoc_engine::{FaultDomain, FaultSummary};

/// The fault report's schema identifier (`schema` field of the JSON
/// document `asynoc faults` emits). Bump when the report shape changes.
pub const FAULTS_SCHEMA: &str = "asynoc-faults-v1";
