//! Variant Mesh-of-Trees (MoT) topology and architecture descriptions.
//!
//! An N×N variant MoT (Balkan et al., reused by Horak et al. and by the
//! DAC'16 paper this workspace reproduces) connects N sources to N
//! destinations through:
//!
//! - N private binary **fanout trees**, one rooted at each source, whose
//!   nodes route/replicate packets toward destination subtrees, and
//! - N shared binary **fanin trees**, one rooted at each destination, whose
//!   nodes arbitrate among sources.
//!
//! Each source–destination pair has exactly one path, so all contention
//! lives in the fanin trees — and all multicast machinery lives in the
//! fanout trees, which is why the paper (and this workspace) only redesigns
//! fanout nodes.
//!
//! This crate answers the structural questions:
//!
//! - [`MotSize`]: validated network sizes and node counting,
//! - [`FanoutNodeId`] / [`FaninNodeId`]: node coordinates and flat indices,
//! - [`Architecture`] / [`SpeculationMap`]: which of the paper's six network
//!   configurations a node belongs to and which [`FanoutKind`] it gets,
//! - [`route`]: multicast route-symbol computation (the source-routing
//!   encoder).
//!
//! # Examples
//!
//! ```
//! use asynoc_topology::{Architecture, MotSize};
//!
//! let size = MotSize::new(8)?;
//! let arch = Architecture::OptHybridSpeculative;
//! assert_eq!(arch.address_bits(size), 12);
//! # Ok::<(), asynoc_topology::TopologyError>(())
//! ```

pub mod arch;
pub mod error;
pub mod ids;
pub mod route;
pub mod size;
pub mod spec;

pub use arch::{Architecture, FanoutKind, NodePlan, SpeculationMap};
pub use error::TopologyError;
pub use ids::{FaninNodeId, FaninParent, FanoutChild, FanoutNodeId, OutputPort};
pub use route::{multicast_route, multicast_route_into, unicast_route};
pub use size::MotSize;
pub use spec::SpecMap;
