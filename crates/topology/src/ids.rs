//! Node coordinates and wiring rules.
//!
//! Fanout trees route *down* (root = source, leaves = destination stubs);
//! fanin trees arbitrate *up* toward their destination root. The wiring is
//! fully determined by coordinates, so it is computed on demand rather than
//! stored:
//!
//! - fanout node *(s, l, i)* covers destinations `[i·n/2^l, (i+1)·n/2^l)`;
//!   its **top** output covers the lower half of that span, **bottom** the
//!   upper half;
//! - the leaf fanout output for destination *d* of source *s* feeds fanin
//!   tree *d* at its leaf arbitration slot for source *s*;
//! - fanin node *(d, l, i)* merges its two inputs and feeds input `i mod 2`
//!   of node *(d, l−1, i/2)*; the root feeds destination sink *d*.

use std::fmt;

use crate::size::MotSize;

/// One of a fanout node's two output channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OutputPort {
    /// Routes toward the lower half of the node's destination span.
    Top,
    /// Routes toward the upper half of the node's destination span.
    Bottom,
}

impl OutputPort {
    /// Both ports, top first.
    pub const BOTH: [OutputPort; 2] = [OutputPort::Top, OutputPort::Bottom];

    /// Port index: top = 0, bottom = 1.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            OutputPort::Top => 0,
            OutputPort::Bottom => 1,
        }
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        match index {
            0 => OutputPort::Top,
            1 => OutputPort::Bottom,
            _ => panic!("output port index {index} out of range"),
        }
    }
}

impl fmt::Display for OutputPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputPort::Top => "top",
            OutputPort::Bottom => "bottom",
        })
    }
}

/// Coordinates of a fanout (routing) node: source tree, level (root = 0),
/// index within the level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FanoutNodeId {
    /// The source whose private tree this node belongs to.
    pub tree: usize,
    /// Tree level; the root is level 0.
    pub level: u32,
    /// Index within the level, `0..2^level`.
    pub index: usize,
}

/// What a fanout output port connects to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FanoutChild {
    /// Another fanout node one level down.
    Node(FanoutNodeId),
    /// A fanin-tree leaf slot: the entry point of destination `dest`'s
    /// arbitration tree for packets from source `source`.
    FaninLeaf {
        /// Destination whose fanin tree is entered.
        dest: usize,
        /// Source whose slot is used.
        source: usize,
    },
}

impl FanoutNodeId {
    /// The root of `source`'s fanout tree.
    #[must_use]
    pub const fn root(source: usize) -> Self {
        FanoutNodeId {
            tree: source,
            level: 0,
            index: 0,
        }
    }

    /// Returns `true` if this node's coordinates are valid for `size`.
    #[must_use]
    pub fn is_valid(self, size: MotSize) -> bool {
        self.tree < size.n() && self.level < size.levels() && self.index < (1usize << self.level)
    }

    /// The half-open destination span `[low, high)` this node covers.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the node is invalid for `size`.
    #[must_use]
    pub fn dest_span(self, size: MotSize) -> (usize, usize) {
        debug_assert!(self.is_valid(size), "invalid fanout node {self}");
        let span = size.n() >> self.level;
        (self.index * span, (self.index + 1) * span)
    }

    /// The destination span covered by one output port.
    #[must_use]
    pub fn port_span(self, size: MotSize, port: OutputPort) -> (usize, usize) {
        let (low, high) = self.dest_span(size);
        let mid = low + (high - low) / 2;
        match port {
            OutputPort::Top => (low, mid),
            OutputPort::Bottom => (mid, high),
        }
    }

    /// What the given output port connects to.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the node is invalid for `size`.
    #[must_use]
    pub fn child(self, size: MotSize, port: OutputPort) -> FanoutChild {
        debug_assert!(self.is_valid(size), "invalid fanout node {self}");
        let next_index = 2 * self.index + port.index();
        if self.level + 1 < size.levels() {
            FanoutChild::Node(FanoutNodeId {
                tree: self.tree,
                level: self.level + 1,
                index: next_index,
            })
        } else {
            FanoutChild::FaninLeaf {
                dest: next_index,
                source: self.tree,
            }
        }
    }

    /// Returns `true` for nodes on the last fanout level (feeding fanin
    /// trees directly).
    #[must_use]
    pub fn is_leaf_level(self, size: MotSize) -> bool {
        self.level + 1 == size.levels()
    }

    /// Flat index within the whole network, `0..size.total_fanout_nodes()`.
    /// Nodes of one tree are contiguous, in level order.
    #[must_use]
    pub fn flat_index(self, size: MotSize) -> usize {
        debug_assert!(self.is_valid(size), "invalid fanout node {self}");
        self.tree * size.fanout_nodes_per_tree() + ((1usize << self.level) - 1) + self.index
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    #[must_use]
    pub fn from_flat_index(size: MotSize, flat: usize) -> Self {
        assert!(
            flat < size.total_fanout_nodes(),
            "flat fanout index {flat} out of range"
        );
        let per_tree = size.fanout_nodes_per_tree();
        let tree = flat / per_tree;
        let within = flat % per_tree;
        // within = 2^level - 1 + index  ⇒  level = floor(log2(within + 1)).
        let level = usize::BITS - 1 - (within + 1).leading_zeros();
        let index = within + 1 - (1usize << level);
        FanoutNodeId { tree, level, index }
    }

    /// Enumerates every fanout node of `size`'s network in flat-index order.
    pub fn all(size: MotSize) -> impl Iterator<Item = FanoutNodeId> {
        (0..size.total_fanout_nodes()).map(move |flat| FanoutNodeId::from_flat_index(size, flat))
    }
}

impl fmt::Display for FanoutNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fo[s{}:{}.{}]", self.tree, self.level, self.index)
    }
}

/// Coordinates of a fanin (arbitration) node: destination tree, level
/// (root = 0, adjacent to the destination sink), index within the level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaninNodeId {
    /// The destination whose arbitration tree this node belongs to.
    pub tree: usize,
    /// Tree level; the root (level 0) feeds the destination sink.
    pub level: u32,
    /// Index within the level, `0..2^level`.
    pub index: usize,
}

/// What a fanin node's single output connects to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaninParent {
    /// Another fanin node one level up (closer to the root), at the given
    /// input slot (0 or 1).
    Node {
        /// The downstream fanin node.
        id: FaninNodeId,
        /// Which of its two inputs this node drives.
        input: usize,
    },
    /// The destination sink.
    Sink {
        /// The destination index.
        dest: usize,
    },
}

impl FaninNodeId {
    /// The root of `dest`'s fanin tree (feeds the destination sink).
    #[must_use]
    pub const fn root(dest: usize) -> Self {
        FaninNodeId {
            tree: dest,
            level: 0,
            index: 0,
        }
    }

    /// The leaf fanin node and input slot that accept traffic from `source`
    /// into `dest`'s tree.
    #[must_use]
    pub fn leaf_for_source(size: MotSize, dest: usize, source: usize) -> (FaninNodeId, usize) {
        debug_assert!(dest < size.n() && source < size.n());
        (
            FaninNodeId {
                tree: dest,
                level: size.levels() - 1,
                index: source / 2,
            },
            source % 2,
        )
    }

    /// Returns `true` if this node's coordinates are valid for `size`.
    #[must_use]
    pub fn is_valid(self, size: MotSize) -> bool {
        self.tree < size.n() && self.level < size.levels() && self.index < (1usize << self.level)
    }

    /// The half-open source span `[low, high)` whose traffic funnels through
    /// this node.
    #[must_use]
    pub fn source_span(self, size: MotSize) -> (usize, usize) {
        debug_assert!(self.is_valid(size), "invalid fanin node {self}");
        let span = size.n() >> self.level;
        (self.index * span, (self.index + 1) * span)
    }

    /// Where this node's output goes.
    #[must_use]
    pub fn parent(self, size: MotSize) -> FaninParent {
        debug_assert!(self.is_valid(size), "invalid fanin node {self}");
        if self.level == 0 {
            FaninParent::Sink { dest: self.tree }
        } else {
            FaninParent::Node {
                id: FaninNodeId {
                    tree: self.tree,
                    level: self.level - 1,
                    index: self.index / 2,
                },
                input: self.index % 2,
            }
        }
    }

    /// Flat index within the whole network, `0..size.total_fanin_nodes()`.
    #[must_use]
    pub fn flat_index(self, size: MotSize) -> usize {
        debug_assert!(self.is_valid(size), "invalid fanin node {self}");
        self.tree * size.fanout_nodes_per_tree() + ((1usize << self.level) - 1) + self.index
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    #[must_use]
    pub fn from_flat_index(size: MotSize, flat: usize) -> Self {
        assert!(
            flat < size.total_fanin_nodes(),
            "flat fanin index {flat} out of range"
        );
        let per_tree = size.fanout_nodes_per_tree();
        let tree = flat / per_tree;
        let within = flat % per_tree;
        let level = usize::BITS - 1 - (within + 1).leading_zeros();
        let index = within + 1 - (1usize << level);
        FaninNodeId { tree, level, index }
    }

    /// Enumerates every fanin node of `size`'s network in flat-index order.
    pub fn all(size: MotSize) -> impl Iterator<Item = FaninNodeId> {
        (0..size.total_fanin_nodes()).map(move |flat| FaninNodeId::from_flat_index(size, flat))
    }
}

impl fmt::Display for FaninNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fi[d{}:{}.{}]", self.tree, self.level, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size8() -> MotSize {
        MotSize::new(8).unwrap()
    }

    #[test]
    fn output_port_round_trips() {
        for port in OutputPort::BOTH {
            assert_eq!(OutputPort::from_index(port.index()), port);
        }
        assert_eq!(OutputPort::Top.to_string(), "top");
        assert_eq!(OutputPort::Bottom.to_string(), "bottom");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn output_port_rejects_bad_index() {
        let _ = OutputPort::from_index(2);
    }

    #[test]
    fn root_spans_whole_network() {
        let root = FanoutNodeId::root(3);
        assert_eq!(root.dest_span(size8()), (0, 8));
        assert_eq!(root.port_span(size8(), OutputPort::Top), (0, 4));
        assert_eq!(root.port_span(size8(), OutputPort::Bottom), (4, 8));
        assert!(!root.is_leaf_level(size8()));
    }

    #[test]
    fn fanout_children_chain_to_fanin_leaf() {
        let size = size8();
        let root = FanoutNodeId::root(5);
        let FanoutChild::Node(mid) = root.child(size, OutputPort::Bottom) else {
            panic!("root child should be a node");
        };
        assert_eq!(
            mid,
            FanoutNodeId {
                tree: 5,
                level: 1,
                index: 1
            }
        );
        let FanoutChild::Node(leaf) = mid.child(size, OutputPort::Top) else {
            panic!("mid child should be a node");
        };
        assert_eq!(
            leaf,
            FanoutNodeId {
                tree: 5,
                level: 2,
                index: 2
            }
        );
        assert!(leaf.is_leaf_level(size));
        assert_eq!(
            leaf.child(size, OutputPort::Bottom),
            FanoutChild::FaninLeaf { dest: 5, source: 5 }
        );
        assert_eq!(
            leaf.child(size, OutputPort::Top),
            FanoutChild::FaninLeaf { dest: 4, source: 5 }
        );
    }

    #[test]
    fn every_destination_reachable_by_unique_leaf_port() {
        let size = size8();
        for source in 0..8 {
            let mut seen = [false; 8];
            for node in FanoutNodeId::all(size).filter(|n| n.tree == source) {
                if node.is_leaf_level(size) {
                    for port in OutputPort::BOTH {
                        let FanoutChild::FaninLeaf { dest, source: s } = node.child(size, port)
                        else {
                            panic!("leaf child must be a fanin leaf");
                        };
                        assert_eq!(s, source);
                        assert!(!seen[dest], "destination {dest} reached twice");
                        seen[dest] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn fanin_leaf_for_source_pairs_adjacent_sources() {
        let size = size8();
        let (node, input) = FaninNodeId::leaf_for_source(size, 3, 6);
        assert_eq!(
            node,
            FaninNodeId {
                tree: 3,
                level: 2,
                index: 3
            }
        );
        assert_eq!(input, 0);
        let (node, input) = FaninNodeId::leaf_for_source(size, 3, 7);
        assert_eq!(
            node,
            FaninNodeId {
                tree: 3,
                level: 2,
                index: 3
            }
        );
        assert_eq!(input, 1);
    }

    #[test]
    fn fanin_parent_chain_reaches_sink() {
        let size = size8();
        let (mut node, _) = FaninNodeId::leaf_for_source(size, 2, 5);
        let mut hops = 0;
        loop {
            match node.parent(size) {
                FaninParent::Node { id, input } => {
                    assert!(input < 2);
                    node = id;
                    hops += 1;
                }
                FaninParent::Sink { dest } => {
                    assert_eq!(dest, 2);
                    break;
                }
            }
        }
        assert_eq!(hops, 2); // levels 2 → 1 → 0 → sink
    }

    #[test]
    fn fanin_source_span_funnels() {
        let size = size8();
        let (leaf, _) = FaninNodeId::leaf_for_source(size, 0, 4);
        assert_eq!(leaf.source_span(size), (4, 6));
        assert_eq!(FaninNodeId::root(0).source_span(size), (0, 8));
    }

    #[test]
    fn flat_index_is_a_bijection() {
        let size = size8();
        for flat in 0..size.total_fanout_nodes() {
            let id = FanoutNodeId::from_flat_index(size, flat);
            assert!(id.is_valid(size));
            assert_eq!(id.flat_index(size), flat);
        }
        for flat in 0..size.total_fanin_nodes() {
            let id = FaninNodeId::from_flat_index(size, flat);
            assert!(id.is_valid(size));
            assert_eq!(id.flat_index(size), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_bounds_checked() {
        let _ = FanoutNodeId::from_flat_index(size8(), 56);
    }

    #[test]
    fn all_enumerates_each_node_once() {
        let size = size8();
        let nodes: Vec<FanoutNodeId> = FanoutNodeId::all(size).collect();
        assert_eq!(nodes.len(), 56);
        let mut sorted = nodes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 56);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            FanoutNodeId {
                tree: 2,
                level: 1,
                index: 0
            }
            .to_string(),
            "fo[s2:1.0]"
        );
        assert_eq!(
            FaninNodeId {
                tree: 4,
                level: 2,
                index: 3
            }
            .to_string(),
            "fi[d4:2.3]"
        );
    }

    #[test]
    fn flat_roundtrip_all_sizes() {
        for levels in 1u32..7 {
            let size = MotSize::new(1usize << levels).unwrap();
            for flat in 0..size.total_fanout_nodes() {
                let id = FanoutNodeId::from_flat_index(size, flat);
                assert_eq!(id.flat_index(size), flat);
                let fid = FaninNodeId::from_flat_index(size, flat);
                assert_eq!(fid.flat_index(size), flat);
            }
        }
    }

    #[test]
    fn port_spans_partition_dest_span() {
        for levels in 1u32..7 {
            let size = MotSize::new(1usize << levels).unwrap();
            for flat in 0..size.total_fanout_nodes() {
                let id = FanoutNodeId::from_flat_index(size, flat);
                let (low, high) = id.dest_span(size);
                let (tlow, thigh) = id.port_span(size, OutputPort::Top);
                let (blow, bhigh) = id.port_span(size, OutputPort::Bottom);
                assert_eq!(tlow, low);
                assert_eq!(thigh, blow);
                assert_eq!(bhigh, high);
            }
        }
    }
}
