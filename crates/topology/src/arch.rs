//! The paper's network architectures and speculation maps.
//!
//! §3 of the paper defines five parallel-multicast networks plus the serial
//! baseline. An [`Architecture`] names one of the six; a [`SpeculationMap`]
//! says, per fanout level, whether its nodes are speculative. Together they
//! determine the [`FanoutKind`] of every fanout node and the packet header's
//! address-field size.
//!
//! Hybrid placement follows the figures: Fig 3(b) makes the 8×8 root level
//! speculative; Fig 3(d)'s 16×16 hybrid alternates speculative and
//! non-speculative levels starting speculative at the root. We generalize to
//! any depth as "alternate starting speculative, but the leaf level is
//! always non-speculative" — which reproduces both figures and the §5.2(d)
//! address-bit table exactly.

use std::fmt;

use asynoc_packet::coding;

use crate::error::TopologyError;
use crate::ids::FanoutNodeId;
use crate::size::MotSize;

/// The behavioral variety of a fanout node (paper §4 plus the baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FanoutKind {
    /// The unicast-only baseline node of Horak et al. (paper §2).
    Baseline,
    /// Unoptimized non-speculative multicast node (§4(b)): full route
    /// computation, replication, and throttling.
    NonSpeculative,
    /// Unoptimized speculative node (§4(a)): always broadcasts, C-element
    /// acknowledge across both outputs.
    Speculative,
    /// Performance-optimized non-speculative node (§4(d)): header
    /// pre-allocates the channel, body/tail flits fast-forward.
    OptNonSpeculative,
    /// Power-optimized speculative node (§4(c)): header and tail broadcast,
    /// body flits follow the header's actual route.
    OptSpeculative,
}

impl FanoutKind {
    /// Returns `true` for the two speculative (always-broadcast-header)
    /// kinds.
    #[must_use]
    pub const fn is_speculative(self) -> bool {
        matches!(self, FanoutKind::Speculative | FanoutKind::OptSpeculative)
    }

    /// Returns `true` for kinds carrying the header/tail protocol
    /// optimizations of §4(c)/(d).
    #[must_use]
    pub const fn is_optimized(self) -> bool {
        matches!(
            self,
            FanoutKind::OptNonSpeculative | FanoutKind::OptSpeculative
        )
    }

    /// All five kinds, in declaration order.
    pub const ALL: [FanoutKind; 5] = [
        FanoutKind::Baseline,
        FanoutKind::NonSpeculative,
        FanoutKind::Speculative,
        FanoutKind::OptNonSpeculative,
        FanoutKind::OptSpeculative,
    ];

    /// The canonical short token used by speculation-map text forms
    /// (`base`, `ns`, `sp`, `ons`, `osp`).
    #[must_use]
    pub const fn token(self) -> &'static str {
        match self {
            FanoutKind::Baseline => "base",
            FanoutKind::NonSpeculative => "ns",
            FanoutKind::Speculative => "sp",
            FanoutKind::OptNonSpeculative => "ons",
            FanoutKind::OptSpeculative => "osp",
        }
    }

    /// Parses a kind token: the canonical short form ([`token`](Self::token))
    /// or the long [`Display`](fmt::Display) name, case-insensitively.
    #[must_use]
    pub fn parse_token(s: &str) -> Option<FanoutKind> {
        let lowered = s.to_ascii_lowercase();
        FanoutKind::ALL
            .into_iter()
            .find(|kind| kind.token() == lowered || kind.to_string() == lowered)
    }
}

impl fmt::Display for FanoutKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FanoutKind::Baseline => "baseline",
            FanoutKind::NonSpeculative => "non-speculative",
            FanoutKind::Speculative => "speculative",
            FanoutKind::OptNonSpeculative => "opt-non-speculative",
            FanoutKind::OptSpeculative => "opt-speculative",
        })
    }
}

/// Per-level speculation flags for one network size.
///
/// # Examples
///
/// ```
/// use asynoc_topology::{MotSize, SpeculationMap};
///
/// let size = MotSize::new(8)?;
/// let hybrid = SpeculationMap::hybrid(size);
/// assert_eq!(hybrid.flags(), &[true, false, false]);
/// assert_eq!(hybrid.non_speculative_nodes(), 6);
/// # Ok::<(), asynoc_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpeculationMap {
    size: MotSize,
    flags: Vec<bool>,
}

impl SpeculationMap {
    /// A fully non-speculative map.
    #[must_use]
    pub fn non_speculative(size: MotSize) -> Self {
        SpeculationMap {
            size,
            flags: vec![false; size.levels() as usize],
        }
    }

    /// The canonical hybrid map: levels alternate speculative /
    /// non-speculative starting speculative at the root; the leaf level is
    /// forced non-speculative.
    #[must_use]
    pub fn hybrid(size: MotSize) -> Self {
        let levels = size.levels() as usize;
        let flags = (0..levels)
            .map(|level| level % 2 == 0 && level + 1 != levels)
            .collect();
        SpeculationMap { size, flags }
    }

    /// The almost-fully-speculative map: every level speculative except the
    /// leaf level (the fanin network cannot throttle misrouted packets).
    #[must_use]
    pub fn all_speculative(size: MotSize) -> Self {
        let levels = size.levels() as usize;
        let flags = (0..levels).map(|level| level + 1 != levels).collect();
        SpeculationMap { size, flags }
    }

    /// A custom map from explicit per-level flags.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::LevelCountMismatch`] if `flags.len()` does
    /// not equal the tree depth, or [`TopologyError::SpeculativeLeafLevel`]
    /// if the leaf level is marked speculative.
    pub fn custom(size: MotSize, flags: Vec<bool>) -> Result<Self, TopologyError> {
        let required = size.levels() as usize;
        if flags.len() != required {
            return Err(TopologyError::LevelCountMismatch {
                provided: flags.len(),
                required,
            });
        }
        if flags[required - 1] {
            return Err(TopologyError::SpeculativeLeafLevel);
        }
        Ok(SpeculationMap { size, flags })
    }

    /// The network size this map describes.
    #[must_use]
    pub fn size(&self) -> MotSize {
        self.size
    }

    /// The per-level flags (`true` = speculative), root first.
    #[must_use]
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Returns `true` if level `level`'s nodes are speculative.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn is_speculative_level(&self, level: u32) -> bool {
        self.flags[level as usize]
    }

    /// Returns `true` if any level is speculative.
    #[must_use]
    pub fn has_speculation(&self) -> bool {
        self.flags.iter().any(|&f| f)
    }

    /// Number of non-speculative fanout nodes per tree.
    #[must_use]
    pub fn non_speculative_nodes(&self) -> usize {
        coding::non_speculative_node_count(self.size.n(), &self.flags)
    }

    /// Number of speculative fanout nodes per tree.
    #[must_use]
    pub fn speculative_nodes(&self) -> usize {
        self.size.fanout_nodes_per_tree() - self.non_speculative_nodes()
    }

    /// Address bits a parallel-multicast header needs under this map.
    #[must_use]
    pub fn address_bits(&self) -> usize {
        coding::network_address_bits(self.size.n(), &self.flags)
    }
}

/// The six evaluated network configurations (paper §3, "target parallel
/// multicast networks", plus the serial baseline of §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Serial multicast: the unmodified unicast network; multicasts are
    /// injected as trains of unicast clones.
    Baseline,
    /// Tree-based parallel multicast with unoptimized non-speculative nodes
    /// everywhere.
    BasicNonSpeculative,
    /// Local speculation in a hybrid network of unoptimized nodes.
    BasicHybridSpeculative,
    /// Hybrid network of protocol-optimized nodes.
    OptHybridSpeculative,
    /// Fully non-speculative network of optimized nodes.
    OptNonSpeculative,
    /// Almost fully speculative network of optimized nodes (leaf level
    /// non-speculative).
    OptAllSpeculative,
}

impl Architecture {
    /// All six configurations, in the paper's presentation order.
    pub const ALL: [Architecture; 6] = [
        Architecture::Baseline,
        Architecture::BasicNonSpeculative,
        Architecture::BasicHybridSpeculative,
        Architecture::OptHybridSpeculative,
        Architecture::OptNonSpeculative,
        Architecture::OptAllSpeculative,
    ];

    /// The contribution-trajectory case study of §5.2(b).
    pub const CONTRIBUTION_TRAJECTORY: [Architecture; 4] = [
        Architecture::Baseline,
        Architecture::BasicNonSpeculative,
        Architecture::BasicHybridSpeculative,
        Architecture::OptHybridSpeculative,
    ];

    /// The design-space-exploration case study of §5.2(c).
    pub const DESIGN_SPACE: [Architecture; 3] = [
        Architecture::OptNonSpeculative,
        Architecture::OptHybridSpeculative,
        Architecture::OptAllSpeculative,
    ];

    /// Returns `true` if multicasts must be serialized into unicast clones
    /// at the source (the baseline network cannot replicate).
    #[must_use]
    pub const fn serializes_multicast(self) -> bool {
        matches!(self, Architecture::Baseline)
    }

    /// Returns `true` if the architecture uses the §4(c)/(d) protocol
    /// optimizations.
    #[must_use]
    pub const fn is_optimized(self) -> bool {
        matches!(
            self,
            Architecture::OptHybridSpeculative
                | Architecture::OptNonSpeculative
                | Architecture::OptAllSpeculative
        )
    }

    /// The speculation map this architecture uses at the given size.
    #[must_use]
    pub fn speculation_map(self, size: MotSize) -> SpeculationMap {
        match self {
            Architecture::Baseline
            | Architecture::BasicNonSpeculative
            | Architecture::OptNonSpeculative => SpeculationMap::non_speculative(size),
            Architecture::BasicHybridSpeculative | Architecture::OptHybridSpeculative => {
                SpeculationMap::hybrid(size)
            }
            Architecture::OptAllSpeculative => SpeculationMap::all_speculative(size),
        }
    }

    /// The node kind used at fanout level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for `size`.
    #[must_use]
    pub fn fanout_kind(self, size: MotSize, level: u32) -> FanoutKind {
        assert!(level < size.levels(), "level {level} out of range");
        let speculative = self.speculation_map(size).is_speculative_level(level);
        match (self, speculative) {
            (Architecture::Baseline, _) => FanoutKind::Baseline,
            (Architecture::BasicNonSpeculative | Architecture::BasicHybridSpeculative, false) => {
                FanoutKind::NonSpeculative
            }
            (Architecture::BasicNonSpeculative | Architecture::BasicHybridSpeculative, true) => {
                FanoutKind::Speculative
            }
            (_, false) => FanoutKind::OptNonSpeculative,
            (_, true) => FanoutKind::OptSpeculative,
        }
    }

    /// Address bits per packet header for this architecture at `size`
    /// (reproduces the §5.2(d) comparison).
    #[must_use]
    pub fn address_bits(self, size: MotSize) -> usize {
        if self.serializes_multicast() {
            coding::baseline_address_bits(size.n())
        } else {
            self.speculation_map(size).address_bits()
        }
    }
}

/// The complete per-level node-kind assignment of one network — either a
/// canonical [`Architecture`] or a custom speculation placement (the wider
/// design space the paper sketches for 16×16 in Fig 3(d)).
///
/// # Examples
///
/// ```
/// use asynoc_topology::{FanoutKind, MotSize, NodePlan, SpeculationMap};
///
/// let size = MotSize::new(8)?;
/// // Mid-level-only speculation with optimized nodes: not one of the
/// // paper's three canonical points, but a legal design.
/// let map = SpeculationMap::custom(size, vec![false, true, false])?;
/// let plan = NodePlan::from_speculation(&map, true);
/// assert_eq!(plan.kind(1), FanoutKind::OptSpeculative);
/// assert_eq!(plan.address_bits(), 10);
/// # Ok::<(), asynoc_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodePlan {
    size: MotSize,
    kinds: Vec<FanoutKind>,
    /// Flat-indexed per-node kinds, present only when a speculation map
    /// carries per-node overrides; `None` means every node of a level uses
    /// the level's kind.
    node_kinds: Option<Vec<FanoutKind>>,
    serializes_multicast: bool,
}

impl NodePlan {
    /// The plan of one of the paper's six canonical networks.
    #[must_use]
    pub fn for_architecture(architecture: Architecture, size: MotSize) -> Self {
        NodePlan {
            size,
            kinds: (0..size.levels())
                .map(|level| architecture.fanout_kind(size, level))
                .collect(),
            node_kinds: None,
            serializes_multicast: architecture.serializes_multicast(),
        }
    }

    /// A plan with explicit per-node kinds (built by
    /// [`SpecMap::node_plan`](crate::SpecMap::node_plan); callers normally
    /// go through a validated speculation map rather than this).
    pub(crate) fn per_node(
        size: MotSize,
        kinds: Vec<FanoutKind>,
        node_kinds: Option<Vec<FanoutKind>>,
        serializes_multicast: bool,
    ) -> Self {
        NodePlan {
            size,
            kinds,
            node_kinds,
            serializes_multicast,
        }
    }

    /// A custom plan from a speculation map: speculative levels get
    /// (optionally optimized) speculative nodes, the rest non-speculative
    /// ones.
    #[must_use]
    pub fn from_speculation(map: &SpeculationMap, optimized: bool) -> Self {
        let kinds = map
            .flags()
            .iter()
            .map(|&speculative| match (speculative, optimized) {
                (true, true) => FanoutKind::OptSpeculative,
                (true, false) => FanoutKind::Speculative,
                (false, true) => FanoutKind::OptNonSpeculative,
                (false, false) => FanoutKind::NonSpeculative,
            })
            .collect();
        NodePlan {
            size: map.size(),
            kinds,
            node_kinds: None,
            serializes_multicast: false,
        }
    }

    /// The network size the plan describes.
    #[must_use]
    pub fn size(&self) -> MotSize {
        self.size
    }

    /// The node kind at fanout level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn kind(&self, level: u32) -> FanoutKind {
        self.kinds[level as usize]
    }

    /// All per-level kinds, root first. When the plan carries per-node
    /// overrides this is the per-level *base* assignment;
    /// [`kind_at`](Self::kind_at) is authoritative for individual nodes.
    #[must_use]
    pub fn kinds(&self) -> &[FanoutKind] {
        &self.kinds
    }

    /// The kind of one specific fanout node. For plans without per-node
    /// overrides this equals [`kind`](Self::kind) of the node's level.
    ///
    /// # Panics
    ///
    /// Panics if the node is invalid for the plan's size.
    #[must_use]
    pub fn kind_at(&self, node: FanoutNodeId) -> FanoutKind {
        match &self.node_kinds {
            Some(per_node) => per_node[node.flat_index(self.size)],
            None => self.kinds[node.level as usize],
        }
    }

    /// Returns `true` if the plan carries per-node overrides (some node's
    /// kind differs from its level's base kind).
    #[must_use]
    pub fn has_node_overrides(&self) -> bool {
        self.node_kinds.is_some()
    }

    /// Returns `true` if multicasts must be serialized into unicast clones
    /// at the source.
    #[must_use]
    pub fn serializes_multicast(&self) -> bool {
        self.serializes_multicast
    }

    /// Per-level speculation flags implied by the kinds.
    #[must_use]
    pub fn speculative_levels(&self) -> Vec<bool> {
        self.kinds.iter().map(|k| k.is_speculative()).collect()
    }

    /// Address bits per packet header under this plan.
    ///
    /// With per-node overrides, trees may differ in how many symbol-obeying
    /// nodes they contain; the header format is shared by every source, so
    /// the width is the maximum over trees (2 bits per non-speculative
    /// node, as in §5.2(d)).
    #[must_use]
    pub fn address_bits(&self) -> usize {
        if self.serializes_multicast {
            return asynoc_packet::coding::baseline_address_bits(self.size.n());
        }
        match &self.node_kinds {
            None => asynoc_packet::coding::network_address_bits(
                self.size.n(),
                &self.speculative_levels(),
            ),
            Some(per_node) => {
                let per_tree = self.size.fanout_nodes_per_tree();
                (0..self.size.n())
                    .map(|tree| {
                        2 * per_node[tree * per_tree..(tree + 1) * per_tree]
                            .iter()
                            .filter(|kind| !kind.is_speculative())
                            .count()
                    })
                    .max()
                    .unwrap_or(0)
            }
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Architecture::Baseline => "Baseline",
            Architecture::BasicNonSpeculative => "BasicNonSpeculative",
            Architecture::BasicHybridSpeculative => "BasicHybridSpeculative",
            Architecture::OptHybridSpeculative => "OptHybridSpeculative",
            Architecture::OptNonSpeculative => "OptNonSpeculative",
            Architecture::OptAllSpeculative => "OptAllSpeculative",
        })
    }
}

/// Error parsing an [`Architecture`] name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArchitectureError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown architecture {:?} (expected one of: Baseline, BasicNonSpeculative, \
             BasicHybridSpeculative, OptHybridSpeculative, OptNonSpeculative, OptAllSpeculative)",
            self.input
        )
    }
}

impl std::error::Error for ParseArchitectureError {}

impl std::str::FromStr for Architecture {
    type Err = ParseArchitectureError;

    /// Parses the paper's architecture names, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        Architecture::ALL
            .into_iter()
            .find(|arch| arch.to_string().to_ascii_lowercase() == lowered)
            .ok_or_else(|| ParseArchitectureError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(n: usize) -> MotSize {
        MotSize::new(n).unwrap()
    }

    #[test]
    fn hybrid_map_matches_fig3b_and_fig3d() {
        assert_eq!(
            SpeculationMap::hybrid(size(8)).flags(),
            &[true, false, false]
        );
        assert_eq!(
            SpeculationMap::hybrid(size(16)).flags(),
            &[true, false, true, false]
        );
    }

    #[test]
    fn all_speculative_keeps_leaf_level_non_speculative() {
        assert_eq!(
            SpeculationMap::all_speculative(size(8)).flags(),
            &[true, true, false]
        );
        assert_eq!(
            SpeculationMap::all_speculative(size(16)).flags(),
            &[true, true, true, false]
        );
    }

    #[test]
    fn custom_map_validation() {
        assert!(SpeculationMap::custom(size(8), vec![false, true, false]).is_ok());
        assert_eq!(
            SpeculationMap::custom(size(8), vec![false, true]),
            Err(TopologyError::LevelCountMismatch {
                provided: 2,
                required: 3
            })
        );
        assert_eq!(
            SpeculationMap::custom(size(8), vec![false, false, true]),
            Err(TopologyError::SpeculativeLeafLevel)
        );
    }

    #[test]
    fn node_counting() {
        let hybrid = SpeculationMap::hybrid(size(8));
        assert_eq!(hybrid.non_speculative_nodes(), 6);
        assert_eq!(hybrid.speculative_nodes(), 1);
        assert!(hybrid.has_speculation());
        let nonspec = SpeculationMap::non_speculative(size(8));
        assert!(!nonspec.has_speculation());
        assert_eq!(nonspec.speculative_nodes(), 0);
    }

    #[test]
    fn paper_address_bit_table() {
        // §5.2(d): 8×8 → 3/14/12/8; 16×16 → 4/30/20/16.
        let s8 = size(8);
        assert_eq!(Architecture::Baseline.address_bits(s8), 3);
        assert_eq!(Architecture::BasicNonSpeculative.address_bits(s8), 14);
        assert_eq!(Architecture::OptNonSpeculative.address_bits(s8), 14);
        assert_eq!(Architecture::BasicHybridSpeculative.address_bits(s8), 12);
        assert_eq!(Architecture::OptHybridSpeculative.address_bits(s8), 12);
        assert_eq!(Architecture::OptAllSpeculative.address_bits(s8), 8);
        let s16 = size(16);
        assert_eq!(Architecture::Baseline.address_bits(s16), 4);
        assert_eq!(Architecture::OptNonSpeculative.address_bits(s16), 30);
        assert_eq!(Architecture::OptHybridSpeculative.address_bits(s16), 20);
        assert_eq!(Architecture::OptAllSpeculative.address_bits(s16), 16);
    }

    #[test]
    fn fanout_kinds_per_architecture_8x8() {
        let s = size(8);
        let kinds = |arch: Architecture| -> Vec<FanoutKind> {
            (0..3).map(|l| arch.fanout_kind(s, l)).collect()
        };
        assert_eq!(kinds(Architecture::Baseline), vec![FanoutKind::Baseline; 3]);
        assert_eq!(
            kinds(Architecture::BasicNonSpeculative),
            vec![FanoutKind::NonSpeculative; 3]
        );
        assert_eq!(
            kinds(Architecture::BasicHybridSpeculative),
            vec![
                FanoutKind::Speculative,
                FanoutKind::NonSpeculative,
                FanoutKind::NonSpeculative
            ]
        );
        assert_eq!(
            kinds(Architecture::OptHybridSpeculative),
            vec![
                FanoutKind::OptSpeculative,
                FanoutKind::OptNonSpeculative,
                FanoutKind::OptNonSpeculative
            ]
        );
        assert_eq!(
            kinds(Architecture::OptNonSpeculative),
            vec![FanoutKind::OptNonSpeculative; 3]
        );
        assert_eq!(
            kinds(Architecture::OptAllSpeculative),
            vec![
                FanoutKind::OptSpeculative,
                FanoutKind::OptSpeculative,
                FanoutKind::OptNonSpeculative
            ]
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(FanoutKind::Speculative.is_speculative());
        assert!(FanoutKind::OptSpeculative.is_speculative());
        assert!(!FanoutKind::NonSpeculative.is_speculative());
        assert!(FanoutKind::OptNonSpeculative.is_optimized());
        assert!(!FanoutKind::Baseline.is_optimized());
    }

    #[test]
    fn architecture_groups() {
        assert_eq!(Architecture::ALL.len(), 6);
        assert_eq!(Architecture::CONTRIBUTION_TRAJECTORY.len(), 4);
        assert_eq!(Architecture::DESIGN_SPACE.len(), 3);
        assert!(Architecture::Baseline.serializes_multicast());
        assert!(!Architecture::OptHybridSpeculative.serializes_multicast());
        assert!(Architecture::OptAllSpeculative.is_optimized());
        assert!(!Architecture::BasicHybridSpeculative.is_optimized());
    }

    #[test]
    fn plan_for_architecture_matches_fanout_kinds() {
        let s = size(8);
        for arch in Architecture::ALL {
            let plan = NodePlan::for_architecture(arch, s);
            for level in 0..3 {
                assert_eq!(
                    plan.kind(level),
                    arch.fanout_kind(s, level),
                    "{arch} level {level}"
                );
            }
            assert_eq!(plan.serializes_multicast(), arch.serializes_multicast());
            assert_eq!(plan.address_bits(), arch.address_bits(s), "{arch}");
        }
    }

    #[test]
    fn plan_from_custom_speculation() {
        let s = size(8);
        let map = SpeculationMap::custom(s, vec![false, true, false]).unwrap();
        let optimized = NodePlan::from_speculation(&map, true);
        assert_eq!(
            optimized.kinds(),
            &[
                FanoutKind::OptNonSpeculative,
                FanoutKind::OptSpeculative,
                FanoutKind::OptNonSpeculative
            ]
        );
        assert_eq!(optimized.address_bits(), 10); // 5 non-spec nodes x 2 bits
        assert!(!optimized.serializes_multicast());
        let basic = NodePlan::from_speculation(&map, false);
        assert_eq!(
            basic.kinds(),
            &[
                FanoutKind::NonSpeculative,
                FanoutKind::Speculative,
                FanoutKind::NonSpeculative
            ]
        );
        assert_eq!(basic.speculative_levels(), vec![false, true, false]);
    }

    #[test]
    fn plan_size_accessor() {
        let plan = NodePlan::for_architecture(Architecture::Baseline, size(16));
        assert_eq!(plan.size().n(), 16);
        assert_eq!(plan.kinds().len(), 4);
    }

    #[test]
    fn architecture_from_str_round_trips() {
        for arch in Architecture::ALL {
            assert_eq!(arch.to_string().parse::<Architecture>(), Ok(arch));
            assert_eq!(
                arch.to_string().to_lowercase().parse::<Architecture>(),
                Ok(arch)
            );
        }
        let err = "NoSuchNetwork".parse::<Architecture>().unwrap_err();
        assert!(err.to_string().contains("NoSuchNetwork"));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(
            Architecture::OptHybridSpeculative.to_string(),
            "OptHybridSpeculative"
        );
        assert_eq!(FanoutKind::OptSpeculative.to_string(), "opt-speculative");
    }
}
