//! Validated network sizes and node counting.

use std::fmt;

use crate::error::TopologyError;

/// A validated N×N MoT network size: N sources, N destinations, N a power
/// of two in `2..=64`.
///
/// The upper bound matches [`asynoc_packet::DestSet`]'s 64-destination
/// capacity; the paper evaluates 8×8 and projects 16×16.
///
/// # Examples
///
/// ```
/// use asynoc_topology::MotSize;
///
/// let size = MotSize::new(8)?;
/// assert_eq!(size.n(), 8);
/// assert_eq!(size.levels(), 3);
/// assert_eq!(size.fanout_nodes_per_tree(), 7);
/// assert_eq!(size.total_fanout_nodes(), 56);
/// # Ok::<(), asynoc_topology::TopologyError>(())
/// ```
///
/// [`asynoc_packet::DestSet`]: asynoc_packet::DestSet
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MotSize {
    n: usize,
}

impl MotSize {
    /// Validates a network size.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidSize`] unless `n` is a power of two
    /// in `2..=64`.
    pub fn new(n: usize) -> Result<Self, TopologyError> {
        if (2..=64).contains(&n) && n.is_power_of_two() {
            Ok(MotSize { n })
        } else {
            Err(TopologyError::InvalidSize { requested: n })
        }
    }

    /// Number of sources (= destinations).
    #[must_use]
    pub const fn n(self) -> usize {
        self.n
    }

    /// Tree depth: `log2(n)` fanout (and fanin) levels.
    #[must_use]
    pub const fn levels(self) -> u32 {
        self.n.trailing_zeros()
    }

    /// Nodes in one binary tree: `n − 1`.
    #[must_use]
    pub const fn fanout_nodes_per_tree(self) -> usize {
        self.n - 1
    }

    /// Fanout nodes across all `n` source trees.
    #[must_use]
    pub const fn total_fanout_nodes(self) -> usize {
        self.n * (self.n - 1)
    }

    /// Fanin nodes across all `n` destination trees (same count by mirror
    /// symmetry).
    #[must_use]
    pub const fn total_fanin_nodes(self) -> usize {
        self.n * (self.n - 1)
    }

    /// Number of nodes at tree level `level` (root is level 0).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    #[must_use]
    pub fn nodes_at_level(self, level: u32) -> usize {
        assert!(level < self.levels(), "level {level} out of range");
        1usize << level
    }

    /// Validates a source index.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::SourceOutOfRange`] if `source >= n`.
    pub fn check_source(self, source: usize) -> Result<(), TopologyError> {
        if source < self.n {
            Ok(())
        } else {
            Err(TopologyError::SourceOutOfRange {
                source,
                size: self.n,
            })
        }
    }

    /// Validates a destination index.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DestinationOutOfRange`] if `dest >= n`.
    pub fn check_destination(self, dest: usize) -> Result<(), TopologyError> {
        if dest < self.n {
            Ok(())
        } else {
            Err(TopologyError::DestinationOutOfRange { dest, size: self.n })
        }
    }
}

impl fmt::Display for MotSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.n, self.n)
    }
}

impl TryFrom<usize> for MotSize {
    type Error = TopologyError;

    fn try_from(n: usize) -> Result<Self, TopologyError> {
        MotSize::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_powers_of_two_up_to_64() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let size = MotSize::new(n).expect("valid size");
            assert_eq!(size.n(), n);
            assert_eq!(1usize << size.levels(), n);
        }
    }

    #[test]
    fn rejects_invalid_sizes() {
        for n in [0usize, 1, 3, 6, 12, 65, 128] {
            assert_eq!(
                MotSize::new(n),
                Err(TopologyError::InvalidSize { requested: n })
            );
        }
    }

    #[test]
    fn node_counts_for_8x8() {
        let size = MotSize::new(8).unwrap();
        assert_eq!(size.levels(), 3);
        assert_eq!(size.fanout_nodes_per_tree(), 7);
        assert_eq!(size.total_fanout_nodes(), 56);
        assert_eq!(size.total_fanin_nodes(), 56);
        assert_eq!(size.nodes_at_level(0), 1);
        assert_eq!(size.nodes_at_level(1), 2);
        assert_eq!(size.nodes_at_level(2), 4);
    }

    #[test]
    fn node_counts_for_16x16() {
        let size = MotSize::new(16).unwrap();
        assert_eq!(size.levels(), 4);
        assert_eq!(size.fanout_nodes_per_tree(), 15);
        assert_eq!(size.total_fanout_nodes(), 240);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nodes_at_level_bounds_checked() {
        let _ = MotSize::new(8).unwrap().nodes_at_level(3);
    }

    #[test]
    fn index_validation() {
        let size = MotSize::new(8).unwrap();
        assert!(size.check_source(7).is_ok());
        assert!(size.check_destination(7).is_ok());
        assert!(matches!(
            size.check_source(8),
            Err(TopologyError::SourceOutOfRange { .. })
        ));
        assert!(matches!(
            size.check_destination(8),
            Err(TopologyError::DestinationOutOfRange { .. })
        ));
    }

    #[test]
    fn display_and_try_from() {
        let size = MotSize::try_from(16usize).unwrap();
        assert_eq!(size.to_string(), "16x16");
        assert!(MotSize::try_from(5usize).is_err());
    }
}
