//! Error types for topology construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while describing or validating an MoT network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested network size is not a supported power of two.
    InvalidSize {
        /// The rejected size.
        requested: usize,
    },
    /// A speculation map marked the leaf fanout level speculative, which the
    /// fanin network cannot throttle.
    SpeculativeLeafLevel,
    /// A speculation map's length does not match the tree depth.
    LevelCountMismatch {
        /// Flags supplied by the caller.
        provided: usize,
        /// Levels required by the network size.
        required: usize,
    },
    /// A destination index is outside the network.
    DestinationOutOfRange {
        /// The rejected destination.
        dest: usize,
        /// The network size.
        size: usize,
    },
    /// A source index is outside the network.
    SourceOutOfRange {
        /// The rejected source.
        source: usize,
        /// The network size.
        size: usize,
    },
    /// A packet was given an empty destination set.
    EmptyDestinationSet,
    /// A per-node speculation override names a fanout node that does not
    /// exist in the network.
    NodeOutOfRange {
        /// Source tree of the rejected node.
        tree: usize,
        /// Fanout level of the rejected node.
        level: u32,
        /// Index within the level of the rejected node.
        index: usize,
        /// The network size.
        size: usize,
    },
    /// A speculation map left a leaf-level fanout node speculative. Leaf
    /// nodes feed the fanin network directly, which cannot throttle
    /// misrouted packets, so every leaf node must obey its route symbol.
    NonThrottlingLeaf {
        /// Source tree of the offending leaf node.
        tree: usize,
        /// Index within the leaf level of the offending node.
        index: usize,
    },
    /// A speculation map mixed baseline (serial-multicast) nodes with
    /// parallel-multicast node kinds. The baseline node has no replication
    /// datapath, so it is only valid when every node in the network is
    /// baseline.
    MixedBaselineKind,
    /// A speculation-map text or JSON form could not be parsed.
    SpecMapSyntax {
        /// Human-readable description of the syntax problem.
        detail: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidSize { requested } => write!(
                f,
                "network size {requested} is not a power of two in 2..=64"
            ),
            TopologyError::SpeculativeLeafLevel => {
                write!(f, "leaf fanout level cannot be speculative")
            }
            TopologyError::LevelCountMismatch { provided, required } => write!(
                f,
                "speculation map has {provided} levels but the tree has {required}"
            ),
            TopologyError::DestinationOutOfRange { dest, size } => {
                write!(
                    f,
                    "destination {dest} out of range for {size}x{size} network"
                )
            }
            TopologyError::SourceOutOfRange { source, size } => {
                write!(f, "source {source} out of range for {size}x{size} network")
            }
            TopologyError::EmptyDestinationSet => write!(f, "destination set is empty"),
            TopologyError::NodeOutOfRange {
                tree,
                level,
                index,
                size,
            } => write!(
                f,
                "fanout node s{tree}:{level}.{index} out of range for {size}x{size} network"
            ),
            TopologyError::NonThrottlingLeaf { tree, index } => write!(
                f,
                "leaf fanout node {index} of tree {tree} is speculative; leaf nodes must \
                 obey route symbols because the fanin network cannot throttle"
            ),
            TopologyError::MixedBaselineKind => write!(
                f,
                "baseline (serial) nodes cannot be mixed with parallel-multicast node kinds"
            ),
            TopologyError::SpecMapSyntax { detail } => {
                write!(f, "invalid speculation map: {detail}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let messages = [
            TopologyError::InvalidSize { requested: 12 }.to_string(),
            TopologyError::SpeculativeLeafLevel.to_string(),
            TopologyError::LevelCountMismatch {
                provided: 2,
                required: 3,
            }
            .to_string(),
            TopologyError::DestinationOutOfRange { dest: 9, size: 8 }.to_string(),
            TopologyError::SourceOutOfRange { source: 9, size: 8 }.to_string(),
            TopologyError::EmptyDestinationSet.to_string(),
            TopologyError::NodeOutOfRange {
                tree: 0,
                level: 9,
                index: 0,
                size: 8,
            }
            .to_string(),
            TopologyError::NonThrottlingLeaf { tree: 1, index: 2 }.to_string(),
            TopologyError::MixedBaselineKind.to_string(),
            TopologyError::SpecMapSyntax {
                detail: "bad token".into(),
            }
            .to_string(),
        ];
        for msg in messages {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            TopologyError::SpeculativeLeafLevel,
            TopologyError::SpeculativeLeafLevel
        );
        assert_ne!(
            TopologyError::InvalidSize { requested: 3 },
            TopologyError::InvalidSize { requested: 5 }
        );
    }
}
