//! First-class speculation placement: per-level kinds plus per-node
//! overrides.
//!
//! The paper evaluates six hand-picked placements (the [`Architecture`]
//! presets); a [`SpecMap`] describes *any* legal placement, making
//! speculation a run dimension instead of a preset choice. A map is a
//! per-level base [`FanoutKind`] assignment (root first) plus a sparse set
//! of per-node overrides, validated against the fabric when built:
//!
//! - the per-level vector must match the tree depth,
//! - every leaf-level node must obey its route symbols (the fanin network
//!   cannot throttle a misrouted packet, §4 of the paper), and
//! - the serial baseline node kind cannot be mixed with parallel-multicast
//!   kinds (it has no replication datapath).
//!
//! Because route headers are purely structural — one 2-bit symbol slot per
//! `(level, index)` regardless of node kind, with speculative nodes simply
//! ignoring theirs — per-node overrides never change header layout, only
//! throttling behavior and the number of *used* address bits.
//!
//! Maps have a canonical text form accepted by the CLI's `--spec-map`:
//!
//! ```text
//! OptHybridSpeculative              # bare preset name
//! preset:OptHybridSpeculative       # explicit preset form
//! levels:osp,ons,ons                # per-level kinds, root first
//! levels:ons,ons,ons;node:0.0.0=osp # with per-node overrides
//! ```
//!
//! Kind tokens are `base`, `ns`, `sp`, `ons`, `osp` (long display names are
//! accepted too). [`fmt::Display`] renders the `levels:` form, which parses
//! back to an equal map.
//!
//! # Examples
//!
//! ```
//! use asynoc_topology::{Architecture, FanoutKind, MotSize, SpecMap};
//!
//! let size = MotSize::new(8)?;
//! let preset = SpecMap::preset(Architecture::OptHybridSpeculative, size);
//! assert_eq!(preset.to_string(), "levels:osp,ons,ons");
//! assert_eq!(preset.label(), Some(Architecture::OptHybridSpeculative));
//!
//! let custom = SpecMap::parse(size, "levels:ons,ons,ons;node:0.0.0=osp")?;
//! assert_eq!(custom.label(), None);
//! assert_eq!(custom.address_bits(), 14); // widest tree still all-obeying
//! # Ok::<(), asynoc_topology::TopologyError>(())
//! ```

use std::fmt;

use crate::arch::{Architecture, FanoutKind, NodePlan};
use crate::error::TopologyError;
use crate::ids::FanoutNodeId;
use crate::size::MotSize;

/// A validated speculation placement: per-level base kinds plus per-node
/// overrides. See the [module docs](self) for the text form and the
/// validation rules.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpecMap {
    size: MotSize,
    levels: Vec<FanoutKind>,
    /// Sorted by flat node index; never contains an entry equal to the
    /// node's level base kind, so structural equality is canonical.
    overrides: Vec<(FanoutNodeId, FanoutKind)>,
}

impl SpecMap {
    /// The map of one of the paper's six canonical networks.
    #[must_use]
    pub fn preset(architecture: Architecture, size: MotSize) -> Self {
        SpecMap {
            size,
            levels: (0..size.levels())
                .map(|level| architecture.fanout_kind(size, level))
                .collect(),
            overrides: Vec::new(),
        }
    }

    /// A map from explicit per-level kinds, root first.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::LevelCountMismatch`] if the vector length
    /// does not equal the tree depth,
    /// [`TopologyError::SpeculativeLeafLevel`] if the leaf level is
    /// speculative, or [`TopologyError::MixedBaselineKind`] if baseline
    /// nodes are mixed with multicast kinds.
    pub fn from_levels(size: MotSize, levels: Vec<FanoutKind>) -> Result<Self, TopologyError> {
        let required = size.levels() as usize;
        if levels.len() != required {
            return Err(TopologyError::LevelCountMismatch {
                provided: levels.len(),
                required,
            });
        }
        if levels[required - 1].is_speculative() {
            return Err(TopologyError::SpeculativeLeafLevel);
        }
        let baselines = levels
            .iter()
            .filter(|k| **k == FanoutKind::Baseline)
            .count();
        if baselines != 0 && baselines != required {
            return Err(TopologyError::MixedBaselineKind);
        }
        Ok(SpecMap {
            size,
            levels,
            overrides: Vec::new(),
        })
    }

    /// Returns the map with `node`'s kind overridden, keeping the map
    /// canonical (an override equal to the level's base kind is dropped).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if the node does not exist
    /// at this size, [`TopologyError::NonThrottlingLeaf`] if a leaf-level
    /// node would become speculative, or
    /// [`TopologyError::MixedBaselineKind`] if the override would mix
    /// baseline and multicast kinds.
    pub fn with_node(
        mut self,
        node: FanoutNodeId,
        kind: FanoutKind,
    ) -> Result<Self, TopologyError> {
        if !node.is_valid(self.size) {
            return Err(TopologyError::NodeOutOfRange {
                tree: node.tree,
                level: node.level,
                index: node.index,
                size: self.size.n(),
            });
        }
        if node.is_leaf_level(self.size) && kind.is_speculative() {
            return Err(TopologyError::NonThrottlingLeaf {
                tree: node.tree,
                index: node.index,
            });
        }
        let serial = self.serializes_multicast();
        if (kind == FanoutKind::Baseline) != serial {
            return Err(TopologyError::MixedBaselineKind);
        }
        let flat = node.flat_index(self.size);
        let slot = self
            .overrides
            .binary_search_by_key(&flat, |(id, _)| id.flat_index(self.size));
        if kind == self.levels[node.level as usize] {
            if let Ok(found) = slot {
                self.overrides.remove(found);
            }
        } else {
            match slot {
                Ok(found) => self.overrides[found].1 = kind,
                Err(insert_at) => self.overrides.insert(insert_at, (node, kind)),
            }
        }
        Ok(self)
    }

    /// Parses the canonical text form (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::SpecMapSyntax`] for malformed input, or any
    /// validation error of [`from_levels`](Self::from_levels) /
    /// [`with_node`](Self::with_node).
    pub fn parse(size: MotSize, input: &str) -> Result<Self, TopologyError> {
        let trimmed = input.trim();
        if let Ok(arch) = trimmed.parse::<Architecture>() {
            return Ok(SpecMap::preset(arch, size));
        }
        if let Some(name) = trimmed.strip_prefix("preset:") {
            let arch =
                name.trim()
                    .parse::<Architecture>()
                    .map_err(|e| TopologyError::SpecMapSyntax {
                        detail: e.to_string(),
                    })?;
            return Ok(SpecMap::preset(arch, size));
        }
        let mut segments = trimmed.split(';');
        let head = segments.next().unwrap_or_default().trim();
        let Some(level_list) = head.strip_prefix("levels:") else {
            return Err(TopologyError::SpecMapSyntax {
                detail: format!(
                    "expected a preset name, \"preset:<name>\", or \"levels:<kinds>\", got {head:?}"
                ),
            });
        };
        let levels = level_list
            .split(',')
            .map(|token| parse_kind(token.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut map = SpecMap::from_levels(size, levels)?;
        for segment in segments {
            let segment = segment.trim();
            let Some(assignment) = segment.strip_prefix("node:") else {
                return Err(TopologyError::SpecMapSyntax {
                    detail: format!(
                        "expected \"node:<tree>.<level>.<index>=<kind>\", got {segment:?}"
                    ),
                });
            };
            let (coords, kind_token) =
                assignment
                    .split_once('=')
                    .ok_or_else(|| TopologyError::SpecMapSyntax {
                        detail: format!("missing \"=<kind>\" in node override {segment:?}"),
                    })?;
            let parts: Vec<&str> = coords.split('.').collect();
            let [tree, level, index] = parts[..] else {
                return Err(TopologyError::SpecMapSyntax {
                    detail: format!(
                        "node coordinates must be <tree>.<level>.<index>, got {coords:?}"
                    ),
                });
            };
            let node = FanoutNodeId {
                tree: parse_coord(tree)?,
                level: parse_coord(level)? as u32,
                index: parse_coord(index)?,
            };
            map = map.with_node(node, parse_kind(kind_token.trim())?)?;
        }
        Ok(map)
    }

    /// The network size this map describes.
    #[must_use]
    pub fn size(&self) -> MotSize {
        self.size
    }

    /// The per-level base kinds, root first.
    #[must_use]
    pub fn level_kinds(&self) -> &[FanoutKind] {
        &self.levels
    }

    /// The per-node overrides, sorted by flat node index. Entries equal to
    /// the node's level base kind are never stored.
    #[must_use]
    pub fn overrides(&self) -> &[(FanoutNodeId, FanoutKind)] {
        &self.overrides
    }

    /// The effective kind of one fanout node.
    ///
    /// # Panics
    ///
    /// Panics if the node is invalid for the map's size.
    #[must_use]
    pub fn kind_of(&self, node: FanoutNodeId) -> FanoutKind {
        assert!(node.is_valid(self.size), "invalid fanout node {node}");
        self.overrides
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, kind)| *kind)
            .unwrap_or(self.levels[node.level as usize])
    }

    /// Returns `true` if multicasts must be serialized into unicast clones
    /// at the source (the all-baseline map; validation guarantees baseline
    /// is all-or-nothing).
    #[must_use]
    pub fn serializes_multicast(&self) -> bool {
        self.levels[0] == FanoutKind::Baseline
    }

    /// The canonical [`Architecture`] this map is exactly equal to, if any.
    #[must_use]
    pub fn label(&self) -> Option<Architecture> {
        if !self.overrides.is_empty() {
            return None;
        }
        Architecture::ALL
            .into_iter()
            .find(|arch| SpecMap::preset(*arch, self.size).levels == self.levels)
    }

    /// Address bits per packet header under this map (see
    /// [`NodePlan::address_bits`]).
    #[must_use]
    pub fn address_bits(&self) -> usize {
        self.node_plan().address_bits()
    }

    /// The per-node plan the fabric elaborates. For a preset map this is
    /// structurally equal to
    /// [`NodePlan::for_architecture`] of [`label`](Self::label), which is
    /// what makes preset↔map runs bit-identical.
    #[must_use]
    pub fn node_plan(&self) -> NodePlan {
        let serial = self.serializes_multicast();
        if self.overrides.is_empty() {
            return NodePlan::per_node(self.size, self.levels.clone(), None, serial);
        }
        let per_node = FanoutNodeId::all(self.size)
            .map(|node| self.kind_of(node))
            .collect();
        NodePlan::per_node(self.size, self.levels.clone(), Some(per_node), serial)
    }
}

impl fmt::Display for SpecMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("levels:")?;
        for (i, kind) in self.levels.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(kind.token())?;
        }
        for (node, kind) in &self.overrides {
            write!(
                f,
                ";node:{}.{}.{}={}",
                node.tree,
                node.level,
                node.index,
                kind.token()
            )?;
        }
        Ok(())
    }
}

fn parse_kind(token: &str) -> Result<FanoutKind, TopologyError> {
    FanoutKind::parse_token(token).ok_or_else(|| TopologyError::SpecMapSyntax {
        detail: format!("unknown node kind {token:?} (expected base, ns, sp, ons, or osp)"),
    })
}

fn parse_coord(text: &str) -> Result<usize, TopologyError> {
    text.trim()
        .parse::<usize>()
        .map_err(|_| TopologyError::SpecMapSyntax {
            detail: format!("node coordinate {text:?} is not a non-negative integer"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size8() -> MotSize {
        MotSize::new(8).unwrap()
    }

    fn node(tree: usize, level: u32, index: usize) -> FanoutNodeId {
        FanoutNodeId { tree, level, index }
    }

    #[test]
    fn presets_match_architecture_plans() {
        for arch in Architecture::ALL {
            let map = SpecMap::preset(arch, size8());
            assert_eq!(map.label(), Some(arch), "{arch}");
            assert_eq!(
                map.node_plan(),
                NodePlan::for_architecture(arch, size8()),
                "{arch}"
            );
            assert_eq!(map.address_bits(), arch.address_bits(size8()), "{arch}");
            assert_eq!(map.serializes_multicast(), arch.serializes_multicast());
        }
    }

    #[test]
    fn display_parse_round_trips() {
        for arch in Architecture::ALL {
            let map = SpecMap::preset(arch, size8());
            assert_eq!(SpecMap::parse(size8(), &map.to_string()), Ok(map));
        }
        let custom = SpecMap::preset(Architecture::OptNonSpeculative, size8())
            .with_node(node(3, 1, 1), FanoutKind::OptSpeculative)
            .unwrap();
        assert_eq!(custom.to_string(), "levels:ons,ons,ons;node:3.1.1=osp");
        assert_eq!(SpecMap::parse(size8(), &custom.to_string()), Ok(custom));
    }

    #[test]
    fn parse_accepts_preset_forms() {
        let expect = SpecMap::preset(Architecture::OptHybridSpeculative, size8());
        assert_eq!(
            SpecMap::parse(size8(), "OptHybridSpeculative"),
            Ok(expect.clone())
        );
        assert_eq!(
            SpecMap::parse(size8(), "preset:opthybridspeculative"),
            Ok(expect.clone())
        );
        assert_eq!(SpecMap::parse(size8(), "levels:osp,ons,ons"), Ok(expect));
    }

    #[test]
    fn parse_syntax_errors() {
        for bad in [
            "nonsense",
            "preset:NoSuchNetwork",
            "levels:osp,ons",
            "levels:xyz,ons,ons",
            "levels:ons,ons,ons;node:0.0=osp",
            "levels:ons,ons,ons;node:a.b.c=osp",
            "levels:ons,ons,ons;node:0.0.0",
            "levels:ons,ons,ons;tree:0.0.0=osp",
        ] {
            assert!(SpecMap::parse(size8(), bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn validation_rejects_wrong_level_count() {
        assert_eq!(
            SpecMap::from_levels(size8(), vec![FanoutKind::OptNonSpeculative; 2]),
            Err(TopologyError::LevelCountMismatch {
                provided: 2,
                required: 3
            })
        );
    }

    #[test]
    fn validation_rejects_speculative_leaf_level() {
        assert_eq!(
            SpecMap::from_levels(size8(), vec![FanoutKind::OptSpeculative; 3]),
            Err(TopologyError::SpeculativeLeafLevel)
        );
    }

    #[test]
    fn validation_rejects_out_of_range_node() {
        let map = SpecMap::preset(Architecture::OptNonSpeculative, size8());
        assert_eq!(
            map.with_node(node(8, 0, 0), FanoutKind::OptSpeculative),
            Err(TopologyError::NodeOutOfRange {
                tree: 8,
                level: 0,
                index: 0,
                size: 8
            })
        );
    }

    #[test]
    fn validation_rejects_speculative_leaf_node() {
        let map = SpecMap::preset(Architecture::OptNonSpeculative, size8());
        assert_eq!(
            map.with_node(node(0, 2, 3), FanoutKind::OptSpeculative),
            Err(TopologyError::NonThrottlingLeaf { tree: 0, index: 3 })
        );
    }

    #[test]
    fn validation_rejects_baseline_mixing() {
        assert_eq!(
            SpecMap::from_levels(
                size8(),
                vec![
                    FanoutKind::Baseline,
                    FanoutKind::OptNonSpeculative,
                    FanoutKind::OptNonSpeculative
                ]
            ),
            Err(TopologyError::MixedBaselineKind)
        );
        let serial = SpecMap::preset(Architecture::Baseline, size8());
        assert_eq!(
            serial.with_node(node(0, 0, 0), FanoutKind::OptSpeculative),
            Err(TopologyError::MixedBaselineKind)
        );
        let parallel = SpecMap::preset(Architecture::OptNonSpeculative, size8());
        assert_eq!(
            parallel.with_node(node(0, 0, 0), FanoutKind::Baseline),
            Err(TopologyError::MixedBaselineKind)
        );
    }

    #[test]
    fn overrides_are_canonical() {
        let base = SpecMap::preset(Architecture::OptNonSpeculative, size8());
        // Overriding to the level's base kind is a no-op.
        let same = base
            .clone()
            .with_node(node(2, 1, 0), FanoutKind::OptNonSpeculative)
            .unwrap();
        assert_eq!(same, base);
        // Overriding then restoring removes the entry again.
        let restored = base
            .clone()
            .with_node(node(2, 1, 0), FanoutKind::OptSpeculative)
            .unwrap()
            .with_node(node(2, 1, 0), FanoutKind::OptNonSpeculative)
            .unwrap();
        assert_eq!(restored, base);
        assert!(restored.overrides().is_empty());
    }

    #[test]
    fn kind_of_and_node_plan_respect_overrides() {
        let map = SpecMap::preset(Architecture::OptNonSpeculative, size8())
            .with_node(node(5, 0, 0), FanoutKind::OptSpeculative)
            .unwrap();
        assert_eq!(map.kind_of(node(5, 0, 0)), FanoutKind::OptSpeculative);
        assert_eq!(map.kind_of(node(4, 0, 0)), FanoutKind::OptNonSpeculative);
        assert_eq!(map.label(), None);
        let plan = map.node_plan();
        assert!(plan.has_node_overrides());
        assert_eq!(plan.kind_at(node(5, 0, 0)), FanoutKind::OptSpeculative);
        assert_eq!(plan.kind_at(node(5, 1, 0)), FanoutKind::OptNonSpeculative);
        assert_eq!(plan.kind_at(node(4, 0, 0)), FanoutKind::OptNonSpeculative);
        // Tree 5 drops to 6 obeying nodes (12 bits) but tree 0 still has 7
        // (14 bits); the shared header keeps the maximum.
        assert_eq!(map.address_bits(), 14);
    }

    #[test]
    fn address_bits_shrink_when_every_tree_speculates() {
        let mut map = SpecMap::preset(Architecture::OptNonSpeculative, size8());
        for tree in 0..8 {
            map = map
                .with_node(node(tree, 0, 0), FanoutKind::OptSpeculative)
                .unwrap();
        }
        // Every tree now matches the hybrid placement.
        assert_eq!(
            map.address_bits(),
            Architecture::OptHybridSpeculative.address_bits(size8())
        );
    }
}
