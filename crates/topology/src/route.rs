//! Source-routing encoders.
//!
//! The source computes every fanout node's routing symbol when it builds a
//! packet header. For a node whose destination span intersects the packet's
//! destination set, the symbol says which output half-spans are demanded
//! (`Top`/`Bottom`/`Both`); every other node keeps the default
//! [`RouteSymbol::Drop`] — and that default is precisely the throttling
//! information non-speculative nodes use to stop redundant speculative
//! copies.

use asynoc_packet::{BaselinePath, DestSet, RouteHeader, RouteSymbol};

use crate::error::TopologyError;
use crate::ids::FanoutNodeId;
use crate::size::MotSize;

/// Encodes the route header for a (multicast or unicast) packet from
/// `source` to `dests` in a parallel-multicast network.
///
/// The returned header has a symbol slot for every fanout node of the tree;
/// only nodes on the multicast tree carry non-`Drop` symbols.
///
/// # Errors
///
/// Returns an error if `dests` is empty or contains an index outside the
/// network, or if `source` is out of range.
///
/// # Examples
///
/// ```
/// use asynoc_packet::{DestSet, RouteSymbol};
/// use asynoc_topology::{multicast_route, MotSize};
///
/// let size = MotSize::new(8)?;
/// let dests: DestSet = [1usize, 6].into_iter().collect();
/// let header = multicast_route(size, 0, dests)?;
/// assert_eq!(header.symbol(0, 0), RouteSymbol::Both); // split at the root
/// assert_eq!(header.symbol(1, 0), RouteSymbol::Top);  // 1 is in 0..4 → top subtree
/// assert_eq!(header.symbol(1, 1), RouteSymbol::Bottom);
/// # Ok::<(), asynoc_topology::TopologyError>(())
/// ```
pub fn multicast_route(
    size: MotSize,
    source: usize,
    dests: DestSet,
) -> Result<RouteHeader, TopologyError> {
    let mut header = RouteHeader::for_tree(size.n());
    multicast_route_into(size, source, dests, &mut header)?;
    Ok(header)
}

/// In-place variant of [`multicast_route`]: rewrites `header` for the new
/// packet, reusing its symbol storage so steady-state routing performs no
/// heap allocation. `header` may come from any earlier route (any tree
/// size); it is reset to `size`'s tree first.
///
/// # Errors
///
/// Returns an error if `dests` is empty or contains an index outside the
/// network, or if `source` is out of range. `header` is only modified on
/// success.
pub fn multicast_route_into(
    size: MotSize,
    source: usize,
    dests: DestSet,
    header: &mut RouteHeader,
) -> Result<(), TopologyError> {
    size.check_source(source)?;
    if dests.is_empty() {
        return Err(TopologyError::EmptyDestinationSet);
    }
    if let Some(bad) = dests.iter().find(|&d| d >= size.n()) {
        return Err(TopologyError::DestinationOutOfRange {
            dest: bad,
            size: size.n(),
        });
    }

    header.reset_for_tree(size.n());
    for level in 0..size.levels() {
        for index in 0..size.nodes_at_level(level) {
            let node = FanoutNodeId {
                tree: source,
                level,
                index,
            };
            let (low, high) = node.dest_span(size);
            if !dests.intersects_range(low, high) {
                continue;
            }
            let mid = low + (high - low) / 2;
            let symbol = RouteSymbol::from_ports(
                dests.intersects_range(low, mid),
                dests.intersects_range(mid, high),
            );
            header.set(level, index, symbol);
        }
    }
    Ok(())
}

/// Encodes the baseline per-level turn bits for a unicast packet.
///
/// # Errors
///
/// Returns an error if `source` or `dest` is outside the network.
///
/// # Examples
///
/// ```
/// use asynoc_topology::{unicast_route, MotSize};
///
/// let size = MotSize::new(8)?;
/// let path = unicast_route(size, 2, 5)?;
/// assert_eq!(path.destination(), 5);
/// # Ok::<(), asynoc_topology::TopologyError>(())
/// ```
pub fn unicast_route(
    size: MotSize,
    source: usize,
    dest: usize,
) -> Result<BaselinePath, TopologyError> {
    size.check_source(source)?;
    size.check_destination(dest)?;
    Ok(BaselinePath::to_destination(size.n(), dest))
}

/// Replays a route header from the root, returning the set of destinations
/// the header actually delivers to. Used to verify encoder correctness and
/// as the reference model in property tests.
#[must_use]
pub fn delivered_destinations(size: MotSize, source: usize, header: &RouteHeader) -> DestSet {
    let mut delivered = DestSet::new();
    let mut stack = vec![FanoutNodeId::root(source)];
    while let Some(node) = stack.pop() {
        let symbol = header.symbol(node.level, node.index);
        for (wants, port) in [
            (symbol.wants_top(), crate::ids::OutputPort::Top),
            (symbol.wants_bottom(), crate::ids::OutputPort::Bottom),
        ] {
            if !wants {
                continue;
            }
            match node.child(size, port) {
                crate::ids::FanoutChild::Node(next) => stack.push(next),
                crate::ids::FanoutChild::FaninLeaf { dest, .. } => delivered.insert(dest),
            }
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size8() -> MotSize {
        MotSize::new(8).unwrap()
    }

    #[test]
    fn unicast_header_is_a_single_path() {
        let header = multicast_route(size8(), 0, DestSet::unicast(5)).unwrap();
        // 5 = 0b101: bottom, top, bottom.
        assert_eq!(header.symbol(0, 0), RouteSymbol::Bottom);
        assert_eq!(header.symbol(1, 1), RouteSymbol::Top);
        assert_eq!(header.symbol(2, 2), RouteSymbol::Bottom);
        assert_eq!(header.active_nodes(), 3);
    }

    #[test]
    fn off_path_nodes_are_drop() {
        let header = multicast_route(size8(), 0, DestSet::unicast(5)).unwrap();
        assert_eq!(header.symbol(1, 0), RouteSymbol::Drop);
        assert_eq!(header.symbol(2, 0), RouteSymbol::Drop);
        assert_eq!(header.symbol(2, 3), RouteSymbol::Drop);
    }

    #[test]
    fn full_broadcast_marks_both_everywhere() {
        let all: DestSet = (0..8).collect();
        let header = multicast_route(size8(), 3, all).unwrap();
        assert!(header.iter().all(|(_, _, s)| s == RouteSymbol::Both));
    }

    #[test]
    fn paper_figure4b_multicast_example() {
        // Fig 4(b): multicast from a source to D1, D2, D3 (destinations
        // 0, 1, 2 zero-indexed as the top three leaves... we use the set
        // {0, 1, 2}): root must be Top, node (1,0) Both, etc.
        let dests: DestSet = [0usize, 1, 2].into_iter().collect();
        let header = multicast_route(size8(), 0, dests).unwrap();
        assert_eq!(header.symbol(0, 0), RouteSymbol::Top);
        assert_eq!(header.symbol(1, 0), RouteSymbol::Both);
        assert_eq!(header.symbol(2, 0), RouteSymbol::Both); // dests 0 and 1
        assert_eq!(header.symbol(2, 1), RouteSymbol::Top); // dest 2 only
        assert_eq!(header.symbol(1, 1), RouteSymbol::Drop);
    }

    #[test]
    fn route_errors() {
        assert_eq!(
            multicast_route(size8(), 0, DestSet::EMPTY),
            Err(TopologyError::EmptyDestinationSet)
        );
        assert_eq!(
            multicast_route(size8(), 8, DestSet::unicast(0)),
            Err(TopologyError::SourceOutOfRange { source: 8, size: 8 })
        );
        assert_eq!(
            multicast_route(size8(), 0, DestSet::unicast(9)),
            Err(TopologyError::DestinationOutOfRange { dest: 9, size: 8 })
        );
        assert!(unicast_route(size8(), 0, 8).is_err());
        assert!(unicast_route(size8(), 9, 0).is_err());
    }

    #[test]
    fn route_into_reused_header_matches_fresh() {
        let mut header = multicast_route(size8(), 0, DestSet::unicast(5)).unwrap();
        let dests: DestSet = [0usize, 3, 7].into_iter().collect();
        multicast_route_into(size8(), 2, dests, &mut header).unwrap();
        assert_eq!(header, multicast_route(size8(), 2, dests).unwrap());
        // Reuse across tree sizes too.
        let size16 = MotSize::new(16).unwrap();
        multicast_route_into(size16, 1, dests, &mut header).unwrap();
        assert_eq!(header, multicast_route(size16, 1, dests).unwrap());
    }

    #[test]
    fn replay_recovers_destinations() {
        let dests: DestSet = [0usize, 3, 4, 7].into_iter().collect();
        let header = multicast_route(size8(), 2, dests).unwrap();
        assert_eq!(delivered_destinations(size8(), 2, &header), dests);
    }

    fn next_rand(state: &mut u64) -> u64 {
        // SplitMix64: deterministic case generation without external crates.
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn encoder_replay_roundtrip() {
        let mut state = 0xDEAD_BEEFu64;
        for levels in 1u32..7 {
            let size = MotSize::new(1usize << levels).unwrap();
            for _case in 0..32 {
                let source = next_rand(&mut state) as usize % size.n();
                let dests = DestSet::from_bits(next_rand(&mut state)).restricted_to(0, size.n());
                if dests.is_empty() {
                    continue;
                }
                let header = multicast_route(size, source, dests).unwrap();
                assert_eq!(delivered_destinations(size, source, &header), dests);
            }
        }
    }

    #[test]
    fn active_nodes_bounded_by_multicast_tree() {
        let mut state = 0xCAFEu64;
        for case in 0..256 {
            let bits = if case == 0 {
                u64::MAX
            } else {
                next_rand(&mut state)
            };
            let size = size8();
            let dests = DestSet::from_bits(bits).restricted_to(0, 8);
            if dests.is_empty() {
                continue;
            }
            let header = multicast_route(size, 0, dests).unwrap();
            // The multicast tree has at most min(k·levels, n−1) nodes and at
            // least `levels` (one per level).
            let k = dests.len();
            assert!(header.active_nodes() >= size.levels() as usize);
            assert!(header.active_nodes() <= (k * size.levels() as usize).min(7));
        }
    }
}
