//! Switching-activity power accounting.
//!
//! The paper measures power in two steps: record the switching activity of
//! every wire over a benchmark run, then integrate it with per-event energy
//! (Synopsys PrimeTime). This crate reproduces the same methodology with
//! calibrated constants: every flit traversal of a node or channel deposits
//! femtojoules into an [`EnergyLedger`], throttled flits deposit a small
//! detection energy, and a [`PowerReport`] divides the accumulated energy
//! by the measurement window and adds area-proportional leakage.
//!
//! Crucially, *redundant speculative copies deposit energy exactly like
//! useful flits* — that is the power cost of speculation the paper
//! quantifies, and the reason the power-optimized speculative node (§4(c))
//! saves power by not replicating body flits.
//!
//! # Examples
//!
//! ```
//! use asynoc_kernel::Duration;
//! use asynoc_power::{EnergyCategory, EnergyLedger};
//!
//! let mut ledger = EnergyLedger::new();
//! ledger.add(EnergyCategory::Fanout, 520.0);
//! ledger.add(EnergyCategory::Wire, 200.0);
//! let report = ledger.report(Duration::from_ns(1), 0.5);
//! assert!(report.total_mw() > 0.5); // leakage + dynamic
//! ```

use std::fmt;

use asynoc_kernel::Duration;

/// Where a quantum of dynamic energy was spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// A flit consumed (routed/replicated) by a fanout node.
    Fanout,
    /// A flit consumed (arbitrated/forwarded) by a fanin node.
    Fanin,
    /// A flit copy launched onto a channel.
    Wire,
    /// A redundant flit detected and throttled at a non-speculative node.
    Dropped,
}

impl EnergyCategory {
    /// All categories, in reporting order.
    pub const ALL: [EnergyCategory; 4] = [
        EnergyCategory::Fanout,
        EnergyCategory::Fanin,
        EnergyCategory::Wire,
        EnergyCategory::Dropped,
    ];

    const fn slot(self) -> usize {
        match self {
            EnergyCategory::Fanout => 0,
            EnergyCategory::Fanin => 1,
            EnergyCategory::Wire => 2,
            EnergyCategory::Dropped => 3,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnergyCategory::Fanout => "fanout nodes",
            EnergyCategory::Fanin => "fanin nodes",
            EnergyCategory::Wire => "channels",
            EnergyCategory::Dropped => "throttled flits",
        })
    }
}

/// Accumulates dynamic energy (femtojoules) by category over a measurement
/// window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    fj: [f64; 4],
    events: [u64; 4],
}

impl EnergyLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Deposits `energy_fj` femtojoules into `category`.
    ///
    /// # Panics
    ///
    /// Panics if `energy_fj` is negative or not finite.
    pub fn add(&mut self, category: EnergyCategory, energy_fj: f64) {
        assert!(
            energy_fj.is_finite() && energy_fj >= 0.0,
            "energy deposit must be finite and non-negative, got {energy_fj}"
        );
        self.fj[category.slot()] += energy_fj;
        self.events[category.slot()] += 1;
    }

    /// Total accumulated energy, femtojoules.
    #[must_use]
    pub fn total_fj(&self) -> f64 {
        self.fj.iter().sum()
    }

    /// Accumulated energy in one category, femtojoules.
    #[must_use]
    pub fn category_fj(&self, category: EnergyCategory) -> f64 {
        self.fj[category.slot()]
    }

    /// Number of deposits into one category.
    #[must_use]
    pub fn category_events(&self, category: EnergyCategory) -> u64 {
        self.events[category.slot()]
    }

    /// Resets the ledger (e.g. at the end of warmup).
    pub fn reset(&mut self) {
        *self = EnergyLedger::default();
    }

    /// Builds a power report for a measurement `window` with the given total
    /// network `leakage_mw`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `leakage_mw` is negative.
    #[must_use]
    pub fn report(&self, window: Duration, leakage_mw: f64) -> PowerReport {
        assert!(!window.is_zero(), "measurement window must be non-zero");
        assert!(
            leakage_mw.is_finite() && leakage_mw >= 0.0,
            "leakage must be finite and non-negative, got {leakage_mw}"
        );
        // fJ / ps = 1e-15 J / 1e-12 s = 1e-3 W = 1 mW exactly.
        let window_ps = window.as_ps() as f64;
        let mut category_mw = [0.0f64; 4];
        for (slot, fj) in self.fj.iter().enumerate() {
            category_mw[slot] = fj / window_ps;
        }
        PowerReport {
            category_mw,
            leakage_mw,
        }
    }
}

/// Total network power over a measurement window, broken down by category.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    category_mw: [f64; 4],
    leakage_mw: f64,
}

impl PowerReport {
    /// Dynamic power in one category, milliwatts.
    #[must_use]
    pub fn category_mw(&self, category: EnergyCategory) -> f64 {
        self.category_mw[category.slot()]
    }

    /// Total dynamic power, milliwatts.
    #[must_use]
    pub fn dynamic_mw(&self) -> f64 {
        self.category_mw.iter().sum()
    }

    /// Leakage power, milliwatts.
    #[must_use]
    pub fn leakage_mw(&self) -> f64 {
        self.leakage_mw
    }

    /// Total network power, milliwatts (the Table 1 quantity).
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw() + self.leakage_mw
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} mW (dynamic {:.2} + leakage {:.2})",
            self.total_mw(),
            self.dynamic_mw(),
            self.leakage_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc_kernel::SimRng;

    #[test]
    fn empty_ledger_reports_only_leakage() {
        let report = EnergyLedger::new().report(Duration::from_ns(10), 1.3);
        assert_eq!(report.dynamic_mw(), 0.0);
        assert_eq!(report.leakage_mw(), 1.3);
        assert_eq!(report.total_mw(), 1.3);
    }

    #[test]
    fn femtojoule_per_picosecond_is_one_milliwatt() {
        let mut ledger = EnergyLedger::new();
        ledger.add(EnergyCategory::Fanout, 1_000.0);
        let report = ledger.report(Duration::from_ps(1_000), 0.0);
        assert!((report.total_mw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn categories_accumulate_independently() {
        let mut ledger = EnergyLedger::new();
        ledger.add(EnergyCategory::Fanout, 10.0);
        ledger.add(EnergyCategory::Fanout, 5.0);
        ledger.add(EnergyCategory::Wire, 7.0);
        ledger.add(EnergyCategory::Dropped, 3.0);
        assert_eq!(ledger.category_fj(EnergyCategory::Fanout), 15.0);
        assert_eq!(ledger.category_fj(EnergyCategory::Wire), 7.0);
        assert_eq!(ledger.category_fj(EnergyCategory::Fanin), 0.0);
        assert_eq!(ledger.category_fj(EnergyCategory::Dropped), 3.0);
        assert_eq!(ledger.category_events(EnergyCategory::Fanout), 2);
        assert_eq!(ledger.total_fj(), 25.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut ledger = EnergyLedger::new();
        ledger.add(EnergyCategory::Fanin, 42.0);
        ledger.reset();
        assert_eq!(ledger.total_fj(), 0.0);
        assert_eq!(ledger.category_events(EnergyCategory::Fanin), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_deposit_rejected() {
        EnergyLedger::new().add(EnergyCategory::Wire, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = EnergyLedger::new().report(Duration::ZERO, 0.0);
    }

    #[test]
    fn report_breaks_down_by_category() {
        let mut ledger = EnergyLedger::new();
        ledger.add(EnergyCategory::Fanout, 2_000.0);
        ledger.add(EnergyCategory::Fanin, 1_000.0);
        let report = ledger.report(Duration::from_ps(1_000), 0.5);
        assert!((report.category_mw(EnergyCategory::Fanout) - 2.0).abs() < 1e-12);
        assert!((report.category_mw(EnergyCategory::Fanin) - 1.0).abs() < 1e-12);
        assert!((report.dynamic_mw() - 3.0).abs() < 1e-12);
        assert!((report.total_mw() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn display_shows_components() {
        let mut ledger = EnergyLedger::new();
        ledger.add(EnergyCategory::Wire, 500.0);
        let text = ledger.report(Duration::from_ps(1_000), 1.0).to_string();
        assert!(text.contains("dynamic"));
        assert!(text.contains("leakage"));
    }

    #[test]
    fn total_is_sum_of_categories() {
        let mut rng = SimRng::seed_from(13);
        for _case in 0..64 {
            let deposits = rng.index(50);
            let mut ledger = EnergyLedger::new();
            for _ in 0..deposits {
                let slot = rng.index(4);
                let fj = rng.index(1_000_000) as f64;
                ledger.add(EnergyCategory::ALL[slot], fj);
            }
            let by_cat: f64 = EnergyCategory::ALL
                .iter()
                .map(|&c| ledger.category_fj(c))
                .sum();
            assert!((ledger.total_fj() - by_cat).abs() < 1e-6);
            let report = ledger.report(Duration::from_ns(1), 0.0);
            assert!((report.dynamic_mw() - ledger.total_fj() / 1_000.0).abs() < 1e-9);
        }
    }
}
