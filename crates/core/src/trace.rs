//! Flit-level event tracing.
//!
//! When enabled on a [`RunConfig`](crate::RunConfig), the simulator records
//! one [`TraceEvent`] per flit action (injection, forwarding/replication,
//! throttling, arbitration, delivery) up to a configurable cap. Traces turn
//! the Figure-4 routing story into observed behavior: you can follow a
//! specific multicast packet's copies as the speculative root broadcasts
//! them and a non-speculative node throttles the redundant one.

use std::fmt;

use asynoc_kernel::Time;
use asynoc_packet::{PacketId, RouteSymbol};
use asynoc_topology::{FaninNodeId, FanoutNodeId};

/// Where a trace event happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceLocation {
    /// A traffic source.
    Source(usize),
    /// A fanout (routing) node.
    Fanout(FanoutNodeId),
    /// A fanin (arbitration) node.
    Fanin(FaninNodeId),
    /// A destination sink.
    Sink(usize),
}

impl fmt::Display for TraceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLocation::Source(s) => write!(f, "src{s}"),
            TraceLocation::Fanout(id) => write!(f, "{id}"),
            TraceLocation::Fanin(id) => write!(f, "{id}"),
            TraceLocation::Sink(d) => write!(f, "D{d}"),
        }
    }
}

/// What happened to the flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceAction {
    /// The flit left its source queue into the network.
    Injected,
    /// A fanout node forwarded/replicated the flit on the given route.
    Forwarded(RouteSymbol),
    /// A non-speculative node throttled a redundant copy.
    Throttled,
    /// A fanin node granted the flit from the given input.
    Arbitrated {
        /// The winning input (0 or 1).
        input: usize,
    },
    /// The flit reached a destination sink.
    Delivered,
}

impl fmt::Display for TraceAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceAction::Injected => f.write_str("injected"),
            TraceAction::Forwarded(symbol) => write!(f, "forwarded [{symbol}]"),
            TraceAction::Throttled => f.write_str("THROTTLED"),
            TraceAction::Arbitrated { input } => write!(f, "arbitrated (input {input})"),
            TraceAction::Delivered => f.write_str("delivered"),
        }
    }
}

/// One traced flit action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the action.
    pub time: Time,
    /// The flit's packet.
    pub packet: PacketId,
    /// Flit index within the packet (0 = header).
    pub flit: u8,
    /// Where it happened.
    pub location: TraceLocation,
    /// What happened.
    pub action: TraceAction,
}

impl TraceEvent {
    /// Converts into the substrate-neutral
    /// [`TraceRecord`](asynoc_telemetry::TraceRecord) form used by the
    /// NDJSON and Chrome trace exporters. Action names match those the
    /// generic [`asynoc_telemetry::TraceCollector`] emits, so one parser
    /// handles traces from either path.
    #[must_use]
    pub fn to_record(&self) -> asynoc_telemetry::TraceRecord {
        let (action, detail, copies) = match self.action {
            TraceAction::Injected => ("inject", String::new(), 1),
            TraceAction::Forwarded(symbol) => (
                "forward",
                symbol.to_string(),
                u8::from(symbol.wants_top()) + u8::from(symbol.wants_bottom()),
            ),
            TraceAction::Throttled => ("throttle", String::new(), 0),
            TraceAction::Arbitrated { input } => ("forward", format!("input{input}"), 1),
            TraceAction::Delivered => ("deliver", String::new(), 0),
        };
        // `TraceEvent` carries no descriptor, so the causal fields the
        // observer path fills exactly default here: `logical` to the
        // packet id, the rest to zero.
        asynoc_telemetry::TraceRecord {
            t_ps: self.time.as_ps(),
            packet: self.packet.as_u64(),
            logical: self.packet.as_u64(),
            flit: self.flit,
            src: 0,
            dests: 0,
            created_ps: 0,
            site: self.location.to_string(),
            action: action.to_string(),
            detail,
            copies,
            busy_ps: 0,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}  pkt{}[{}]  {:<12} {}",
            self.time.to_string(),
            self.packet,
            self.flit,
            self.location.to_string(),
            self.action
        )
    }
}

/// The bounded trace recorder.
#[derive(Clone, Debug, Default)]
pub(crate) struct TraceRecorder {
    events: Vec<TraceEvent>,
    limit: usize,
}

impl TraceRecorder {
    pub(crate) fn new(limit: usize) -> Self {
        TraceRecorder {
            events: Vec::with_capacity(limit.min(4096)),
            limit,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.limit > 0 && self.events.len() < self.limit
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.enabled() {
            self.events.push(event);
        }
    }

    pub(crate) fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_respects_limit() {
        let mut recorder = TraceRecorder::new(2);
        let event = TraceEvent {
            time: Time::from_ps(1),
            packet: PacketId::new(0),
            flit: 0,
            location: TraceLocation::Source(0),
            action: TraceAction::Injected,
        };
        assert!(recorder.enabled());
        recorder.push(event);
        recorder.push(event);
        assert!(!recorder.enabled());
        recorder.push(event);
        assert_eq!(recorder.into_events().len(), 2);
    }

    #[test]
    fn zero_limit_disables() {
        let recorder = TraceRecorder::new(0);
        assert!(!recorder.enabled());
    }

    #[test]
    fn to_record_round_trips_through_ndjson() {
        let event = TraceEvent {
            time: Time::from_ps(2_100),
            packet: PacketId::new(9),
            flit: 1,
            location: TraceLocation::Fanin(FaninNodeId {
                tree: 4,
                level: 1,
                index: 0,
            }),
            action: TraceAction::Arbitrated { input: 1 },
        };
        let record = event.to_record();
        assert_eq!(record.t_ps, 2_100);
        assert_eq!(record.packet, 9);
        assert_eq!(record.site, "fi[d4:1.0]");
        assert_eq!(record.action, "forward");
        assert_eq!(record.detail, "input1");
        let line = record.to_ndjson();
        assert_eq!(
            asynoc_telemetry::TraceRecord::from_ndjson(&line),
            Ok(record)
        );
        assert_eq!(
            TraceEvent {
                action: TraceAction::Throttled,
                ..event
            }
            .to_record()
            .action,
            "throttle"
        );
    }

    #[test]
    fn display_formats() {
        let event = TraceEvent {
            time: Time::from_ps(1_500),
            packet: PacketId::new(7),
            flit: 0,
            location: TraceLocation::Fanout(FanoutNodeId {
                tree: 2,
                level: 0,
                index: 0,
            }),
            action: TraceAction::Forwarded(RouteSymbol::Both),
        };
        let text = event.to_string();
        assert!(text.contains("pkt7[0]"));
        assert!(text.contains("fo[s2:0.0]"));
        assert!(text.contains("both"));
        assert!(TraceAction::Throttled.to_string().contains("THROTTLED"));
        assert!(TraceLocation::Sink(3).to_string().contains("D3"));
        assert!(TraceAction::Arbitrated { input: 1 }
            .to_string()
            .contains("input 1"));
    }
}
