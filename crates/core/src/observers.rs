//! The MoT network's standard observers.
//!
//! Power accounting, per-node activity, and flit tracing used to be
//! hard-wired into the simulation loop; they are now composable
//! [`Observer`]s registered per run. [`crate::Network::run`] installs all
//! three; [`crate::Network::run_with_observers`] lets callers append their
//! own (e.g. a custom histogram or a live event dump) without touching the
//! engine.

use asynoc_engine::{ForwardInfo, Observer, SimEvent};
use asynoc_nodes::{FlitClass, TimingModel};
use asynoc_power::{EnergyCategory, EnergyLedger};
use asynoc_topology::FaninNodeId;

use crate::fabric::Fabric;
use crate::report::NodeActivity;
use crate::sim::MotNode;
use crate::trace::{TraceAction, TraceEvent, TraceLocation, TraceRecorder};

/// Accumulates the energy ledger the paper's power numbers come from.
///
/// Deposits only inside the measurement window: one wire launch per
/// injected flit, one wire launch per forwarded copy, the traversed
/// node's class-dependent switching energy, and the drop energy of every
/// throttled flit.
pub(crate) struct PowerObserver<'a> {
    timing: &'a TimingModel,
    fabric: &'a Fabric,
    ledger: EnergyLedger,
}

impl<'a> PowerObserver<'a> {
    pub(crate) fn new(timing: &'a TimingModel, fabric: &'a Fabric) -> Self {
        PowerObserver {
            timing,
            fabric,
            ledger: EnergyLedger::new(),
        }
    }

    pub(crate) fn into_ledger(self) -> EnergyLedger {
        self.ledger
    }
}

impl Observer<MotNode> for PowerObserver<'_> {
    fn on_event(
        &mut self,
        _at: asynoc_kernel::Time,
        in_window: bool,
        event: &SimEvent<'_, MotNode>,
    ) {
        if !in_window {
            return;
        }
        match event {
            SimEvent::Inject { .. } => {
                self.ledger.add(EnergyCategory::Wire, self.timing.wire_fj);
            }
            SimEvent::Forward {
                node, flit, copies, ..
            } => {
                let class = FlitClass::of(flit.kind());
                for _ in 0..*copies {
                    self.ledger.add(EnergyCategory::Wire, self.timing.wire_fj);
                }
                match *node {
                    MotNode::Fanout(flat) => self.ledger.add(
                        EnergyCategory::Fanout,
                        self.timing
                            .fanout_energy(self.fabric.fanout_kind[flat])
                            .for_class(class),
                    ),
                    MotNode::Fanin(_) => self.ledger.add(
                        EnergyCategory::Fanin,
                        self.timing.fanin_energy.for_class(class),
                    ),
                }
            }
            SimEvent::Drop { .. } => {
                self.ledger
                    .add(EnergyCategory::Dropped, self.timing.drop_fj);
            }
            // Injected faults deposit no energy of their own: a stalled
            // flit still pays its wire launch, and the spurious copies of
            // a corrupted symbol are priced by their Forward/Drop events.
            SimEvent::Deliver { .. } | SimEvent::Fault { .. } => {}
        }
    }
}

/// Accumulates per-node fire/throttle/busy counters over the window.
pub(crate) struct ActivityObserver {
    activity: NodeActivity,
}

impl ActivityObserver {
    pub(crate) fn new(activity: NodeActivity) -> Self {
        ActivityObserver { activity }
    }

    pub(crate) fn into_activity(self) -> NodeActivity {
        self.activity
    }
}

impl Observer<MotNode> for ActivityObserver {
    fn on_event(
        &mut self,
        _at: asynoc_kernel::Time,
        in_window: bool,
        event: &SimEvent<'_, MotNode>,
    ) {
        if !in_window {
            return;
        }
        match event {
            SimEvent::Forward { node, busy, .. } => match *node {
                MotNode::Fanout(flat) => self.activity.record_fanout(flat, *busy, false),
                MotNode::Fanin(flat) => self.activity.record_fanin(flat, *busy),
            },
            SimEvent::Drop { node, busy, .. } => {
                let MotNode::Fanout(flat) = *node else {
                    unreachable!("only fanout nodes throttle");
                };
                self.activity.record_fanout(flat, *busy, true);
            }
            SimEvent::Inject { .. } | SimEvent::Deliver { .. } | SimEvent::Fault { .. } => {}
        }
    }
}

/// Records the bounded flit-level trace (all phases, not just the
/// measurement window).
pub(crate) struct TraceObserver<'a> {
    fabric: &'a Fabric,
    recorder: TraceRecorder,
}

impl<'a> TraceObserver<'a> {
    pub(crate) fn new(fabric: &'a Fabric, limit: usize) -> Self {
        TraceObserver {
            fabric,
            recorder: TraceRecorder::new(limit),
        }
    }

    pub(crate) fn into_events(self) -> Vec<TraceEvent> {
        self.recorder.into_events()
    }

    fn location(&self, node: MotNode) -> TraceLocation {
        match node {
            MotNode::Fanout(flat) => TraceLocation::Fanout(self.fabric.fanout_coords[flat]),
            MotNode::Fanin(flat) => {
                TraceLocation::Fanin(FaninNodeId::from_flat_index(self.fabric.size, flat))
            }
        }
    }
}

impl Observer<MotNode> for TraceObserver<'_> {
    fn on_event(
        &mut self,
        at: asynoc_kernel::Time,
        _in_window: bool,
        event: &SimEvent<'_, MotNode>,
    ) {
        if !self.recorder.enabled() {
            return;
        }
        let (flit, location, action) = match event {
            SimEvent::Inject { source, flit } => {
                (*flit, TraceLocation::Source(*source), TraceAction::Injected)
            }
            SimEvent::Forward {
                node, flit, info, ..
            } => {
                let action = match info {
                    ForwardInfo::Routed(symbol) => TraceAction::Forwarded(*symbol),
                    ForwardInfo::Arbitrated { input } => TraceAction::Arbitrated { input: *input },
                };
                (*flit, self.location(*node), action)
            }
            SimEvent::Drop { node, flit, .. } => {
                (*flit, self.location(*node), TraceAction::Throttled)
            }
            SimEvent::Deliver { dest, flit } => {
                (*flit, TraceLocation::Sink(*dest), TraceAction::Delivered)
            }
            // The MoT-native trace format has no fault action; the
            // substrate-neutral `TraceCollector` is the faulted-run
            // tracer.
            SimEvent::Fault { .. } => return,
        };
        self.recorder.push(TraceEvent {
            time: at,
            packet: flit.descriptor().id(),
            flit: flit.index(),
            location,
            action,
        });
    }
}
