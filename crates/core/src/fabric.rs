//! Static network structure: nodes, channels, and their wiring.
//!
//! The fabric is the elaborated netlist of one MoT network: every fanout
//! and fanin node instance (with its [`FanoutKind`]), every bundled-data
//! channel, and who is upstream/downstream of each channel. It is built
//! once per [`crate::Network`] and never mutated; all dynamic state lives
//! in [`crate::sim`].

use asynoc_topology::{
    FaninNodeId, FaninParent, FanoutChild, FanoutKind, FanoutNodeId, MotSize, NodePlan, OutputPort,
};

/// An entity that can be woken to attempt forward progress.
///
/// Sinks are never upstream of a channel, so they do not appear here;
/// delivery endpoints exist only as [`Downstream::Sink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Entity {
    /// Source `s` (drains its injection queue).
    Source(usize),
    /// Fanout node by flat index.
    Fanout(usize),
    /// Fanin node by flat index.
    Fanin(usize),
}

/// The receiving end of a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Downstream {
    /// A fanout node's single input.
    Fanout(usize),
    /// One of a fanin node's two inputs.
    Fanin {
        /// Flat fanin node index.
        flat: usize,
        /// Input slot, 0 or 1.
        input: usize,
    },
    /// A destination sink.
    Sink(usize),
}

/// One bundled-data channel's static wiring.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChannelWiring {
    /// Entity to wake when the channel frees.
    pub upstream: Entity,
    /// Where launched flits arrive.
    pub downstream: Downstream,
}

/// The elaborated structure of one network.
#[derive(Clone, Debug)]
pub(crate) struct Fabric {
    pub size: MotSize,
    /// Whether multicasts are serialized into unicast clones at the source.
    pub serializes_multicast: bool,
    /// Node kind per flat fanout index.
    pub fanout_kind: Vec<FanoutKind>,
    /// Coordinates per flat fanout index (for route-symbol lookup).
    pub fanout_coords: Vec<FanoutNodeId>,
    /// Input channel per flat fanout index.
    pub fanout_input: Vec<usize>,
    /// Output channels (top, bottom) per flat fanout index.
    pub fanout_out: Vec<[usize; 2]>,
    /// Input channels per flat fanin index.
    pub fanin_input: Vec<[usize; 2]>,
    /// Output channel per flat fanin index.
    pub fanin_out: Vec<usize>,
    /// Channel from each source into its fanout root.
    pub source_out: Vec<usize>,
    /// All channel wiring, indexed by channel id.
    pub channels: Vec<ChannelWiring>,
}

impl Fabric {
    /// Elaborates the network for `size` under a per-level node plan.
    pub(crate) fn build(size: MotSize, plan: &NodePlan) -> Self {
        debug_assert_eq!(plan.size(), size, "plan built for a different size");
        let n = size.n();
        let per_tree = size.fanout_nodes_per_tree();
        let fanout_total = size.total_fanout_nodes();
        let fanin_total = size.total_fanin_nodes();

        let mut channels: Vec<ChannelWiring> = Vec::new();
        let mut alloc = |upstream: Entity, downstream: Downstream| -> usize {
            channels.push(ChannelWiring {
                upstream,
                downstream,
            });
            channels.len() - 1
        };

        let mut fanout_kind = Vec::with_capacity(fanout_total);
        let mut fanout_coords = Vec::with_capacity(fanout_total);
        let mut fanout_input = vec![usize::MAX; fanout_total];
        let mut fanout_out = vec![[usize::MAX; 2]; fanout_total];
        let mut fanin_input = vec![[usize::MAX; 2]; fanin_total];
        let mut fanin_out = vec![usize::MAX; fanin_total];
        let mut source_out = Vec::with_capacity(n);

        for id in FanoutNodeId::all(size) {
            fanout_kind.push(plan.kind_at(id));
            fanout_coords.push(id);
        }

        // Source → fanout-root channels.
        for s in 0..n {
            let root_flat = FanoutNodeId::root(s).flat_index(size);
            let c = alloc(Entity::Source(s), Downstream::Fanout(root_flat));
            source_out.push(c);
            fanout_input[root_flat] = c;
        }

        // Fanout outputs.
        for id in FanoutNodeId::all(size) {
            let flat = id.flat_index(size);
            for port in OutputPort::BOTH {
                let downstream = match id.child(size, port) {
                    FanoutChild::Node(next) => {
                        let next_flat = next.flat_index(size);
                        Downstream::Fanout(next_flat)
                    }
                    FanoutChild::FaninLeaf { dest, source } => {
                        let (leaf, input) = FaninNodeId::leaf_for_source(size, dest, source);
                        Downstream::Fanin {
                            flat: leaf.flat_index(size),
                            input,
                        }
                    }
                };
                let c = alloc(Entity::Fanout(flat), downstream);
                fanout_out[flat][port.index()] = c;
                match downstream {
                    Downstream::Fanout(next_flat) => fanout_input[next_flat] = c,
                    Downstream::Fanin { flat: fi, input } => fanin_input[fi][input] = c,
                    Downstream::Sink(_) => unreachable!("fanout outputs never feed sinks"),
                }
            }
        }

        // Fanin outputs.
        for id in FaninNodeId::all(size) {
            let flat = id.flat_index(size);
            let downstream = match id.parent(size) {
                FaninParent::Node { id: up, input } => Downstream::Fanin {
                    flat: up.flat_index(size),
                    input,
                },
                FaninParent::Sink { dest } => Downstream::Sink(dest),
            };
            let c = alloc(Entity::Fanin(flat), downstream);
            fanin_out[flat] = c;
            if let Downstream::Fanin { flat: fi, input } = downstream {
                fanin_input[fi][input] = c;
            }
        }

        debug_assert!(fanout_input.iter().all(|&c| c != usize::MAX));
        debug_assert!(fanin_input
            .iter()
            .all(|a| a.iter().all(|&c| c != usize::MAX)));
        debug_assert_eq!(per_tree * n, fanout_total);

        Fabric {
            size,
            serializes_multicast: plan.serializes_multicast(),
            fanout_kind,
            fanout_coords,
            fanout_input,
            fanout_out,
            fanin_input,
            fanin_out,
            source_out,
            channels,
        }
    }

    /// Total network leakage under a timing model, milliwatts.
    pub(crate) fn leakage_mw(&self, timing: &asynoc_nodes::TimingModel) -> f64 {
        let fanout: f64 = self
            .fanout_kind
            .iter()
            .map(|&kind| timing.leakage_mw(timing.fanout_area(kind)))
            .sum();
        let fanin = self.size.total_fanin_nodes() as f64 * timing.leakage_mw(timing.fanin_area_um2);
        fanout + fanin
    }

    /// Number of channels in the network.
    #[cfg(test)]
    pub(crate) fn channel_count(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc_topology::Architecture;

    fn plan(arch: Architecture) -> NodePlan {
        NodePlan::for_architecture(arch, MotSize::new(8).unwrap())
    }

    fn size8() -> MotSize {
        MotSize::new(8).unwrap()
    }

    #[test]
    fn channel_count_8x8() {
        let fabric = Fabric::build(size8(), &plan(Architecture::Baseline));
        // 8 source channels + 56 fanout nodes × 2 outputs + 56 fanin outputs.
        assert_eq!(fabric.channel_count(), 8 + 112 + 56);
    }

    #[test]
    fn every_fanout_node_has_input_and_outputs() {
        let fabric = Fabric::build(size8(), &plan(Architecture::OptHybridSpeculative));
        for flat in 0..fabric.fanout_kind.len() {
            let input = fabric.fanout_input[flat];
            assert!(matches!(
                fabric.channels[input].downstream,
                Downstream::Fanout(f) if f == flat
            ));
            for out in fabric.fanout_out[flat] {
                assert!(matches!(
                    fabric.channels[out].upstream,
                    Entity::Fanout(f) if f == flat
                ));
            }
        }
    }

    #[test]
    fn fanin_roots_feed_sinks() {
        let fabric = Fabric::build(size8(), &plan(Architecture::Baseline));
        let mut sink_feeds = vec![0usize; 8];
        for wiring in &fabric.channels {
            if let Downstream::Sink(d) = wiring.downstream {
                sink_feeds[d] += 1;
            }
        }
        assert_eq!(
            sink_feeds,
            vec![1; 8],
            "each sink fed by exactly one channel"
        );
    }

    #[test]
    fn kinds_follow_architecture_levels() {
        let fabric = Fabric::build(size8(), &plan(Architecture::OptAllSpeculative));
        for (flat, id) in FanoutNodeId::all(size8()).enumerate() {
            let expected = if id.level == 2 {
                FanoutKind::OptNonSpeculative
            } else {
                FanoutKind::OptSpeculative
            };
            assert_eq!(fabric.fanout_kind[flat], expected);
        }
    }

    #[test]
    fn source_channels_point_at_roots() {
        let fabric = Fabric::build(size8(), &plan(Architecture::Baseline));
        for s in 0..8 {
            let c = fabric.source_out[s];
            assert!(matches!(fabric.channels[c].upstream, Entity::Source(src) if src == s));
            let root_flat = FanoutNodeId::root(s).flat_index(size8());
            assert!(
                matches!(fabric.channels[c].downstream, Downstream::Fanout(f) if f == root_flat)
            );
        }
    }

    #[test]
    fn leakage_depends_on_architecture_mix() {
        let timing = asynoc_nodes::TimingModel::calibrated();
        let nonspec = Fabric::build(size8(), &plan(Architecture::BasicNonSpeculative));
        let hybrid = Fabric::build(size8(), &plan(Architecture::BasicHybridSpeculative));
        // The hybrid swaps 8 large non-speculative roots for small
        // speculative ones, so it must leak less.
        assert!(hybrid.leakage_mw(&timing) < nonspec.leakage_mw(&timing));
        assert!(nonspec.leakage_mw(&timing) > 0.0);
    }

    #[test]
    fn builds_all_sizes() {
        for n in [2usize, 4, 16, 32] {
            let size = MotSize::new(n).unwrap();
            let fabric = Fabric::build(
                size,
                &NodePlan::for_architecture(Architecture::OptHybridSpeculative, size),
            );
            assert_eq!(fabric.fanout_kind.len(), n * (n - 1));
            assert_eq!(fabric.channel_count(), n + 2 * n * (n - 1) + n * (n - 1));
        }
    }
}
