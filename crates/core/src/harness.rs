//! Experiment harness: one entry point per table/figure of the paper.
//!
//! | paper artifact | function |
//! |---|---|
//! | §5.2(a) node-level table | [`node_cost_rows`] |
//! | Fig 6(a) latency, contribution trajectory | [`fig6a`] |
//! | Fig 6(b) latency, design-space exploration | [`fig6b`] |
//! | Table 1, saturation throughput | [`table1_throughput`] |
//! | Table 1, total network power | [`table1_power`] |
//! | §5.2(d) addressing comparison | [`addressing_rows`] |
//!
//! Each function follows the paper's measurement protocol:
//!
//! - **Saturation** is found by bisection on offered load, judging
//!   stability by the accepted/offered ratio (≥ 0.95); the reported GF/s is
//!   the *delivered* flit rate at the saturation point (Table 1 counts
//!   flit deliveries, which is why in-network multicast replication raises
//!   it above the injected rate).
//! - **Latency** (Fig 6) is measured at 25 % of each network's own
//!   saturation load, "up to the arrival of all headers at destinations".
//! - **Power** (Table 1) is measured at 25 % of the *Baseline* network's
//!   saturation load for that benchmark, "for a normalized comparison of
//!   energy per packet".
//!
//! The [`Quality`] knob trades run length for precision: [`Quality::quick`]
//! for smoke tests and CI, [`Quality::paper`] for the numbers recorded in
//! `EXPERIMENTS.md`.
//!
//! # Multi-core execution
//!
//! Every grid-shaped entry point fans its independent cells (architecture ×
//! benchmark pairs, seeds, saturation probe points) across OS threads via
//! [`asynoc_engine::parallel_map`], controlled by [`Quality::jobs`].
//! Parallelism is an implementation detail of wall-clock time only: results
//! are placed by input index and every probe schedule is independent of the
//! worker count, so any `jobs` setting produces bit-identical reports
//! (excluding the `wall` diagnostics). [`Quality::probe_fan`] separately
//! widens the saturation search from bisection to k-section — that *does*
//! change which rates are probed (deterministically), so it is a distinct
//! knob rather than being derived from `jobs`.

use asynoc_engine::parallel_map;
use asynoc_kernel::Duration;
use asynoc_nodes::{NodeCostRow, TimingModel};
use asynoc_stats::{find_saturation_multi, Phases, StabilityProbe};
use asynoc_topology::{Architecture, MotSize};
use asynoc_traffic::Benchmark;

use crate::config::{NetworkConfig, RunConfig};
use crate::error::SimError;
use crate::report::RunReport;
use crate::sim::Network;

/// Precision/runtime trade-off for harness experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct Quality {
    /// Phases used for saturation probes (no drain needed).
    pub probe_phases: Phases,
    /// Phases used for latency/power measurement runs.
    pub measure_phases: Option<Phases>,
    /// Bisection tolerance in GF/s.
    pub tolerance: f64,
    /// Upper bracket for the saturation search, flits/ns per source.
    pub rate_ceiling: f64,
    /// RNG seed for all runs.
    pub seed: u64,
    /// Interior rates probed per saturation-search round (k-section width).
    /// Affects which rates are probed — deterministically — so it is part
    /// of the experiment definition; `1` reproduces classic bisection.
    pub probe_fan: usize,
    /// Worker threads for independent cells/seeds/probes. Never affects
    /// results, only wall-clock time.
    pub jobs: usize,
    /// Conservative shards splitting each single run across threads.
    /// Never affects results, only wall-clock time.
    pub shards: usize,
}

impl Quality {
    /// Short windows, coarse tolerance — seconds per table, for tests.
    #[must_use]
    pub fn quick() -> Self {
        Quality {
            probe_phases: Phases::new(Duration::from_ns(100), Duration::from_ns(700)),
            measure_phases: Some(Phases::new(Duration::from_ns(150), Duration::from_ns(1200))),
            tolerance: 0.05,
            rate_ceiling: 2.6,
            seed: 42,
            probe_fan: 1,
            jobs: 1,
            shards: 1,
        }
    }

    /// The paper's protocol: standard warmup/measurement windows (doubled
    /// for `Multicast_static` automatically) and two-decimal-digit
    /// saturation precision.
    #[must_use]
    pub fn paper() -> Self {
        Quality {
            probe_phases: Phases::new(Duration::from_ns(320), Duration::from_ns(1600)),
            measure_phases: None, // per-benchmark paper standard
            tolerance: 0.015,
            rate_ceiling: 2.6,
            seed: 42,
            probe_fan: 1,
            jobs: 1,
            shards: 1,
        }
    }

    /// Sets the worker-thread count for independent runs.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the conservative shard count for each single run.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a run needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the saturation-search fan-out (interior probes per round).
    ///
    /// # Panics
    ///
    /// Panics if `probe_fan` is zero.
    #[must_use]
    pub fn with_probe_fan(mut self, probe_fan: usize) -> Self {
        assert!(probe_fan > 0, "probe_fan must be at least 1");
        self.probe_fan = probe_fan;
        self
    }

    fn measure_phases_for(&self, benchmark: Benchmark) -> Phases {
        self.measure_phases
            .unwrap_or_else(|| Phases::paper_standard(benchmark == Benchmark::MulticastStatic))
    }
}

impl Default for Quality {
    fn default() -> Self {
        Quality::quick()
    }
}

/// Saturation measurement for one (architecture, benchmark) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationPoint {
    /// Highest stable injected load, flits/ns per source.
    pub injected_gfs: f64,
    /// Delivered flit rate at that load — the Table 1 "Saturation
    /// Throughput (GF/s)" quantity.
    pub delivered_gfs: f64,
}

/// One cell of a latency figure.
#[derive(Clone, Debug)]
pub struct LatencyCell {
    /// The network architecture.
    pub architecture: Architecture,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The network's own saturation point.
    pub saturation: SaturationPoint,
    /// The load the latency was measured at (25 % of saturation).
    pub load_gfs: f64,
    /// Mean packet latency in picoseconds.
    pub mean_latency_ps: u64,
    /// Median (p50) packet latency in picoseconds.
    pub p50_latency_ps: u64,
    /// Tail (p99) packet latency in picoseconds.
    pub p99_latency_ps: u64,
    /// Number of packets sampled.
    pub packets: usize,
}

/// One cell of the Table 1 power comparison.
#[derive(Clone, Debug)]
pub struct PowerCell {
    /// The network architecture.
    pub architecture: Architecture,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The (Baseline-normalized) load used, flits/ns per source.
    pub load_gfs: f64,
    /// Total network power, milliwatts.
    pub total_mw: f64,
    /// Dynamic component, milliwatts.
    pub dynamic_mw: f64,
}

/// One row of the §5.2(d) addressing comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddressingRow {
    /// Network size.
    pub size: MotSize,
    /// Serial baseline bits (1 bit per fanout level).
    pub baseline_bits: usize,
    /// Fully non-speculative parallel network bits.
    pub non_speculative_bits: usize,
    /// Hybrid network bits.
    pub hybrid_bits: usize,
    /// Almost-fully-speculative network bits.
    pub all_speculative_bits: usize,
}

/// Finds the saturation point of `architecture` under `benchmark`.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn saturation(
    architecture: Architecture,
    benchmark: Benchmark,
    quality: &Quality,
) -> Result<SaturationPoint, SimError> {
    let network =
        Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(quality.seed))?;
    saturation_of(&network, benchmark, quality)
}

/// Finds the saturation point of an already-built network.
///
/// Two quantities are produced, matching the two ways "saturation" is used
/// in the paper:
///
/// - `injected_gfs` — the highest offered load at which *every* source's
///   injections are still accepted (bisection on the accepted/offered
///   ratio). Fig 6 latency runs load the network at 25 % of this, which
///   guarantees the uncongested regime the paper measures in.
/// - `delivered_gfs` — the delivered-flit plateau when the network is
///   driven far past saturation. This is Table 1's "Saturation Throughput":
///   under deep overload every bottleneck is pinned, sources that still
///   have headroom (e.g. the unicast sources of `Multicast_static`, whose
///   three serializing multicast sources saturate first in the Baseline)
///   keep contributing, and in-network multicast replication counts once
///   per delivery.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn saturation_of(
    network: &Network,
    benchmark: Benchmark,
    quality: &Quality,
) -> Result<SaturationPoint, SimError> {
    Ok(saturation_of_inner(network, benchmark, quality, false)?.0)
}

/// The engine self-profiles of every run a saturation search performed,
/// keyed by the probed rate and sorted by it (deterministic at any
/// `jobs`/`probe_fan` setting). The overload plateau run appears under
/// [`Quality::rate_ceiling`].
pub type ProbeProfiles = Vec<(f64, Box<asynoc_engine::probe::EngineProfile>)>;

/// [`saturation_of`] with the engine's self-profile collected from every
/// probe run (`asynoc saturate --profile` surfaces these as one `runs[]`
/// entry per probe). Profiling is host-side metadata only: the returned
/// saturation point is bit-identical to the unprofiled search.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn saturation_of_profiled(
    network: &Network,
    benchmark: Benchmark,
    quality: &Quality,
) -> Result<(SaturationPoint, ProbeProfiles), SimError> {
    let (point, profiles) = saturation_of_inner(network, benchmark, quality, true)?;
    Ok((point, profiles.unwrap_or_default()))
}

fn saturation_of_inner(
    network: &Network,
    benchmark: Benchmark,
    quality: &Quality,
    collect_profiles: bool,
) -> Result<(SaturationPoint, Option<ProbeProfiles>), SimError> {
    let probe = StabilityProbe::new();
    let profiles: std::sync::Mutex<ProbeProfiles> = std::sync::Mutex::new(Vec::new());
    let judge = |rate: f64| {
        let run = RunConfig::new(benchmark, rate)
            .expect("bisection rates are positive")
            .with_phases(quality.probe_phases)
            .with_drain(false)
            .with_shards(quality.shards)
            .with_profile(collect_profiles);
        let mut report = network.run(&run).expect("probe run cannot fail");
        if let Some(profile) = report.profile.take() {
            profiles
                .lock()
                .expect("probe profile lock")
                .push((rate, profile));
        }
        probe.judge(report.throughput.offered, report.throughput.injected)
    };
    let injected_gfs = find_saturation_multi(
        0.05,
        quality.rate_ceiling,
        quality.tolerance,
        quality.probe_fan,
        quality.jobs,
        judge,
    );

    // Measure the delivered plateau under deep overload (use a longer
    // window than the probes: the plateau estimate, unlike the stability
    // verdict, goes straight into the reported table).
    let run = RunConfig::new(benchmark, quality.rate_ceiling)?
        .with_phases(quality.probe_phases.scaled(2))
        .with_drain(false)
        .with_shards(quality.shards)
        .with_profile(collect_profiles);
    let mut report = network.run(&run)?;
    let point = SaturationPoint {
        injected_gfs,
        delivered_gfs: report.throughput.delivered,
    };
    if !collect_profiles {
        return Ok((point, None));
    }
    let mut profiles = profiles.into_inner().expect("probe profile lock");
    if let Some(profile) = report.profile.take() {
        profiles.push((quality.rate_ceiling, profile));
    }
    // Probes land in worker-completion order; re-key by rate so the
    // profile document is independent of scheduling.
    profiles.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("probe rates are finite"));
    Ok((point, Some(profiles)))
}

/// Runs one latency measurement at `fraction` of the network's saturation.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn latency_at_fraction(
    architecture: Architecture,
    benchmark: Benchmark,
    fraction: f64,
    quality: &Quality,
) -> Result<LatencyCell, SimError> {
    let network =
        Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(quality.seed))?;
    let saturation = saturation_of(&network, benchmark, quality)?;
    let load = (saturation.injected_gfs * fraction).max(0.02);
    let run = RunConfig::new(benchmark, load)?
        .with_phases(quality.measure_phases_for(benchmark))
        .with_shards(quality.shards);
    let mut report = network.run(&run)?;
    Ok(LatencyCell {
        architecture,
        benchmark,
        saturation,
        load_gfs: load,
        mean_latency_ps: report.latency.mean().map(|d| d.as_ps()).unwrap_or_default(),
        p50_latency_ps: report
            .latency
            .median()
            .map(|d| d.as_ps())
            .unwrap_or_default(),
        p99_latency_ps: report.latency.p99().map(|d| d.as_ps()).unwrap_or_default(),
        packets: report.packets_measured,
    })
}

/// Figure 6(a): average network latency at 25 % load for the contribution
/// trajectory (Baseline, BasicNonSpeculative, BasicHybridSpeculative,
/// OptHybridSpeculative) across all six benchmarks.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn fig6a(quality: &Quality) -> Result<Vec<LatencyCell>, SimError> {
    latency_grid(&Architecture::CONTRIBUTION_TRAJECTORY, quality)
}

/// Figure 6(b): average network latency at 25 % load for the design-space
/// exploration (OptNonSpeculative, OptHybridSpeculative,
/// OptAllSpeculative) across all six benchmarks.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn fig6b(quality: &Quality) -> Result<Vec<LatencyCell>, SimError> {
    latency_grid(&Architecture::DESIGN_SPACE, quality)
}

fn latency_grid(
    architectures: &[Architecture],
    quality: &Quality,
) -> Result<Vec<LatencyCell>, SimError> {
    let cells: Vec<(Architecture, Benchmark)> = architectures
        .iter()
        .flat_map(|&architecture| {
            Benchmark::ALL
                .into_iter()
                .map(move |benchmark| (architecture, benchmark))
        })
        .collect();
    parallel_map(quality.jobs, cells, |(architecture, benchmark)| {
        latency_at_fraction(architecture, benchmark, 0.25, quality)
    })
    .into_iter()
    .collect()
}

/// Table 1 (left half): saturation throughput for all six networks across
/// all six benchmarks.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn table1_throughput(
    quality: &Quality,
) -> Result<Vec<(Architecture, Benchmark, SaturationPoint)>, SimError> {
    let cells: Vec<(Architecture, Benchmark)> = Architecture::ALL
        .into_iter()
        .flat_map(|architecture| {
            Benchmark::ALL
                .into_iter()
                .map(move |benchmark| (architecture, benchmark))
        })
        .collect();
    parallel_map(quality.jobs, cells, |(architecture, benchmark)| {
        let network =
            Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(quality.seed))?;
        Ok((
            architecture,
            benchmark,
            saturation_of(&network, benchmark, quality)?,
        ))
    })
    .into_iter()
    .collect()
}

/// Table 1 (right half): total network power for all six networks across
/// the four power benchmarks, at 25 % of the *Baseline* network's
/// saturation load (normalized energy-per-packet comparison, §5.2(b)).
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
pub fn table1_power(quality: &Quality) -> Result<Vec<PowerCell>, SimError> {
    // The paper loads every network at "25% saturation load measured in
    // Baseline" — 25 % of the Baseline's Table 1 saturation throughput,
    // applied as the logical injection rate, so energy per packet is
    // compared at identical offered work. The Baseline saturations gate the
    // per-architecture runs, so they form their own parallel stage.
    let loads = parallel_map(quality.jobs, Benchmark::POWER_SET.to_vec(), |benchmark| {
        let baseline_sat = saturation(Architecture::Baseline, benchmark, quality)?;
        Ok::<_, SimError>((benchmark, (baseline_sat.delivered_gfs * 0.25).max(0.02)))
    });
    let mut cells = Vec::new();
    for result in loads {
        let (benchmark, load) = result?;
        for architecture in Architecture::ALL {
            cells.push((benchmark, load, architecture));
        }
    }
    parallel_map(quality.jobs, cells, |(benchmark, load, architecture)| {
        let network =
            Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(quality.seed))?;
        let run = RunConfig::new(benchmark, load)?
            .with_phases(quality.measure_phases_for(benchmark))
            .with_shards(quality.shards);
        let report = network.run(&run)?;
        Ok(PowerCell {
            architecture,
            benchmark,
            load_gfs: load,
            total_mw: report.power.total_mw(),
            dynamic_mw: report.power.dynamic_mw(),
        })
    })
    .into_iter()
    .collect()
}

/// §5.2(d): address-field sizes for 8×8 and 16×16 networks (and any other
/// sizes requested).
///
/// # Errors
///
/// Returns an error for invalid sizes.
pub fn addressing_rows(sizes: &[usize]) -> Result<Vec<AddressingRow>, SimError> {
    sizes
        .iter()
        .map(|&raw| {
            let size = MotSize::new(raw)?;
            Ok(AddressingRow {
                size,
                baseline_bits: Architecture::Baseline.address_bits(size),
                non_speculative_bits: Architecture::OptNonSpeculative.address_bits(size),
                hybrid_bits: Architecture::OptHybridSpeculative.address_bits(size),
                all_speculative_bits: Architecture::OptAllSpeculative.address_bits(size),
            })
        })
        .collect()
}

/// §5.2(a): the node-level area/latency table.
#[must_use]
pub fn node_cost_rows() -> Vec<NodeCostRow> {
    TimingModel::calibrated().node_cost_table()
}

/// Mean ± sample standard deviation over independent seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeedStats {
    /// Mean across seeds.
    pub mean: f64,
    /// Sample standard deviation across seeds (0 for a single seed).
    pub std_dev: f64,
    /// Number of seeds aggregated.
    pub seeds: usize,
}

impl SeedStats {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        assert!(n > 0, "need at least one sample");
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n > 1 {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        SeedStats {
            mean,
            std_dev,
            seeds: n,
        }
    }
}

/// Runs one (architecture, benchmark, rate) measurement across several
/// seeds and aggregates mean latency (ps) and total power (mW).
///
/// The paper reports single numbers from one long run; seed-replication
/// quantifies how much of any observed difference is noise. Returns
/// `(latency, power)` statistics.
///
/// # Errors
///
/// Propagates configuration errors from the underlying runs.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn measure_across_seeds(
    architecture: Architecture,
    benchmark: Benchmark,
    rate_gfs: f64,
    seeds: &[u64],
    quality: &Quality,
) -> Result<(SeedStats, SeedStats), SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let samples = parallel_map(quality.jobs, seeds.to_vec(), |seed| {
        let network = Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(seed))?;
        let run = RunConfig::new(benchmark, rate_gfs)?
            .with_phases(quality.measure_phases_for(benchmark))
            .with_shards(quality.shards);
        let report = network.run(&run)?;
        Ok::<_, SimError>((
            report
                .latency
                .mean()
                .map(|d| d.as_ps() as f64)
                .unwrap_or_default(),
            report.power.total_mw(),
        ))
    });
    let mut latencies = Vec::with_capacity(seeds.len());
    let mut powers = Vec::with_capacity(seeds.len());
    for sample in samples {
        let (latency, power) = sample?;
        latencies.push(latency);
        powers.push(power);
    }
    Ok((
        SeedStats::from_samples(&latencies),
        SeedStats::from_samples(&powers),
    ))
}

/// Convenience: one full measurement run (latency + throughput + power).
///
/// # Errors
///
/// Propagates configuration errors from the underlying run.
pub fn measure(
    architecture: Architecture,
    benchmark: Benchmark,
    rate_gfs: f64,
    quality: &Quality,
) -> Result<RunReport, SimError> {
    let network =
        Network::new(NetworkConfig::eight_by_eight(architecture).with_seed(quality.seed))?;
    let run = RunConfig::new(benchmark, rate_gfs)?
        .with_phases(quality.measure_phases_for(benchmark))
        .with_shards(quality.shards);
    network.run(&run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_rows_match_paper_exactly() {
        let rows = addressing_rows(&[8, 16]).unwrap();
        assert_eq!(rows[0].baseline_bits, 3);
        assert_eq!(rows[0].non_speculative_bits, 14);
        assert_eq!(rows[0].hybrid_bits, 12);
        assert_eq!(rows[0].all_speculative_bits, 8);
        assert_eq!(rows[1].baseline_bits, 4);
        assert_eq!(rows[1].non_speculative_bits, 30);
        assert_eq!(rows[1].hybrid_bits, 20);
        assert_eq!(rows[1].all_speculative_bits, 16);
    }

    #[test]
    fn addressing_rejects_bad_size() {
        assert!(addressing_rows(&[12]).is_err());
    }

    #[test]
    fn node_cost_rows_present() {
        let rows = node_cost_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.name.contains("Baseline")));
    }

    #[test]
    fn hotspot_saturation_matches_anchor() {
        let quality = Quality::quick();
        let point = saturation(Architecture::Baseline, Benchmark::Hotspot, &quality).unwrap();
        assert!(
            (0.24..=0.34).contains(&point.delivered_gfs),
            "hotspot saturation {point:?}"
        );
    }

    #[test]
    fn shuffle_saturation_ordering_baseline_vs_nonspec() {
        let quality = Quality::quick();
        let baseline = saturation(Architecture::Baseline, Benchmark::Shuffle, &quality).unwrap();
        let nonspec = saturation(
            Architecture::BasicNonSpeculative,
            Benchmark::Shuffle,
            &quality,
        )
        .unwrap();
        assert!(
            baseline.delivered_gfs > nonspec.delivered_gfs,
            "paper: baseline shuffle ({:.2}) beats BasicNonSpeculative ({:.2})",
            baseline.delivered_gfs,
            nonspec.delivered_gfs
        );
    }

    #[test]
    fn multicast_saturation_beats_serial_baseline() {
        let quality = Quality::quick();
        let serial = saturation(Architecture::Baseline, Benchmark::Multicast10, &quality).unwrap();
        let parallel = saturation(
            Architecture::BasicNonSpeculative,
            Benchmark::Multicast10,
            &quality,
        )
        .unwrap();
        assert!(
            parallel.delivered_gfs > serial.delivered_gfs,
            "parallel multicast {:.2} must beat serial {:.2}",
            parallel.delivered_gfs,
            serial.delivered_gfs
        );
    }

    #[test]
    fn seed_stats_mean_and_deviation() {
        let stats = SeedStats::from_samples(&[2.0, 4.0, 6.0]);
        assert!((stats.mean - 4.0).abs() < 1e-12);
        assert!((stats.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(stats.seeds, 3);
        let single = SeedStats::from_samples(&[5.0]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn measure_across_seeds_aggregates() {
        let (latency, power) = measure_across_seeds(
            Architecture::OptHybridSpeculative,
            Benchmark::UniformRandom,
            0.3,
            &[1, 2, 3],
            &Quality::quick(),
        )
        .expect("runs succeed");
        assert_eq!(latency.seeds, 3);
        assert!(latency.mean > 1_000.0, "latency mean {} ps", latency.mean);
        assert!(latency.std_dev < latency.mean, "noise dominates signal");
        assert!(power.mean > 1.0);
    }

    #[test]
    fn parallel_seeds_match_serial_bitwise() {
        let serial = measure_across_seeds(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast5,
            0.25,
            &[1, 2, 3, 4],
            &Quality::quick(),
        )
        .expect("serial runs succeed");
        let parallel = measure_across_seeds(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast5,
            0.25,
            &[1, 2, 3, 4],
            &Quality::quick().with_jobs(4),
        )
        .expect("parallel runs succeed");
        // Bit-identical, not approximately equal: the parallel runner must
        // be indistinguishable from the serial one (PartialEq on f64 fields
        // compares exact bit patterns for these finite values).
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_saturation_search_is_jobs_invariant() {
        let fanned = Quality::quick().with_probe_fan(3);
        let serial = saturation(Architecture::Baseline, Benchmark::Hotspot, &fanned).unwrap();
        let parallel = saturation(
            Architecture::Baseline,
            Benchmark::Hotspot,
            &fanned.clone().with_jobs(3),
        )
        .unwrap();
        assert_eq!(serial, parallel, "worker count changed the answer");
        // The k-section probes different rates than bisection but must land
        // on the same anchor within the search tolerance.
        let bisected = saturation(
            Architecture::Baseline,
            Benchmark::Hotspot,
            &Quality::quick(),
        )
        .unwrap();
        assert!(
            (serial.injected_gfs - bisected.injected_gfs).abs() <= 2.0 * fanned.tolerance,
            "k-section {serial:?} vs bisection {bisected:?}"
        );
    }

    #[test]
    fn profiled_saturation_matches_unprofiled_and_collects_probes() {
        let quality = Quality::quick();
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(quality.seed),
        )
        .unwrap();
        let plain = saturation_of(&network, Benchmark::Hotspot, &quality).unwrap();
        let (profiled, profiles) =
            saturation_of_profiled(&network, Benchmark::Hotspot, &quality).unwrap();
        assert_eq!(plain, profiled, "profiling must not perturb the search");
        assert!(profiles.len() >= 2, "probes plus the plateau run");
        assert!(
            profiles.windows(2).all(|w| w[0].0 <= w[1].0),
            "profiles sorted by probed rate"
        );
        assert!(profiles
            .iter()
            .all(|(_, p)| p.shards.iter().map(|s| s.events).sum::<u64>() > 0));
    }

    #[test]
    fn latency_cell_has_samples() {
        let cell = latency_at_fraction(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast5,
            0.25,
            &Quality::quick(),
        )
        .unwrap();
        assert!(cell.packets > 10);
        assert!(cell.mean_latency_ps > 500);
        assert!(cell.p50_latency_ps > 0);
        assert!(
            cell.p99_latency_ps >= cell.p50_latency_ps,
            "percentiles monotone"
        );
        assert!(cell.load_gfs > 0.0);
    }
}
