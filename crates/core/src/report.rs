//! Results of one simulation run.

use std::fmt;

use asynoc_kernel::Duration;
use asynoc_power::PowerReport;
use asynoc_stats::{latency::LatencyStats, throughput::ThroughputReport};
use asynoc_topology::{FaninNodeId, FanoutNodeId, MotSize};

/// Per-node activity over the measurement window: where the traffic (and
/// the speculation waste) actually went.
///
/// Indices follow the flat node numbering of `asynoc-topology`
/// ([`FanoutNodeId::flat_index`] / [`FaninNodeId::flat_index`]).
///
/// # Examples
///
/// ```
/// use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig};
///
/// let network = Network::new(NetworkConfig::eight_by_eight(
///     Architecture::BasicHybridSpeculative,
/// ))?;
/// let report = network.run(&RunConfig::quick(Benchmark::Hotspot, 0.1))?;
/// // Hotspot: every delivery funnels into destination 0's fanin tree.
/// let per_tree = report.activity.fanin_tree_fires();
/// assert!(per_tree[0] > 0);
/// assert!(per_tree[1..].iter().all(|&fires| fires == 0));
/// # Ok::<(), asynoc::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NodeActivity {
    size: MotSize,
    window: Duration,
    fanout_fires: Vec<u64>,
    fanout_throttles: Vec<u64>,
    fanout_busy: Vec<Duration>,
    fanin_fires: Vec<u64>,
    fanin_busy: Vec<Duration>,
}

impl NodeActivity {
    pub(crate) fn new(size: MotSize, window: Duration) -> Self {
        NodeActivity {
            size,
            window,
            fanout_fires: vec![0; size.total_fanout_nodes()],
            fanout_throttles: vec![0; size.total_fanout_nodes()],
            fanout_busy: vec![Duration::ZERO; size.total_fanout_nodes()],
            fanin_fires: vec![0; size.total_fanin_nodes()],
            fanin_busy: vec![Duration::ZERO; size.total_fanin_nodes()],
        }
    }

    pub(crate) fn record_fanout(&mut self, flat: usize, busy: Duration, throttled: bool) {
        self.fanout_fires[flat] += 1;
        if throttled {
            self.fanout_throttles[flat] += 1;
        }
        self.fanout_busy[flat] += busy;
    }

    pub(crate) fn record_fanin(&mut self, flat: usize, busy: Duration) {
        self.fanin_fires[flat] += 1;
        self.fanin_busy[flat] += busy;
    }

    /// The network size the indices refer to.
    #[must_use]
    pub fn size(&self) -> MotSize {
        self.size
    }

    /// Flits consumed by one fanout node (including throttled ones).
    #[must_use]
    pub fn fanout_fires(&self, id: FanoutNodeId) -> u64 {
        self.fanout_fires[id.flat_index(self.size)]
    }

    /// Redundant flits throttled at one fanout node.
    #[must_use]
    pub fn fanout_throttles(&self, id: FanoutNodeId) -> u64 {
        self.fanout_throttles[id.flat_index(self.size)]
    }

    /// Flits forwarded by one fanin node.
    #[must_use]
    pub fn fanin_fires(&self, id: FaninNodeId) -> u64 {
        self.fanin_fires[id.flat_index(self.size)]
    }

    /// Fraction of the measurement window one fanout node spent busy.
    #[must_use]
    pub fn fanout_utilization(&self, id: FanoutNodeId) -> f64 {
        self.fanout_busy[id.flat_index(self.size)].as_ps() as f64 / self.window.as_ps() as f64
    }

    /// Fraction of the measurement window one fanin node spent busy.
    #[must_use]
    pub fn fanin_utilization(&self, id: FaninNodeId) -> f64 {
        self.fanin_busy[id.flat_index(self.size)].as_ps() as f64 / self.window.as_ps() as f64
    }

    /// Total fanout fires per tree level (root = index 0) — shows where
    /// speculative broadcasts inflate traffic.
    #[must_use]
    pub fn fanout_level_fires(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.size.levels() as usize];
        for id in FanoutNodeId::all(self.size) {
            totals[id.level as usize] += self.fanout_fires[id.flat_index(self.size)];
        }
        totals
    }

    /// Total fanout throttles per tree level.
    #[must_use]
    pub fn fanout_level_throttles(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.size.levels() as usize];
        for id in FanoutNodeId::all(self.size) {
            totals[id.level as usize] += self.fanout_throttles[id.flat_index(self.size)];
        }
        totals
    }

    /// Total fanin fires per destination tree — the traffic each
    /// destination's arbitration tree absorbed.
    #[must_use]
    pub fn fanin_tree_fires(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.size.n()];
        for id in FaninNodeId::all(self.size) {
            totals[id.tree] += self.fanin_fires[id.flat_index(self.size)];
        }
        totals
    }

    /// The busiest fanout node and its utilization.
    #[must_use]
    pub fn busiest_fanout(&self) -> Option<(FanoutNodeId, f64)> {
        FanoutNodeId::all(self.size)
            .max_by_key(|id| self.fanout_busy[id.flat_index(self.size)])
            .map(|id| (id, self.fanout_utilization(id)))
    }

    /// The busiest fanin node and its utilization.
    #[must_use]
    pub fn busiest_fanin(&self) -> Option<(FaninNodeId, f64)> {
        FaninNodeId::all(self.size)
            .max_by_key(|id| self.fanin_busy[id.flat_index(self.size)])
            .map(|id| (id, self.fanin_utilization(id)))
    }
}

/// Everything measured during one run's measurement window.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-logical-packet latency (creation → arrival of the *last* header
    /// at its destinations, the paper's metric). Only packets created inside
    /// the measurement window are sampled.
    pub latency: LatencyStats,
    /// Offered / injected / delivered flit rates per source.
    pub throughput: ThroughputReport,
    /// Total network power over the measurement window.
    pub power: PowerReport,
    /// Logical packets whose latency was sampled.
    pub packets_measured: usize,
    /// Measured-window packets still in flight when the run ended (nonzero
    /// indicates saturation or an insufficient drain cap).
    pub packets_incomplete: usize,
    /// Redundant flit copies throttled at non-speculative nodes during the
    /// measurement window (the footprint of speculation).
    pub flits_throttled: u64,
    /// Flits delivered at destination sinks during the measurement window.
    pub flits_delivered: u64,
    /// Per-node activity over the measurement window.
    pub activity: NodeActivity,
    /// Flit-level trace events (empty unless the run enabled tracing via
    /// [`RunConfig::with_trace`](crate::RunConfig::with_trace)).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Discrete events the engine processed over the whole run (including
    /// warmup and drain) — a deterministic measure of simulation work.
    pub events_processed: u64,
    /// How many conservative shards executed the run (1 for serial).
    /// Results are bit-identical for every shard count; this records how
    /// the work was split, not what was computed.
    pub shards: usize,
    /// Events processed per shard, summing to [`events_processed`]
    /// (one entry for a serial run).
    ///
    /// [`events_processed`]: RunReport::events_processed
    pub shard_events: Vec<u64>,
    /// Host wall-clock time the run took. Excluded from determinism
    /// comparisons; use it to gauge simulator (not network) performance.
    pub wall: std::time::Duration,
    /// The engine's self-profile — per-shard scheduler/pool counters,
    /// barrier-wait histograms, and phase wall splits. `None` unless the
    /// run enabled [`RunConfig::with_profile`](crate::RunConfig::with_profile);
    /// host-side metadata only, never part of determinism comparisons.
    pub profile: Option<Box<asynoc_engine::probe::EngineProfile>>,
}

impl RunReport {
    /// Accepted/offered ratio (1.0 when nothing was offered).
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        self.throughput.acceptance()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packets={} latency[{}] throughput[{}] power[{}] throttled={} events={} shards={} shard_events={:?} wall={:?}",
            self.packets_measured,
            self.latency,
            self.throughput,
            self.power,
            self.flits_throttled,
            self.events_processed,
            self.shards,
            self.shard_events,
            self.wall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity() -> NodeActivity {
        NodeActivity::new(MotSize::new(8).expect("valid"), Duration::from_ns(100))
    }

    #[test]
    fn fresh_activity_is_zero() {
        let a = activity();
        assert_eq!(a.fanout_level_fires(), vec![0, 0, 0]);
        assert_eq!(a.fanout_level_throttles(), vec![0, 0, 0]);
        assert_eq!(a.fanin_tree_fires(), vec![0; 8]);
        let root = FanoutNodeId::root(0);
        assert_eq!(a.fanout_fires(root), 0);
        assert_eq!(a.fanout_utilization(root), 0.0);
    }

    #[test]
    fn recording_updates_the_right_node_and_level() {
        let mut a = activity();
        let size = a.size();
        let node = FanoutNodeId {
            tree: 3,
            level: 1,
            index: 1,
        };
        a.record_fanout(node.flat_index(size), Duration::from_ns(10), false);
        a.record_fanout(node.flat_index(size), Duration::from_ns(10), true);
        assert_eq!(a.fanout_fires(node), 2);
        assert_eq!(a.fanout_throttles(node), 1);
        assert_eq!(a.fanout_level_fires(), vec![0, 2, 0]);
        assert_eq!(a.fanout_level_throttles(), vec![0, 1, 0]);
        assert!((a.fanout_utilization(node) - 0.2).abs() < 1e-12);
        let (busiest, utilization) = a.busiest_fanout().expect("nodes exist");
        assert_eq!(busiest, node);
        assert!((utilization - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fanin_recording_aggregates_per_tree() {
        let mut a = activity();
        let size = a.size();
        let leaf = FaninNodeId {
            tree: 5,
            level: 2,
            index: 0,
        };
        let root = FaninNodeId::root(5);
        a.record_fanin(leaf.flat_index(size), Duration::from_ns(5));
        a.record_fanin(root.flat_index(size), Duration::from_ns(20));
        let per_tree = a.fanin_tree_fires();
        assert_eq!(per_tree[5], 2);
        assert_eq!(per_tree.iter().sum::<u64>(), 2);
        assert_eq!(a.fanin_fires(root), 1);
        let (busiest, utilization) = a.busiest_fanin().expect("nodes exist");
        assert_eq!(busiest, root);
        assert!((utilization - 0.2).abs() < 1e-12);
    }
}
