//! Error type for network construction and simulation runs.

use std::error::Error;
use std::fmt;

use asynoc_topology::TopologyError;
use asynoc_traffic::TrafficError;

/// Errors from building or running a simulated network.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The topology or architecture description is invalid.
    Topology(TopologyError),
    /// The traffic specification is invalid.
    Traffic(TrafficError),
    /// The requested injection rate is not positive and finite.
    InvalidRate {
        /// The rejected rate in flits/ns per source.
        rate: f64,
    },
    /// Packets must contain at least one flit.
    ZeroLengthPacket,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Topology(e) => write!(f, "topology error: {e}"),
            SimError::Traffic(e) => write!(f, "traffic error: {e}"),
            SimError::InvalidRate { rate } => {
                write!(
                    f,
                    "injection rate {rate} flits/ns is not positive and finite"
                )
            }
            SimError::ZeroLengthPacket => write!(f, "packets must have at least one flit"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Topology(e) => Some(e),
            SimError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for SimError {
    fn from(e: TopologyError) -> Self {
        SimError::Topology(e)
    }
}

impl From<TrafficError> for SimError {
    fn from(e: TrafficError) -> Self {
        SimError::Traffic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_sources() {
        let t: SimError = TopologyError::EmptyDestinationSet.into();
        assert!(matches!(t, SimError::Topology(_)));
        assert!(t.source().is_some());
        let t: SimError = TrafficError::ZeroLengthPacket.into();
        assert!(matches!(t, SimError::Traffic(_)));
    }

    #[test]
    fn display_messages() {
        assert!(SimError::InvalidRate { rate: -2.0 }
            .to_string()
            .contains("-2"));
        assert!(SimError::ZeroLengthPacket.to_string().contains("flit"));
        assert!(SimError::Topology(TopologyError::EmptyDestinationSet)
            .to_string()
            .contains("topology"));
    }
}
