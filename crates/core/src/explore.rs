//! Design-space exploration over speculation placements.
//!
//! The paper evaluates six hand-picked placements; this module searches the
//! whole placement space the [`SpecMap`] type opened up, scoring each point
//! with the models the simulator already collects — latency (p50/p99 of the
//! paper's last-header metric), total power, and silicon area — and
//! reporting the Pareto front over those objectives.
//!
//! Two search strategies:
//!
//! - **per-level** ([`Granularity::Level`]): the space is small (4 kinds per
//!   interior level × 2 obeying kinds at the leaf level, plus the serial
//!   baseline — 33 points on 8×8), so it is enumerated exhaustively;
//! - **per-node** ([`Granularity::Node`]): the space is astronomically
//!   large, so a deterministic beam search starts from the per-level front
//!   and mutates one node's kind at a time, keeping the
//!   [`beam_width`](ExploreSpec::beam_width) best placements per round
//!   until a round stops improving the front.
//!
//! Every evaluation is an ordinary deterministic [`Network::run`], fanned
//! out over [`parallel_map`]; results are bit-identical for every `jobs`
//! count. A [`max_points`](ExploreSpec::max_points) budget bounds the
//! number of simulations; when it is exhausted the report still carries the
//! front over everything evaluated so far, flagged
//! [`truncated`](ExploreReport::truncated).
//!
//! # Examples
//!
//! ```
//! use asynoc::explore::{ExploreSpec, Granularity};
//! use asynoc::{Architecture, Benchmark, MotSize};
//!
//! let spec = ExploreSpec::smoke(MotSize::new(4)?);
//! let report = asynoc::explore::explore(&spec)?;
//! assert!(!report.truncated);
//! assert!(report.points.iter().any(|p| p.on_front));
//! # Ok::<(), asynoc::SimError>(())
//! ```

use std::collections::BTreeSet;

use asynoc_engine::parallel_map;
use asynoc_kernel::Duration;
use asynoc_stats::Phases;
use asynoc_topology::{Architecture, FanoutKind, FanoutNodeId, MotSize, SpecMap};
use asynoc_traffic::Benchmark;

use crate::config::{NetworkConfig, RunConfig, DEFAULT_FLITS_PER_PACKET};
use crate::error::SimError;
use crate::sim::Network;

/// Interior levels may use any parallel-multicast kind.
const INTERIOR_KINDS: [FanoutKind; 4] = [
    FanoutKind::NonSpeculative,
    FanoutKind::Speculative,
    FanoutKind::OptNonSpeculative,
    FanoutKind::OptSpeculative,
];

/// Leaf-level nodes must obey route symbols (the non-throttling leaf
/// guarantee), so only the two non-speculative kinds are candidates.
const LEAF_KINDS: [FanoutKind; 2] = [FanoutKind::NonSpeculative, FanoutKind::OptNonSpeculative];

/// Placements whose run accepts less than this fraction of offered traffic
/// (or fails to drain) are scored but excluded from the front: their
/// latency percentiles describe a saturated network, not the offered load.
pub const MIN_ACCEPTANCE: f64 = 0.95;

/// Schema version tag of the exploration report document the CLI emits.
/// Bump only with a deliberate, documented format change.
pub const EXPLORE_SCHEMA: &str = "asynoc-explore-v1";

/// Beam search stops after this many rounds even if still improving.
const MAX_BEAM_ROUNDS: usize = 16;

/// Search granularity: the unit at which placements vary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Every node of a level shares one kind; the space is enumerated
    /// exhaustively.
    Level,
    /// Individual nodes may differ; searched by deterministic beam search
    /// seeded with the per-level front.
    Node,
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Granularity::Level => "level",
            Granularity::Node => "node",
        })
    }
}

impl std::str::FromStr for Granularity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "level" => Ok(Granularity::Level),
            "node" => Ok(Granularity::Node),
            other => Err(format!(
                "unknown granularity {other:?} (expected level or node)"
            )),
        }
    }
}

/// Everything one exploration needs: the workload, the search strategy,
/// and the execution budget.
#[derive(Clone, Debug)]
pub struct ExploreSpec {
    /// Network size explored.
    pub size: MotSize,
    /// Traffic pattern every placement is scored under.
    pub benchmark: Benchmark,
    /// Offered load, flits/ns per source.
    pub rate_gfs: f64,
    /// RNG seed shared by every run (placements differ, traffic does not).
    pub seed: u64,
    /// Flits per packet.
    pub flits_per_packet: u8,
    /// Warmup/measurement schedule per run.
    pub phases: Phases,
    /// Search granularity.
    pub granularity: Granularity,
    /// Placements kept per beam round (node granularity only).
    pub beam_width: usize,
    /// Worker threads for fanning runs out; results are bit-identical for
    /// every value.
    pub jobs: usize,
    /// Conservative shards per individual run.
    pub shards: usize,
    /// Maximum number of placements to simulate; `None` is unbounded. An
    /// exhausted budget truncates the search but still reports the front
    /// over everything evaluated.
    pub max_points: Option<usize>,
}

impl ExploreSpec {
    /// The paper-centric default: Multicast10 at 0.3 GF/s, quick windows,
    /// exhaustive per-level search.
    #[must_use]
    pub fn new(size: MotSize) -> Self {
        ExploreSpec {
            size,
            benchmark: Benchmark::Multicast10,
            rate_gfs: 0.3,
            seed: 0,
            flits_per_packet: DEFAULT_FLITS_PER_PACKET,
            phases: Phases::new(Duration::from_ns(80), Duration::from_ns(800)),
            granularity: Granularity::Level,
            beam_width: 4,
            jobs: 1,
            shards: 1,
            max_points: None,
        }
    }

    /// A tiny deterministic configuration for CI smoke tests: short
    /// windows and a light multicast load.
    #[must_use]
    pub fn smoke(size: MotSize) -> Self {
        ExploreSpec {
            rate_gfs: 0.2,
            phases: Phases::new(Duration::from_ns(40), Duration::from_ns(300)),
            ..ExploreSpec::new(size)
        }
    }
}

/// One evaluated placement and its objective scores.
#[derive(Clone, Debug)]
pub struct PlacementScore {
    /// The placement itself (its `Display` form is the canonical identity).
    pub map: SpecMap,
    /// The canonical preset this placement equals, if any.
    pub preset: Option<Architecture>,
    /// Mean packet latency, picoseconds.
    pub mean_ps: u64,
    /// Median packet latency, picoseconds.
    pub p50_ps: u64,
    /// 99th-percentile packet latency, picoseconds.
    pub p99_ps: u64,
    /// Total network power over the measurement window, milliwatts.
    pub power_mw: f64,
    /// Total network silicon area, square micrometres.
    pub area_um2: f64,
    /// Packet-header address-field width, bits.
    pub address_bits: usize,
    /// Accepted/offered throughput ratio.
    pub acceptance: f64,
    /// Whether the placement sustained the offered load (see
    /// [`MIN_ACCEPTANCE`]); infeasible points never join the front.
    pub feasible: bool,
    /// Whether the placement is Pareto-optimal among feasible points.
    pub on_front: bool,
}

impl PlacementScore {
    /// The minimized objective vector: p50 latency, p99 latency, power,
    /// area.
    #[must_use]
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.p50_ps as f64,
            self.p99_ps as f64,
            self.power_mw,
            self.area_um2,
        ]
    }
}

/// The regression-guard verdict for one preset against the front.
#[derive(Clone, Debug)]
pub struct GuardOutcome {
    /// The guarded preset.
    pub architecture: Architecture,
    /// Tolerance the guard was checked at (relative, per objective).
    pub tolerance: f64,
    /// Measured ε: the smallest tolerance at which the preset is
    /// ε-Pareto-optimal (0 when it is on the front).
    pub epsilon: f64,
    /// Whether the preset is exactly on the front.
    pub on_front: bool,
    /// Whether `epsilon <= tolerance`.
    pub within_tolerance: bool,
}

/// The outcome of one exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Every evaluated placement, sorted by canonical map string.
    pub points: Vec<PlacementScore>,
    /// Distinct placements enumerated as candidates (evaluated or queued
    /// when the budget ran out).
    pub space: usize,
    /// Placements actually simulated.
    pub evaluated: usize,
    /// `true` when the `max_points` budget stopped the search early; the
    /// front then covers only the evaluated prefix.
    pub truncated: bool,
}

impl ExploreReport {
    /// The Pareto-optimal placements, sorted by canonical map string.
    #[must_use]
    pub fn front(&self) -> Vec<&PlacementScore> {
        self.points.iter().filter(|p| p.on_front).collect()
    }

    /// Checks one preset against the front: is it Pareto-optimal, or
    /// within `tolerance` of a front point in every objective?
    ///
    /// A placement `x` is within tolerance `t` when no front point beats
    /// it by more than a fraction `t` in *every* objective simultaneously
    /// (ε-Pareto-optimality). Returns `None` if the preset was never
    /// evaluated (possible only under a truncating budget) or is
    /// infeasible at the explored load.
    #[must_use]
    pub fn guard(&self, architecture: Architecture, tolerance: f64) -> Option<GuardOutcome> {
        let point = self
            .points
            .iter()
            .find(|p| p.preset == Some(architecture))?;
        if !point.feasible {
            return None;
        }
        let x = point.objectives();
        let mut epsilon = 0.0f64;
        for front in self.points.iter().filter(|p| p.on_front) {
            let p = front.objectives();
            let margin = (0..x.len())
                .map(|i| 1.0 - p[i] / x[i])
                .fold(f64::INFINITY, f64::min);
            epsilon = epsilon.max(margin);
        }
        Some(GuardOutcome {
            architecture,
            tolerance,
            epsilon,
            on_front: point.on_front,
            within_tolerance: epsilon <= tolerance,
        })
    }
}

/// Runs one exploration. See the [module docs](self) for strategy details.
///
/// # Errors
///
/// Returns any [`SimError`] a constituent run produces (invalid rate,
/// topology mismatch, ...).
pub fn explore(spec: &ExploreSpec) -> Result<ExploreReport, SimError> {
    let mut budget = spec.max_points.unwrap_or(usize::MAX);
    let mut truncated = false;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut points: Vec<PlacementScore> = Vec::new();

    let seeds = level_space(spec.size);
    for map in &seeds {
        seen.insert(map.to_string());
    }
    evaluate_batch(spec, seeds, &mut budget, &mut truncated, &mut points)?;

    if spec.granularity == Granularity::Node && !truncated {
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > MAX_BEAM_ROUNDS {
                break;
            }
            mark_front(&mut points);
            let before = front_signature(&points);
            let mut fresh: Vec<SpecMap> = Vec::new();
            for map in select_beam(&points, spec.beam_width) {
                for neighbor in neighbors(&map) {
                    let key = neighbor.to_string();
                    if seen.insert(key) {
                        fresh.push(neighbor);
                    }
                }
            }
            if fresh.is_empty() {
                break;
            }
            evaluate_batch(spec, fresh, &mut budget, &mut truncated, &mut points)?;
            mark_front(&mut points);
            if truncated || front_signature(&points) == before {
                break;
            }
        }
    }

    points.sort_by_key(|p| p.map.to_string());
    mark_front(&mut points);
    Ok(ExploreReport {
        space: seen.len(),
        evaluated: points.len(),
        truncated,
        points,
    })
}

/// Scores one placement with a single deterministic run.
///
/// # Errors
///
/// Returns any [`SimError`] the run produces.
pub fn evaluate(spec: &ExploreSpec, map: &SpecMap) -> Result<PlacementScore, SimError> {
    let label = map.label().unwrap_or(Architecture::OptHybridSpeculative);
    let config = NetworkConfig::new(spec.size, label)
        .with_seed(spec.seed)
        .with_flits_per_packet(spec.flits_per_packet)
        .with_spec_map(map)?;
    let network = Network::new(config)?;
    let run = RunConfig::new(spec.benchmark, spec.rate_gfs)?
        .with_phases(spec.phases)
        .with_shards(spec.shards);
    let mut report = network.run(&run)?;
    let acceptance = report.acceptance();
    let feasible = report.packets_measured > 0
        && report.packets_incomplete == 0
        && acceptance >= MIN_ACCEPTANCE;
    Ok(PlacementScore {
        preset: map.label(),
        mean_ps: report.latency.mean().map_or(u64::MAX, |d| d.as_ps()),
        p50_ps: report.latency.median().map_or(u64::MAX, |d| d.as_ps()),
        p99_ps: report.latency.p99().map_or(u64::MAX, |d| d.as_ps()),
        power_mw: report.power.total_mw(),
        area_um2: network.area_um2(),
        address_bits: map.address_bits(),
        acceptance,
        feasible,
        on_front: false,
        map: map.clone(),
    })
}

/// The exhaustive per-level candidate space: the serial baseline plus every
/// legal per-level kind assignment, in deterministic order.
#[must_use]
pub fn level_space(size: MotSize) -> Vec<SpecMap> {
    let levels = size.levels() as usize;
    let mut assignments: Vec<Vec<FanoutKind>> = vec![Vec::new()];
    for level in 0..levels {
        let candidates: &[FanoutKind] = if level + 1 == levels {
            &LEAF_KINDS
        } else {
            &INTERIOR_KINDS
        };
        assignments = assignments
            .into_iter()
            .flat_map(|prefix| {
                candidates.iter().map(move |kind| {
                    let mut next = prefix.clone();
                    next.push(*kind);
                    next
                })
            })
            .collect();
    }
    let mut maps = vec![SpecMap::preset(Architecture::Baseline, size)];
    maps.extend(assignments.into_iter().map(|kinds| {
        SpecMap::from_levels(size, kinds).expect("level-space candidates are valid by construction")
    }));
    maps
}

/// Single-node mutations of one placement, in flat-node order.
fn neighbors(map: &SpecMap) -> Vec<SpecMap> {
    let size = map.size();
    let mut out = Vec::new();
    for node in FanoutNodeId::all(size) {
        let current = map.kind_of(node);
        let candidates: &[FanoutKind] = if node.is_leaf_level(size) {
            &LEAF_KINDS
        } else {
            &INTERIOR_KINDS
        };
        for &kind in candidates {
            if kind == current {
                continue;
            }
            // The serial baseline has no legal single-node mutations; skip
            // rejected candidates rather than aborting the search.
            if let Ok(mutated) = map.clone().with_node(node, kind) {
                out.push(mutated);
            }
        }
    }
    out
}

/// Evaluates up to `budget` of `maps` in parallel, appending scores in
/// enumeration order. Sets `truncated` if the budget cut the batch short.
fn evaluate_batch(
    spec: &ExploreSpec,
    mut maps: Vec<SpecMap>,
    budget: &mut usize,
    truncated: &mut bool,
    points: &mut Vec<PlacementScore>,
) -> Result<(), SimError> {
    if maps.len() > *budget {
        maps.truncate(*budget);
        *truncated = true;
    }
    *budget -= maps.len();
    if maps.is_empty() {
        return Ok(());
    }
    let jobs = spec.jobs.max(1);
    let scored = parallel_map(jobs, maps, move |map| evaluate(spec, &map));
    for score in scored {
        points.push(score?);
    }
    Ok(())
}

/// Recomputes the `on_front` flag over all feasible points.
fn mark_front(points: &mut [PlacementScore]) {
    let objectives: Vec<Option<[f64; 4]>> = points
        .iter()
        .map(|p| p.feasible.then(|| p.objectives()))
        .collect();
    for i in 0..points.len() {
        points[i].on_front = match objectives[i] {
            None => false,
            Some(x) => !objectives
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.is_some_and(|p| dominates(p, x))),
        };
    }
}

/// `true` when `a` is no worse than `b` everywhere and better somewhere.
fn dominates(a: [f64; 4], b: [f64; 4]) -> bool {
    let mut strictly = false;
    for i in 0..a.len() {
        if a[i] > b[i] {
            return false;
        }
        if a[i] < b[i] {
            strictly = true;
        }
    }
    strictly
}

/// The canonical identity of the current front (for convergence checks).
fn front_signature(points: &[PlacementScore]) -> BTreeSet<String> {
    points
        .iter()
        .filter(|p| p.on_front)
        .map(|p| p.map.to_string())
        .collect()
}

/// The placements the next beam round mutates: front members first, then
/// the best scalarized runners-up, deterministically tie-broken by map
/// string.
fn select_beam(points: &[PlacementScore], beam_width: usize) -> Vec<SpecMap> {
    let feasible: Vec<&PlacementScore> = points.iter().filter(|p| p.feasible).collect();
    if feasible.is_empty() {
        return Vec::new();
    }
    let mut best = [f64::INFINITY; 4];
    for p in &feasible {
        let obj = p.objectives();
        for i in 0..best.len() {
            best[i] = best[i].min(obj[i]);
        }
    }
    let scalar = |p: &PlacementScore| -> f64 {
        let obj = p.objectives();
        (0..obj.len())
            .map(|i| obj[i] / best[i].max(f64::MIN_POSITIVE))
            .sum()
    };
    let mut ranked: Vec<(&PlacementScore, f64)> =
        feasible.iter().map(|p| (*p, scalar(p))).collect();
    ranked.sort_by(|(a, sa), (b, sb)| {
        (!a.on_front)
            .cmp(&!b.on_front)
            .then(sa.partial_cmp(sb).unwrap_or(std::cmp::Ordering::Equal))
            .then_with(|| a.map.to_string().cmp(&b.map.to_string()))
    });
    ranked
        .into_iter()
        .take(beam_width.max(1))
        .map(|(p, _)| p.map.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size4() -> MotSize {
        MotSize::new(4).unwrap()
    }

    #[test]
    fn level_space_counts() {
        // 4×4 has 2 levels: 4 interior × 2 leaf + baseline = 9.
        assert_eq!(level_space(size4()).len(), 9);
        // 8×8 has 3 levels: 4 × 4 × 2 + baseline = 33.
        assert_eq!(level_space(MotSize::new(8).unwrap()).len(), 33);
    }

    #[test]
    fn level_space_contains_all_presets() {
        let space = level_space(MotSize::new(8).unwrap());
        for arch in Architecture::ALL {
            assert!(
                space.iter().any(|m| m.label() == Some(arch)),
                "{arch} missing from level space"
            );
        }
    }

    #[test]
    fn exhaustive_smoke_explore_has_a_front() {
        let report = explore(&ExploreSpec::smoke(size4())).unwrap();
        assert_eq!(report.evaluated, 9);
        assert_eq!(report.space, 9);
        assert!(!report.truncated);
        assert!(!report.front().is_empty());
        // Points are sorted by canonical map string.
        let keys: Vec<String> = report.points.iter().map(|p| p.map.to_string()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn explore_is_jobs_invariant() {
        let mut one = ExploreSpec::smoke(size4());
        one.jobs = 1;
        let mut four = ExploreSpec::smoke(size4());
        four.jobs = 4;
        let a = explore(&one).unwrap();
        let b = explore(&four).unwrap();
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.map, y.map);
            assert_eq!(x.p50_ps, y.p50_ps);
            assert_eq!(x.p99_ps, y.p99_ps);
            assert_eq!(x.power_mw.to_bits(), y.power_mw.to_bits());
            assert_eq!(x.on_front, y.on_front);
        }
    }

    #[test]
    fn budget_truncates_but_still_reports_a_front() {
        let mut spec = ExploreSpec::smoke(size4());
        spec.max_points = Some(3);
        let report = explore(&spec).unwrap();
        assert!(report.truncated);
        assert_eq!(report.evaluated, 3);
        assert!(report.space >= 3);
        assert!(!report.front().is_empty());
    }

    #[test]
    fn guard_finds_presets_on_or_near_the_front() {
        let report = explore(&ExploreSpec::smoke(size4())).unwrap();
        let guard = report
            .guard(Architecture::OptHybridSpeculative, 0.05)
            .expect("preset evaluated");
        assert!(guard.epsilon >= 0.0);
        assert!(guard.on_front == (guard.epsilon == 0.0));
        // A front member always guards at tolerance 0.
        let front_preset = report
            .points
            .iter()
            .find(|p| p.on_front && p.preset.is_some());
        if let Some(p) = front_preset {
            let g = report.guard(p.preset.unwrap(), 0.0).unwrap();
            assert!(g.on_front);
            assert!(g.within_tolerance);
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates([1.0, 1.0, 1.0, 0.5], [1.0, 1.0, 1.0, 1.0]));
        assert!(!dominates([1.0, 1.0, 1.0, 1.0], [1.0, 1.0, 1.0, 1.0]));
        assert!(!dominates([2.0, 0.5, 0.5, 0.5], [1.0, 1.0, 1.0, 1.0]));
    }

    #[test]
    fn node_granularity_beam_search_runs() {
        let mut spec = ExploreSpec::smoke(size4());
        spec.granularity = Granularity::Node;
        spec.beam_width = 2;
        spec.max_points = Some(40);
        let report = explore(&spec).unwrap();
        assert!(report.evaluated >= 9, "beam search must extend the seeds");
        assert!(!report.front().is_empty());
        // Node-level mutations appeared in the candidate space.
        assert!(report.space > 9);
    }
}
