//! The MoT network simulator, expressed as an engine [`SimModel`].
//!
//! # Execution model
//!
//! Every bundled-data channel holds at most one flit. An entity (source,
//! fanout node, fanin node) *fires* when all of its preconditions hold —
//! a flit is present at its input, the output channels its protocol demands
//! are free, and its cycle floor has elapsed. Firing moves the flit into
//! the demanded output channel(s) (cloning it at multicast branch points
//! and speculative broadcasts), schedules the flit's arrival downstream
//! after the node's forward latency plus the wire delay, and schedules the
//! input channel to free after the node has generated its acknowledge
//! (`forward + ack_extra`, or just `drop_ack` for throttled flits).
//!
//! Sources, sinks, channels, the event queue, and the paper's §5.1
//! measurement protocol live in `asynoc-engine`; this module contributes
//! only what is MoT-specific — the fabric wiring, the fanout/fanin firing
//! rules, and the tree routing — via the private `MotModel`. Statistics,
//! power, and
//! tracing attach as [`Observer`]s (see [`crate::observers`]).

use asynoc_engine::{
    ArmedFaults, ChannelEnds, Ctx, FaultDomain, ForwardInfo, NodeKey, NodeRef, Observer, Partition,
    RunSpec, ShardModel, SimEvent, SimModel,
};
use asynoc_kernel::{Duration, Time};
use asynoc_nodes::{FaninState, FanoutState, FlitClass, TimingModel};
use asynoc_packet::{DestSet, RouteHeader};
use asynoc_topology::FanoutKind;
use asynoc_topology::{multicast_route, multicast_route_into, FaninNodeId, OutputPort};
use asynoc_traffic::SourceTraffic;

use crate::config::{NetworkConfig, RunConfig};
use crate::error::SimError;
use crate::fabric::{Downstream, Entity, Fabric};
use crate::observers::{ActivityObserver, PowerObserver, TraceObserver};
use crate::report::{NodeActivity, RunReport};

/// A ready-to-run simulated network.
///
/// Construction elaborates the full fabric (nodes, channels, wiring) once;
/// each [`run`](Network::run) then executes an independent simulation with
/// fresh dynamic state, so one `Network` can be reused across benchmarks
/// and injection rates.
///
/// # Examples
///
/// ```
/// use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig};
///
/// let network = Network::new(NetworkConfig::eight_by_eight(
///     Architecture::BasicNonSpeculative,
/// ))?;
/// let report = network.run(&RunConfig::quick(Benchmark::UniformRandom, 0.3))?;
/// assert!(report.acceptance() > 0.9);
/// # Ok::<(), asynoc::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    fabric: Fabric,
}

/// A node of the MoT fabric, as seen by the engine and its observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MotNode {
    /// Fanout (routing) node by flat index.
    Fanout(usize),
    /// Fanin (arbitration) node by flat index.
    Fanin(usize),
}

impl NodeKey for MotNode {
    fn node_key(&self) -> u64 {
        // Interleave the two flat index spaces; injective and stable.
        match *self {
            MotNode::Fanout(flat) => (flat as u64) << 1,
            MotNode::Fanin(flat) => ((flat as u64) << 1) | 1,
        }
    }
}

impl Network {
    /// Elaborates a network from its configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible for any constructible [`NetworkConfig`], but
    /// returns `Result` so future validation (e.g. custom speculation maps)
    /// does not break the API.
    pub fn new(config: NetworkConfig) -> Result<Self, SimError> {
        let fabric = Fabric::build(config.size(), config.plan());
        Ok(Network { config, fabric })
    }

    /// The configuration this network was built from.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Total network leakage power, milliwatts.
    #[must_use]
    pub fn leakage_mw(&self) -> f64 {
        self.fabric.leakage_mw(self.config.timing())
    }

    /// Total cell area of all nodes, µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        let timing = self.config.timing();
        let fanout: f64 = self
            .fabric
            .fanout_kind
            .iter()
            .map(|&k| timing.fanout_area(k))
            .sum();
        fanout + self.config.size().total_fanin_nodes() as f64 * timing.fanin_area_um2
    }

    /// Executes one benchmark run and reports its measurements.
    ///
    /// # Errors
    ///
    /// Returns an error if the traffic specification is invalid for this
    /// network (rate, benchmark/source mismatch).
    pub fn run(&self, run: &RunConfig) -> Result<RunReport, SimError> {
        self.run_with_observers(run, &mut [])
    }

    /// Executes one run with caller-supplied observers registered after
    /// the standard power/activity/trace set.
    ///
    /// Extra observers see the identical event stream the built-in ones
    /// do, in registration order, without perturbing the simulation.
    ///
    /// # Errors
    ///
    /// Returns an error if the traffic specification is invalid for this
    /// network (rate, benchmark/source mismatch).
    pub fn run_with_observers(
        &self,
        run: &RunConfig,
        extra: &mut [&mut dyn Observer<MotNode>],
    ) -> Result<RunReport, SimError> {
        self.execute(run, extra, None)
    }

    /// Executes one run with an armed fault table threaded into the
    /// engine's injection hooks (see [`asynoc_engine::run_with_faults`]).
    ///
    /// The caller keeps ownership of `faults` and reads back its
    /// [`summary`](ArmedFaults::summary) afterwards; target indices
    /// should come from [`fault_domain`](Network::fault_domain).
    ///
    /// # Errors
    ///
    /// Returns an error if the traffic specification is invalid for this
    /// network (rate, benchmark/source mismatch).
    pub fn run_with_faults(
        &self,
        run: &RunConfig,
        faults: &mut ArmedFaults,
        extra: &mut [&mut dyn Observer<MotNode>],
    ) -> Result<RunReport, SimError> {
        self.execute(run, extra, Some(faults))
    }

    /// The legal fault-injection targets of this network.
    ///
    /// Symbol-corruption sites are restricted to fanout nodes where a
    /// widened (`Both`) override is provably recoverable: the node is
    /// not a baseline node (baseline hardware has no replication path at
    /// all), and some deeper fanout level consists entirely of
    /// symbol-obeying kinds, so every spurious copy reads its
    /// default-`Drop` symbol there and throttles before arbitration —
    /// the same local-recovery region speculation itself relies on.
    #[must_use]
    pub fn fault_domain(&self) -> FaultDomain {
        let levels = self.config.size().levels();
        // A level is a guaranteed throttle stage iff *every* node on it
        // obeys its routing symbol (speculative kinds forward headers
        // regardless, letting spurious copies slip deeper).
        let mut level_throttles = vec![true; levels as usize];
        for (flat, &kind) in self.fabric.fanout_kind.iter().enumerate() {
            if !matches!(
                kind,
                FanoutKind::NonSpeculative | FanoutKind::OptNonSpeculative
            ) {
                level_throttles[self.fabric.fanout_coords[flat].level as usize] = false;
            }
        }
        let corrupt_sites = self
            .fabric
            .fanout_kind
            .iter()
            .enumerate()
            .filter(|&(flat, &kind)| {
                let level = self.fabric.fanout_coords[flat].level;
                kind != FanoutKind::Baseline
                    && (level + 1..levels).any(|m| level_throttles[m as usize])
            })
            .map(|(flat, _)| flat)
            .collect();
        FaultDomain {
            channels: self.fabric.channels.len(),
            endpoints: self.config.size().n(),
            corrupt_sites,
        }
    }

    fn execute(
        &self,
        run: &RunConfig,
        extra: &mut [&mut dyn Observer<MotNode>],
        faults: Option<&mut ArmedFaults>,
    ) -> Result<RunReport, SimError> {
        let config = &self.config;
        let n = config.size().n();
        let mut traffic = Vec::with_capacity(n);
        for s in 0..n {
            traffic.push(SourceTraffic::new(
                run.benchmark(),
                n,
                s,
                run.rate_gfs(),
                config.flits_per_packet(),
                config.seed(),
            )?);
        }

        let phases = run.phases();
        let mut power = PowerObserver::new(config.timing(), &self.fabric);
        let mut activity =
            ActivityObserver::new(NodeActivity::new(config.size(), phases.measure()));
        let mut trace = TraceObserver::new(&self.fabric, run.trace_limit());

        // `&mut dyn` is invariant in the trait object's lifetime, so the
        // caller's observers can't join a slice of short-lived local ones
        // directly; a forwarding adapter bridges the two lifetimes.
        struct Extras<'x, 'y>(&'x mut [&'y mut dyn Observer<MotNode>]);
        impl Observer<MotNode> for Extras<'_, '_> {
            fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, MotNode>) {
                for observer in self.0.iter_mut() {
                    observer.on_event(at, in_window, event);
                }
            }
        }
        let mut extras = Extras(extra);

        let model = MotModel::new(&self.fabric, config.timing());
        let spec = RunSpec::new(phases, run.drain())
            .with_scheduler(run.scheduler())
            .with_profile(run.profile())
            .with_progress(run.progress())
            .with_latency_cap(run.latency_cap());
        let observers: &mut [&mut dyn Observer<MotNode>] =
            &mut [&mut power, &mut activity, &mut trace, &mut extras];
        let shards = run.shards();
        let (engine, _model) = match faults {
            None => asynoc_engine::run_sharded(model, traffic, spec, shards, observers),
            Some(faults) => asynoc_engine::run_sharded_with_faults(
                model, traffic, spec, shards, faults, observers,
            ),
        };

        let power_report = power
            .into_ledger()
            .report(phases.measure(), self.leakage_mw());
        Ok(RunReport {
            latency: engine.latency,
            throughput: engine.throughput,
            power: power_report,
            packets_measured: engine.packets_measured,
            packets_incomplete: engine.packets_incomplete,
            flits_throttled: engine.flits_throttled,
            flits_delivered: engine.flits_delivered,
            activity: activity.into_activity(),
            trace: trace.into_events(),
            events_processed: engine.events_processed,
            shards: engine.shards,
            shard_events: engine.shard_events,
            wall: engine.wall,
            profile: engine.profile,
        })
    }
}

/// The MoT substrate: fabric wiring, node firing rules, tree routing.
///
/// Dynamic per-node state (speculation latches, arbitration fairness,
/// cycle floors) lives here; everything substrate-independent lives in
/// the engine.
#[derive(Clone)]
struct MotModel<'a> {
    fabric: &'a Fabric,
    timing: &'a TimingModel,
    fanout_state: Vec<FanoutState>,
    fanout_next_fire: Vec<Time>,
    fanin_state: Vec<FaninState>,
    fanin_next_fire: Vec<Time>,
}

impl<'a> MotModel<'a> {
    fn new(fabric: &'a Fabric, timing: &'a TimingModel) -> Self {
        let fanin_total = fabric.fanin_input.len();
        MotModel {
            fabric,
            timing,
            fanout_state: fabric
                .fanout_kind
                .iter()
                .map(|&k| FanoutState::new(k))
                .collect(),
            fanout_next_fire: vec![Time::ZERO; fabric.fanout_kind.len()],
            fanin_state: (0..fanin_total).map(|_| FaninState::new()).collect(),
            fanin_next_fire: vec![Time::ZERO; fanin_total],
        }
    }

    fn fire_fanout(&mut self, flat: usize, ctx: &mut Ctx<'_, '_, MotNode>) {
        let input = self.fabric.fanout_input[flat];
        let Some(flit_ref) = ctx.arrived(input) else {
            return;
        };
        let coords = self.fabric.fanout_coords[flat];
        let mut symbol = flit_ref
            .descriptor()
            .route()
            .symbol(coords.level, coords.index);
        let flit_kind = flit_ref.kind();
        let packet = flit_ref.descriptor().id().as_u64();
        if let Some((corrupted, fresh)) = ctx.fault_symbol(flat, packet, flit_kind.is_header()) {
            symbol = corrupted;
            if let Some(class) = fresh {
                // First read of the afflicted train: report the injection
                // once, even if the node then stalls and re-fires.
                let flit = ctx
                    .arrived(input)
                    .expect("flit checked present above")
                    .clone();
                ctx.emit(&SimEvent::Fault {
                    class,
                    site: flat,
                    flit: &flit,
                });
            }
        }
        let decision = self.fanout_state[flat].peek(flit_kind, symbol);

        if ctx.now() < self.fanout_next_fire[flat] {
            ctx.retry(MotNode::Fanout(flat), self.fanout_next_fire[flat]);
            return;
        }
        if !decision.is_drop() {
            // All demanded outputs must be free *simultaneously*: the
            // speculative node's C-element acknowledge and the
            // non-speculative node's parallel Reqout generation both couple
            // the outputs.
            for port in OutputPort::BOTH {
                let demanded = match port {
                    OutputPort::Top => decision.forward.wants_top(),
                    OutputPort::Bottom => decision.forward.wants_bottom(),
                };
                if demanded && !ctx.is_free(self.fabric.fanout_out[flat][port.index()]) {
                    return; // woken by that channel's free event
                }
            }
        }

        let committed = self.fanout_state[flat].decide(flit_kind, symbol);
        debug_assert_eq!(committed, decision);
        let flit = ctx.take_arrived(input);

        let kind = self.fabric.fanout_kind[flat];
        let timing = *self.timing.fanout(kind);
        let class = FlitClass::of(flit_kind);

        if decision.is_drop() {
            // Throttle: acknowledge upstream without forwarding.
            ctx.emit(&SimEvent::Drop {
                node: MotNode::Fanout(flat),
                flit: &flit,
                busy: timing.drop_ack,
            });
            ctx.free_after(input, timing.drop_ack);
        } else {
            let forward = timing.forward(class);
            let copies =
                u8::from(decision.forward.wants_top()) + u8::from(decision.forward.wants_bottom());
            ctx.emit(&SimEvent::Forward {
                node: MotNode::Fanout(flat),
                flit: &flit,
                info: ForwardInfo::Routed(decision.forward),
                copies,
                busy: timing.free_delay(class),
            });
            for port in OutputPort::BOTH {
                let demanded = match port {
                    OutputPort::Top => decision.forward.wants_top(),
                    OutputPort::Bottom => decision.forward.wants_bottom(),
                };
                if !demanded {
                    continue;
                }
                let out = self.fabric.fanout_out[flat][port.index()];
                ctx.launch(out, flit.clone(), forward + self.timing.wire_delay);
            }
            ctx.free_after(input, timing.free_delay(class));
        }
        self.fanout_next_fire[flat] = ctx.now() + timing.cycle_floor;
    }

    fn fire_fanin(&mut self, flat: usize, ctx: &mut Ctx<'_, '_, MotNode>) {
        let [c0, c1] = self.fabric.fanin_input[flat];
        let p0 = ctx.arrived(c0).is_some();
        let p1 = ctx.arrived(c1).is_some();
        let Some(winner) = self.fanin_state[flat].select(p0, p1) else {
            return;
        };
        if ctx.now() < self.fanin_next_fire[flat] {
            ctx.retry(MotNode::Fanin(flat), self.fanin_next_fire[flat]);
            return;
        }
        let out = self.fabric.fanin_out[flat];
        if !ctx.is_free(out) {
            return; // woken when the output drains
        }

        let input_channel = [c0, c1][winner];
        let flit = ctx.take_arrived(input_channel);
        self.fanin_state[flat].advance(winner, flit.kind());

        let timing = self.timing.fanin;
        let class = FlitClass::of(flit.kind());
        ctx.emit(&SimEvent::Forward {
            node: MotNode::Fanin(flat),
            flit: &flit,
            info: ForwardInfo::Arbitrated { input: winner },
            copies: 1,
            busy: timing.free_delay(class),
        });
        ctx.launch(out, flit, timing.forward(class) + self.timing.wire_delay);
        ctx.free_after(input_channel, timing.free_delay(class));
        self.fanin_next_fire[flat] = ctx.now() + timing.cycle_floor;
    }
}

impl SimModel for MotModel<'_> {
    type Node = MotNode;

    fn endpoints(&self) -> usize {
        self.fabric.size.n()
    }

    fn channel_count(&self) -> usize {
        self.fabric.channels.len()
    }

    fn channel_ends(&self, channel: usize) -> ChannelEnds<MotNode> {
        let wiring = &self.fabric.channels[channel];
        let upstream = match wiring.upstream {
            Entity::Source(s) => NodeRef::Source(s),
            Entity::Fanout(f) => NodeRef::Node(MotNode::Fanout(f)),
            Entity::Fanin(f) => NodeRef::Node(MotNode::Fanin(f)),
        };
        let downstream = match wiring.downstream {
            Downstream::Fanout(f) => NodeRef::Node(MotNode::Fanout(f)),
            Downstream::Fanin { flat, .. } => NodeRef::Node(MotNode::Fanin(flat)),
            Downstream::Sink(d) => NodeRef::Sink(d),
        };
        ChannelEnds {
            upstream,
            downstream,
        }
    }

    fn source_channel(&self, source: usize) -> usize {
        self.fabric.source_out[source]
    }

    fn source_wire_delay(&self) -> Duration {
        self.timing.wire_delay
    }

    fn source_cycle(&self) -> Duration {
        self.timing.source_cycle
    }

    fn sink_ack(&self) -> Duration {
        self.timing.sink_ack
    }

    fn serializes_multicast(&self) -> bool {
        self.fabric.serializes_multicast
    }

    fn route(&self, source: usize, dests: DestSet) -> RouteHeader {
        multicast_route(self.fabric.size, source, dests)
            .expect("benchmark destinations are validated at construction")
    }

    fn route_into(&self, source: usize, dests: DestSet, header: &mut RouteHeader) {
        multicast_route_into(self.fabric.size, source, dests, header)
            .expect("benchmark destinations are validated at construction");
    }

    fn fire(&mut self, node: MotNode, ctx: &mut Ctx<'_, '_, MotNode>) {
        match node {
            MotNode::Fanout(flat) => self.fire_fanout(flat, ctx),
            MotNode::Fanin(flat) => self.fire_fanin(flat, ctx),
        }
    }
}

impl MotModel<'_> {
    /// The smallest delay that can cross a shard cut: every cut channel
    /// is a fanout-leaf → fanin-leaf link, crossed forward by a fanout
    /// launch (`forward + wire`) and backward by the fanin's acknowledge
    /// (`free_delay`). Taking the minimum over every node kind and flit
    /// class present is conservative — at worst the windows are a little
    /// narrower than strictly necessary.
    fn min_cut_delay(&self) -> Duration {
        let wire = self.timing.wire_delay;
        let classes = [FlitClass::Header, FlitClass::Body];
        let per_kind = |timing: &asynoc_nodes::KindTiming| {
            classes
                .iter()
                .flat_map(|&class| [timing.forward(class) + wire, timing.free_delay(class)])
                .min()
                .expect("two classes considered")
        };
        self.fabric
            .fanout_kind
            .iter()
            .map(|&kind| per_kind(self.timing.fanout(kind)))
            .chain(std::iter::once(per_kind(&self.timing.fanin)))
            .min()
            .expect("network has nodes")
    }
}

impl ShardModel for MotModel<'_> {
    /// Bands of whole endpoint trees: source `s`'s fanout tree and sink
    /// `d`'s fanin tree live with their endpoints, so the only channels
    /// crossing shards are fanout-leaf → fanin-leaf links.
    fn partition(&self, shards: usize) -> Partition {
        let n = self.fabric.size.n();
        let shards = shards.clamp(1, n);
        let lookahead = if shards > 1 {
            self.min_cut_delay()
        } else {
            // Unused on the serial path, but must be non-zero.
            Duration::from_ps(1)
        };
        let size = self.fabric.size;
        let band = |endpoint: usize| endpoint * shards / n;
        Partition::from_assignment(self, shards, lookahead, |node| match node {
            NodeRef::Source(s) => band(s),
            NodeRef::Sink(d) => band(d),
            NodeRef::Node(MotNode::Fanout(flat)) => band(self.fabric.fanout_coords[flat].tree),
            NodeRef::Node(MotNode::Fanin(flat)) => {
                band(FaninNodeId::from_flat_index(size, flat).tree)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, RunConfig};
    use asynoc_stats::Phases;
    use asynoc_topology::Architecture;
    use asynoc_traffic::Benchmark;

    fn quick_run(arch: Architecture, benchmark: Benchmark, rate: f64) -> RunReport {
        let network = Network::new(NetworkConfig::eight_by_eight(arch).with_seed(42)).unwrap();
        network.run(&RunConfig::quick(benchmark, rate)).unwrap()
    }

    #[test]
    fn light_load_delivers_everything() {
        for arch in Architecture::ALL {
            let report = quick_run(arch, Benchmark::UniformRandom, 0.1);
            assert!(report.packets_measured > 0, "{arch}: no packets measured");
            assert_eq!(
                report.packets_incomplete, 0,
                "{arch}: packets stuck at light load"
            );
            assert!(
                report.acceptance() > 0.99,
                "{arch}: acceptance {} at light load",
                report.acceptance()
            );
        }
    }

    #[test]
    fn zero_load_latency_reflects_path_length() {
        // At very light load, mean latency approaches the sum of node
        // forward latencies + wire hops. Baseline 8x8: 3 fanout (263 ps)
        // + 3 fanin (220 ps) + 7 wires (60 ps) ≈ 1.9 ns.
        let report = quick_run(Architecture::Baseline, Benchmark::Shuffle, 0.05);
        let mean = report.latency.mean().unwrap();
        assert!(
            mean.as_ps() > 1_500 && mean.as_ps() < 3_000,
            "unexpected zero-load latency {mean}"
        );
    }

    #[test]
    fn speculative_networks_are_faster_at_light_load() {
        let baseline = quick_run(
            Architecture::BasicNonSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let hybrid = quick_run(
            Architecture::BasicHybridSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let base_mean = baseline.latency.mean().unwrap();
        let hybrid_mean = hybrid.latency.mean().unwrap();
        assert!(
            hybrid_mean < base_mean,
            "hybrid {hybrid_mean} not faster than non-speculative {base_mean}"
        );
    }

    #[test]
    fn speculation_throttles_redundant_copies() {
        let hybrid = quick_run(
            Architecture::BasicHybridSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        assert!(
            hybrid.flits_throttled > 0,
            "speculative broadcasts must produce throttled copies"
        );
        let nonspec = quick_run(
            Architecture::BasicNonSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        assert_eq!(
            nonspec.flits_throttled, 0,
            "non-speculative unicast traffic has nothing to throttle"
        );
    }

    #[test]
    fn multicast_delivers_replicas() {
        let report = quick_run(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast10,
            0.3,
        );
        // Delivered exceeds injected because replicas fan out inside the
        // network.
        assert!(
            report.throughput.delivered > report.throughput.injected * 1.05,
            "expected replication: {}",
            report.throughput
        );
    }

    #[test]
    fn serial_baseline_injects_clones() {
        let report = quick_run(Architecture::Baseline, Benchmark::Multicast10, 0.2);
        // The baseline serializes multicasts into clones, so offered ≈
        // injected ≈ delivered (no in-network replication).
        assert!(report.packets_measured > 0);
        let ratio = report.throughput.delivered / report.throughput.injected.max(1e-9);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "serial multicast should not replicate in-network: {}",
            report.throughput
        );
    }

    #[test]
    fn overload_is_detected_as_non_acceptance() {
        // 3 flits/ns per source is far beyond any architecture's capacity.
        let network =
            Network::new(NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(1))
                .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 3.0).with_drain(false);
        let report = network.run(&run).unwrap();
        assert!(
            report.acceptance() < 0.9,
            "overload must show up as refused injections, got {}",
            report.acceptance()
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = quick_run(Architecture::OptAllSpeculative, Benchmark::Multicast5, 0.4);
        let b = quick_run(Architecture::OptAllSpeculative, Benchmark::Multicast5, 0.4);
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.flits_delivered, b.flits_delivered);
        assert_eq!(a.flits_throttled, b.flits_throttled);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn sharded_runs_match_serial_bit_for_bit() {
        for arch in [Architecture::Baseline, Architecture::OptHybridSpeculative] {
            let network = Network::new(NetworkConfig::eight_by_eight(arch).with_seed(7)).unwrap();
            let run = RunConfig::quick(Benchmark::Multicast5, 0.3).with_trace(512);
            let serial = network.run(&run).unwrap();
            assert_eq!(serial.shards, 1);
            for shards in [2, 3, 8] {
                let sharded = network.run(&run.clone().with_shards(shards)).unwrap();
                assert_eq!(sharded.shards, shards, "{arch}: shard count honoured");
                assert_eq!(
                    sharded.shard_events.iter().sum::<u64>(),
                    sharded.events_processed
                );
                assert_eq!(sharded.events_processed, serial.events_processed, "{arch}");
                assert_eq!(sharded.latency.mean(), serial.latency.mean(), "{arch}");
                assert_eq!(sharded.latency.count(), serial.latency.count());
                assert_eq!(sharded.throughput, serial.throughput, "{arch}");
                assert_eq!(sharded.packets_measured, serial.packets_measured);
                assert_eq!(sharded.packets_incomplete, serial.packets_incomplete);
                assert_eq!(sharded.flits_throttled, serial.flits_throttled, "{arch}");
                assert_eq!(sharded.flits_delivered, serial.flits_delivered, "{arch}");
                assert_eq!(sharded.trace, serial.trace, "{arch}: trace streams differ");
                assert_eq!(
                    format!("{:?}", sharded.activity),
                    format!("{:?}", serial.activity),
                    "{arch}: per-node activity differs"
                );
                assert!(
                    (sharded.power.total_mw() - serial.power.total_mw()).abs() < 1e-12,
                    "{arch}: power accounting differs"
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let network1 =
            Network::new(NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(1))
                .unwrap();
        let network2 =
            Network::new(NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(2))
                .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 0.3);
        let a = network1.run(&run).unwrap();
        let b = network2.run(&run).unwrap();
        assert_ne!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn hotspot_saturates_near_paper_anchor() {
        // All 8 sources hammer destination 0; the fanin root → sink stage
        // caps per-source throughput at ≈ 0.29 GF/s.
        let network =
            Network::new(NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(3))
                .unwrap();
        let run = RunConfig::new(Benchmark::Hotspot, 0.8)
            .unwrap()
            .with_phases(Phases::new(Duration::from_ns(200), Duration::from_ns(2000)))
            .with_drain(false);
        let report = network.run(&run).unwrap();
        let delivered = report.throughput.delivered;
        assert!(
            (0.26..=0.32).contains(&delivered),
            "hotspot ceiling {delivered} GF/s per source"
        );
    }

    #[test]
    fn power_scales_with_load() {
        let low = quick_run(Architecture::Baseline, Benchmark::UniformRandom, 0.1);
        let high = quick_run(Architecture::Baseline, Benchmark::UniformRandom, 0.4);
        assert!(
            high.power.total_mw() > low.power.total_mw(),
            "power must grow with activity: {} vs {}",
            high.power,
            low.power
        );
        assert!(low.power.leakage_mw() > 0.0);
    }

    #[test]
    fn custom_speculation_map_network_runs_and_throttles() {
        use asynoc_topology::SpeculationMap;
        let size = asynoc_topology::MotSize::new(8).unwrap();
        let map = SpeculationMap::custom(size, vec![false, true, false]).unwrap();
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
                .with_speculation_map(&map, true)
                .with_seed(42),
        )
        .unwrap();
        let report = network
            .run(&RunConfig::quick(Benchmark::Multicast10, 0.3))
            .unwrap();
        assert!(report.packets_measured > 0);
        assert_eq!(report.packets_incomplete, 0, "custom map lost packets");
        assert!(
            report.flits_throttled > 0,
            "mid-level speculation must produce throttled copies"
        );
    }

    #[test]
    fn activity_localizes_throttling_below_speculative_levels() {
        // In the hybrid (speculative root only), redundant copies die at
        // level 1 — the "local region" of local speculation.
        let report = quick_run(
            Architecture::BasicHybridSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let throttles = report.activity.fanout_level_throttles();
        assert_eq!(throttles[0], 0, "the root level has nothing to throttle");
        assert!(throttles[1] > 0, "wrong-path copies must die at level 1");
        assert_eq!(
            throttles[2], 0,
            "local speculation must confine waste to the region below the root"
        );
    }

    #[test]
    fn activity_throttling_widens_under_full_speculation() {
        // Almost-fully-speculative: copies travel further before dying at
        // the (non-speculative) leaf level.
        let report = quick_run(
            Architecture::OptAllSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let throttles = report.activity.fanout_level_throttles();
        assert!(
            throttles[2] > 0,
            "all-speculative waste must reach the leaf level"
        );
    }

    #[test]
    fn activity_counts_match_totals() {
        let report = quick_run(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast10,
            0.3,
        );
        let throttle_total: u64 = report.activity.fanout_level_throttles().iter().sum();
        assert_eq!(throttle_total, report.flits_throttled);
        let fanin_total: u64 = report.activity.fanin_tree_fires().iter().sum();
        assert!(fanin_total > 0);
        let (busiest, utilization) = report.activity.busiest_fanin().expect("nodes exist");
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "{busiest}: {utilization}"
        );
    }

    #[test]
    fn hotspot_activity_concentrates_on_one_fanin_tree() {
        let report = quick_run(Architecture::Baseline, Benchmark::Hotspot, 0.15);
        let per_tree = report.activity.fanin_tree_fires();
        assert!(per_tree[0] > 0);
        assert!(per_tree[1..].iter().all(|&fires| fires == 0));
        let (busiest, _) = report.activity.busiest_fanin().expect("nodes exist");
        assert_eq!(busiest.tree, 0, "hotspot bottleneck must sit in tree 0");
    }

    #[test]
    fn trace_records_a_packet_journey() {
        use crate::trace::TraceAction;
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(42),
        )
        .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 0.1).with_trace(500);
        let report = network.run(&run).unwrap();
        assert!(!report.trace.is_empty());
        assert!(report.trace.len() <= 500);
        // Times are non-decreasing.
        assert!(report.trace.windows(2).all(|w| w[0].time <= w[1].time));
        // With a speculative root, the trace must show both broadcasts and
        // throttles, and at least one delivery.
        assert!(report
            .trace
            .iter()
            .any(|e| e.action == TraceAction::Throttled));
        assert!(report
            .trace
            .iter()
            .any(|e| e.action == TraceAction::Delivered));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e.action, TraceAction::Forwarded(s) if s == asynoc_packet::RouteSymbol::Both)));
        // Every traced packet's journey starts with an injection.
        let first = &report.trace[0];
        assert_eq!(first.action, TraceAction::Injected);
    }

    #[test]
    fn tracing_off_by_default() {
        let report = quick_run(Architecture::Baseline, Benchmark::Shuffle, 0.1);
        assert!(report.trace.is_empty());
    }

    #[test]
    fn multicast_static_only_three_sources_multicast() {
        let report = quick_run(
            Architecture::OptHybridSpeculative,
            Benchmark::MulticastStatic,
            0.3,
        );
        assert!(report.packets_measured > 0);
        assert!(report.throughput.delivered > report.throughput.injected);
    }

    #[test]
    fn engine_counters_populate_the_report() {
        let report = quick_run(Architecture::Baseline, Benchmark::UniformRandom, 0.1);
        assert!(report.events_processed > 0, "engine processed no events");
        assert!(report.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn extra_observers_see_the_run_without_perturbing_it() {
        struct Counter {
            injects: u64,
            delivers: u64,
        }
        impl Observer<MotNode> for Counter {
            fn on_event(&mut self, _at: Time, _in_window: bool, event: &SimEvent<'_, MotNode>) {
                match event {
                    SimEvent::Inject { .. } => self.injects += 1,
                    SimEvent::Deliver { .. } => self.delivers += 1,
                    _ => {}
                }
            }
        }

        let network =
            Network::new(NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(42))
                .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 0.2);
        let plain = network.run(&run).unwrap();
        let mut counter = Counter {
            injects: 0,
            delivers: 0,
        };
        let observed = network
            .run_with_observers(&run, &mut [&mut counter])
            .unwrap();
        assert!(counter.injects > 0);
        assert!(counter.delivers > 0);
        assert_eq!(plain.latency.mean(), observed.latency.mean());
        assert_eq!(plain.flits_delivered, observed.flits_delivered);
        assert_eq!(plain.events_processed, observed.events_processed);
    }
}
