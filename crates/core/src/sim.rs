//! The event-driven network simulator.
//!
//! # Execution model
//!
//! Every bundled-data channel holds at most one flit. An entity (source,
//! fanout node, fanin node) *fires* when all of its preconditions hold —
//! a flit is present at its input, the output channels its protocol demands
//! are free, and its cycle floor has elapsed. Firing moves the flit into
//! the demanded output channel(s) (cloning it at multicast branch points
//! and speculative broadcasts), schedules the flit's arrival downstream
//! after the node's forward latency plus the wire delay, and schedules the
//! input channel to free after the node has generated its acknowledge
//! (`forward + ack_extra`, or just `drop_ack` for throttled flits).
//!
//! Blocked entities are not polled: whichever event unblocks them (an
//! arrival on their input, their output channel freeing) wakes exactly the
//! entity wired to that channel. Only cycle-floor stalls schedule explicit
//! retries. All ties pop in schedule order, so runs are bit-reproducible
//! for a given seed.
//!
//! # What is recorded
//!
//! Inside the measurement window: offered/injected/delivered flits, energy
//! deposits (node traversals, wire launches, throttled flits), and the
//! latency of every logical packet *created* in the window, measured to the
//! arrival of its last header — the paper's §5.1 protocol. After injection
//! stops, the run drains until all measured packets complete (bounded by a
//! drain cap so saturated runs still terminate).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use asynoc_kernel::{EventQueue, Time};
use asynoc_nodes::{FaninState, FanoutState, FlitClass, TimingModel};
use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId};
use asynoc_power::{EnergyCategory, EnergyLedger};
use asynoc_stats::{LatencyStats, Phases, ThroughputCounter};
use asynoc_topology::{multicast_route, OutputPort};
use asynoc_traffic::SourceTraffic;

use crate::config::{NetworkConfig, RunConfig};
use crate::error::SimError;
use crate::fabric::{Downstream, Entity, Fabric};
use crate::report::{NodeActivity, RunReport};
use crate::trace::{TraceAction, TraceEvent, TraceLocation, TraceRecorder};

/// A ready-to-run simulated network.
///
/// Construction elaborates the full fabric (nodes, channels, wiring) once;
/// each [`run`](Network::run) then executes an independent simulation with
/// fresh dynamic state, so one `Network` can be reused across benchmarks
/// and injection rates.
///
/// # Examples
///
/// ```
/// use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig};
///
/// let network = Network::new(NetworkConfig::eight_by_eight(
///     Architecture::BasicNonSpeculative,
/// ))?;
/// let report = network.run(&RunConfig::quick(Benchmark::UniformRandom, 0.3))?;
/// assert!(report.acceptance() > 0.9);
/// # Ok::<(), asynoc::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    fabric: Fabric,
}

impl Network {
    /// Elaborates a network from its configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible for any constructible [`NetworkConfig`], but
    /// returns `Result` so future validation (e.g. custom speculation maps)
    /// does not break the API.
    pub fn new(config: NetworkConfig) -> Result<Self, SimError> {
        let fabric = Fabric::build(config.size(), config.plan());
        Ok(Network { config, fabric })
    }

    /// The configuration this network was built from.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Total network leakage power, milliwatts.
    #[must_use]
    pub fn leakage_mw(&self) -> f64 {
        self.fabric.leakage_mw(self.config.timing())
    }

    /// Total cell area of all nodes, µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        let timing = self.config.timing();
        let fanout: f64 = self
            .fabric
            .fanout_kind
            .iter()
            .map(|&k| timing.fanout_area(k))
            .sum();
        fanout + self.config.size().total_fanin_nodes() as f64 * timing.fanin_area_um2
    }

    /// Executes one benchmark run and reports its measurements.
    ///
    /// # Errors
    ///
    /// Returns an error if the traffic specification is invalid for this
    /// network (rate, benchmark/source mismatch).
    pub fn run(&self, run: &RunConfig) -> Result<RunReport, SimError> {
        let mut sim = Simulation::new(self, run)?;
        sim.execute();
        Ok(sim.finish())
    }
}

/// Events driving the simulation.
#[derive(Clone, Debug)]
enum Event {
    /// Source `source` generates its next packet.
    Inject { source: usize },
    /// The flit in flight on `channel` reaches the downstream input.
    Arrive { channel: usize },
    /// `channel` completes its handshake and becomes free.
    FreeChannel { channel: usize },
    /// Re-attempt firing after a cycle-floor stall.
    Retry { entity: Entity },
}

/// Dynamic state of one channel.
#[derive(Clone, Debug)]
enum ChannelState {
    /// Empty; upstream may launch.
    Free,
    /// A flit was launched and is in flight.
    InFlight(Flit),
    /// The flit sits at the downstream input, awaiting consumption.
    Arrived(Flit),
    /// Consumed; the handshake is completing (ack in flight).
    Draining,
}

impl ChannelState {
    fn is_free(&self) -> bool {
        matches!(self, ChannelState::Free)
    }

    fn arrived(&self) -> Option<&Flit> {
        match self {
            ChannelState::Arrived(flit) => Some(flit),
            _ => None,
        }
    }
}

/// Latency bookkeeping for one logical packet.
#[derive(Clone, Copy, Debug)]
struct Pending {
    created_at: Time,
    /// Destinations that must still receive the header.
    awaiting: DestSet,
    measured: bool,
}

struct Simulation<'a> {
    fabric: &'a Fabric,
    timing: &'a TimingModel,
    flits_per_packet: u8,
    phases: Phases,
    drain: bool,
    injection_end: Time,
    hard_cap: Time,

    queue: EventQueue<Event>,
    now: Time,

    channels: Vec<ChannelState>,
    fanout_state: Vec<FanoutState>,
    fanout_next_fire: Vec<Time>,
    fanin_state: Vec<FaninState>,
    fanin_next_fire: Vec<Time>,
    source_queue: Vec<VecDeque<Flit>>,
    source_next_fire: Vec<Time>,
    traffic: Vec<SourceTraffic>,

    next_packet_id: u64,
    pending: HashMap<u64, Pending>,
    pending_measured: usize,

    latency: LatencyStats,
    throughput: ThroughputCounter,
    ledger: EnergyLedger,
    flits_throttled: u64,
    flits_delivered: u64,
    leakage_mw: f64,
    activity: NodeActivity,
    trace: TraceRecorder,
}

impl<'a> Simulation<'a> {
    fn new(network: &'a Network, run: &RunConfig) -> Result<Self, SimError> {
        let config = &network.config;
        let n = config.size().n();
        let phases = run.phases();
        let mut traffic = Vec::with_capacity(n);
        for s in 0..n {
            traffic.push(SourceTraffic::new(
                run.benchmark(),
                n,
                s,
                run.rate_gfs(),
                config.flits_per_packet(),
                config.seed(),
            )?);
        }

        let fabric = &network.fabric;
        let injection_end = phases.measurement_end();
        // Saturated runs never finish draining; cap the drain at one extra
        // measurement window plus warmup.
        let hard_cap = injection_end + phases.measure() + phases.warmup();

        let mut sim = Simulation {
            fabric,
            timing: config.timing(),
            flits_per_packet: config.flits_per_packet(),
            phases,
            drain: run.drain(),
            injection_end,
            hard_cap,
            queue: EventQueue::with_capacity(4096),
            now: Time::ZERO,
            channels: vec![ChannelState::Free; fabric.channels.len()],
            fanout_state: fabric.fanout_kind.iter().map(|&k| FanoutState::new(k)).collect(),
            fanout_next_fire: vec![Time::ZERO; fabric.fanout_kind.len()],
            fanin_state: (0..config.size().total_fanin_nodes())
                .map(|_| FaninState::new())
                .collect(),
            fanin_next_fire: vec![Time::ZERO; config.size().total_fanin_nodes()],
            source_queue: (0..n).map(|_| VecDeque::new()).collect(),
            source_next_fire: vec![Time::ZERO; n],
            traffic,
            next_packet_id: 0,
            pending: HashMap::new(),
            pending_measured: 0,
            latency: LatencyStats::new(),
            throughput: ThroughputCounter::new(n),
            ledger: EnergyLedger::new(),
            flits_throttled: 0,
            flits_delivered: 0,
            leakage_mw: network.leakage_mw(),
            activity: NodeActivity::new(config.size(), phases.measure()),
            trace: TraceRecorder::new(run.trace_limit()),
        };

        // Prime each source's first injection.
        for s in 0..n {
            let gap = sim.traffic[s].next_gap();
            sim.queue.schedule(Time::ZERO + gap, Event::Inject { source: s });
        }
        Ok(sim)
    }

    fn execute(&mut self) {
        while let Some((t, event)) = self.queue.pop() {
            self.now = t;
            if t > self.hard_cap {
                break;
            }
            if !self.drain && t >= self.injection_end {
                break;
            }
            match event {
                Event::Inject { source } => self.handle_inject(source),
                Event::Arrive { channel } => self.handle_arrive(channel),
                Event::FreeChannel { channel } => self.handle_free(channel),
                Event::Retry { entity } => self.try_fire(entity),
            }
            if self.drain && self.now >= self.injection_end && self.pending_measured == 0 {
                break;
            }
        }
    }

    fn finish(self) -> RunReport {
        let throughput = self.throughput.per_source_gfs(self.phases.measure());
        let power = self.ledger.report(self.phases.measure(), self.leakage_mw);
        let packets_measured = self.latency.count();
        RunReport {
            latency: self.latency,
            throughput,
            power,
            packets_measured,
            packets_incomplete: self.pending_measured,
            flits_throttled: self.flits_throttled,
            flits_delivered: self.flits_delivered,
            activity: self.activity,
            trace: self.trace.into_events(),
        }
    }

    fn alloc_id(&mut self) -> PacketId {
        let id = PacketId::new(self.next_packet_id);
        self.next_packet_id += 1;
        id
    }

    fn in_window(&self) -> bool {
        self.phases.in_measurement(self.now)
    }

    // ------------------------------------------------------------------
    // Injection
    // ------------------------------------------------------------------

    fn handle_inject(&mut self, source: usize) {
        if self.now >= self.injection_end {
            return;
        }
        let dests = self.traffic[source].next_dests();
        self.create_packets(source, dests);
        let gap = self.traffic[source].next_gap();
        self.queue
            .schedule(self.now + gap, Event::Inject { source });
        self.try_fire(Entity::Source(source));
    }

    fn create_packets(&mut self, source: usize, dests: DestSet) {
        let size = self.fabric.size;
        let measured = self.in_window();
        let logical = self.alloc_id();
        let flits = self.flits_per_packet;
        let serialize = self.fabric.serializes_multicast && dests.len() > 1;

        let mut offered_flits = 0u64;
        if serialize {
            // Serial multicast: one unicast clone per destination, queued
            // back to back; latency is accounted against the logical packet.
            for dest in dests.iter() {
                let id = self.alloc_id();
                let clone_dests = DestSet::unicast(dest);
                let route = multicast_route(size, source, clone_dests)
                    .expect("benchmark destinations are validated at construction");
                let descriptor = Arc::new(
                    PacketDescriptor::new(id, source, clone_dests, route, flits, self.now)
                        .with_group(logical),
                );
                self.source_queue[source].extend(Flit::train(&descriptor));
                offered_flits += u64::from(flits);
            }
        } else {
            let route = multicast_route(size, source, dests)
                .expect("benchmark destinations are validated at construction");
            let descriptor = Arc::new(PacketDescriptor::new(
                logical, source, dests, route, flits, self.now,
            ));
            self.source_queue[source].extend(Flit::train(&descriptor));
            offered_flits = u64::from(flits);
        }

        self.pending.insert(
            logical.as_u64(),
            Pending {
                created_at: self.now,
                awaiting: dests,
                measured,
            },
        );
        if measured {
            self.pending_measured += 1;
            self.throughput.record_offered(offered_flits);
        }
    }

    // ------------------------------------------------------------------
    // Channel events
    // ------------------------------------------------------------------

    fn handle_arrive(&mut self, channel: usize) {
        let state = std::mem::replace(&mut self.channels[channel], ChannelState::Free);
        let ChannelState::InFlight(flit) = state else {
            unreachable!("arrival on a channel that was not in flight");
        };
        self.channels[channel] = ChannelState::Arrived(flit);
        match self.fabric.channels[channel].downstream {
            Downstream::Sink(dest) => self.sink_consume(channel, dest),
            other => self.try_fire(other.entity()),
        }
    }

    fn handle_free(&mut self, channel: usize) {
        debug_assert!(
            matches!(self.channels[channel], ChannelState::Draining),
            "freed a channel that was not draining"
        );
        self.channels[channel] = ChannelState::Free;
        self.try_fire(self.fabric.channels[channel].upstream);
    }

    fn schedule_retry(&mut self, entity: Entity, at: Time) {
        self.queue.schedule(at, Event::Retry { entity });
    }

    fn try_fire(&mut self, entity: Entity) {
        match entity {
            Entity::Source(s) => self.fire_source(s),
            Entity::Fanout(f) => self.fire_fanout(f),
            Entity::Fanin(f) => self.fire_fanin(f),
            Entity::Sink(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Entities
    // ------------------------------------------------------------------

    fn fire_source(&mut self, source: usize) {
        if self.source_queue[source].is_empty() {
            return;
        }
        let channel = self.fabric.source_out[source];
        if !self.channels[channel].is_free() {
            return;
        }
        if self.now < self.source_next_fire[source] {
            self.schedule_retry(Entity::Source(source), self.source_next_fire[source]);
            return;
        }
        let flit = self.source_queue[source]
            .pop_front()
            .expect("queue checked non-empty");
        if self.trace.enabled() {
            self.trace.push(TraceEvent {
                time: self.now,
                packet: flit.descriptor().id(),
                flit: flit.index(),
                location: TraceLocation::Source(source),
                action: TraceAction::Injected,
            });
        }
        if self.in_window() {
            self.throughput.record_injected(1);
            self.ledger.add(EnergyCategory::Wire, self.timing.wire_fj);
        }
        self.channels[channel] = ChannelState::InFlight(flit);
        self.queue.schedule(
            self.now + self.timing.wire_delay,
            Event::Arrive { channel },
        );
        self.source_next_fire[source] = self.now + self.timing.source_cycle;
    }

    fn fire_fanout(&mut self, flat: usize) {
        let input = self.fabric.fanout_input[flat];
        let Some(flit_ref) = self.channels[input].arrived() else {
            return;
        };
        let coords = self.fabric.fanout_coords[flat];
        let symbol = flit_ref
            .descriptor()
            .route()
            .symbol(coords.level, coords.index);
        let flit_kind = flit_ref.kind();
        let decision = self.fanout_state[flat].peek(flit_kind, symbol);

        if self.now < self.fanout_next_fire[flat] {
            self.schedule_retry(Entity::Fanout(flat), self.fanout_next_fire[flat]);
            return;
        }
        if !decision.is_drop() {
            // All demanded outputs must be free *simultaneously*: the
            // speculative node's C-element acknowledge and the
            // non-speculative node's parallel Reqout generation both couple
            // the outputs.
            for port in OutputPort::BOTH {
                let demanded = match port {
                    OutputPort::Top => decision.forward.wants_top(),
                    OutputPort::Bottom => decision.forward.wants_bottom(),
                };
                if demanded && !self.channels[self.fabric.fanout_out[flat][port.index()]].is_free()
                {
                    return; // woken by that channel's FreeChannel event
                }
            }
        }

        let committed = self.fanout_state[flat].decide(flit_kind, symbol);
        debug_assert_eq!(committed, decision);
        let state = std::mem::replace(&mut self.channels[input], ChannelState::Draining);
        let ChannelState::Arrived(flit) = state else {
            unreachable!("fanout input checked Arrived above");
        };

        let kind = self.fabric.fanout_kind[flat];
        let timing = *self.timing.fanout(kind);
        let class = FlitClass::of(flit_kind);
        let in_window = self.in_window();
        if self.trace.enabled() {
            self.trace.push(TraceEvent {
                time: self.now,
                packet: flit.descriptor().id(),
                flit: flit.index(),
                location: TraceLocation::Fanout(coords),
                action: if decision.is_drop() {
                    TraceAction::Throttled
                } else {
                    TraceAction::Forwarded(decision.forward)
                },
            });
        }

        if decision.is_drop() {
            // Throttle: acknowledge upstream without forwarding.
            self.queue.schedule(
                self.now + timing.drop_ack,
                Event::FreeChannel { channel: input },
            );
            if in_window {
                self.ledger.add(EnergyCategory::Dropped, self.timing.drop_fj);
                self.flits_throttled += 1;
                self.activity.record_fanout(flat, timing.drop_ack, true);
            }
        } else {
            let forward = timing.forward(class);
            for port in OutputPort::BOTH {
                let demanded = match port {
                    OutputPort::Top => decision.forward.wants_top(),
                    OutputPort::Bottom => decision.forward.wants_bottom(),
                };
                if !demanded {
                    continue;
                }
                let out = self.fabric.fanout_out[flat][port.index()];
                debug_assert!(self.channels[out].is_free());
                self.channels[out] = ChannelState::InFlight(flit.clone());
                self.queue.schedule(
                    self.now + forward + self.timing.wire_delay,
                    Event::Arrive { channel: out },
                );
                if in_window {
                    self.ledger.add(EnergyCategory::Wire, self.timing.wire_fj);
                }
            }
            self.queue.schedule(
                self.now + timing.free_delay(class),
                Event::FreeChannel { channel: input },
            );
            if in_window {
                self.ledger.add(
                    EnergyCategory::Fanout,
                    self.timing.fanout_energy(kind).for_class(class),
                );
                self.activity
                    .record_fanout(flat, timing.free_delay(class), false);
            }
        }
        self.fanout_next_fire[flat] = self.now + timing.cycle_floor;
    }

    fn fire_fanin(&mut self, flat: usize) {
        let [c0, c1] = self.fabric.fanin_input[flat];
        let p0 = self.channels[c0].arrived().is_some();
        let p1 = self.channels[c1].arrived().is_some();
        let Some(winner) = self.fanin_state[flat].select(p0, p1) else {
            return;
        };
        if self.now < self.fanin_next_fire[flat] {
            self.schedule_retry(Entity::Fanin(flat), self.fanin_next_fire[flat]);
            return;
        }
        let out = self.fabric.fanin_out[flat];
        if !self.channels[out].is_free() {
            return; // woken when the output drains
        }

        let input_channel = [c0, c1][winner];
        let state = std::mem::replace(&mut self.channels[input_channel], ChannelState::Draining);
        let ChannelState::Arrived(flit) = state else {
            unreachable!("selected fanin input checked Arrived above");
        };
        self.fanin_state[flat].advance(winner, flit.kind());
        if self.trace.enabled() {
            self.trace.push(TraceEvent {
                time: self.now,
                packet: flit.descriptor().id(),
                flit: flit.index(),
                location: TraceLocation::Fanin(asynoc_topology::FaninNodeId::from_flat_index(
                    self.fabric.size,
                    flat,
                )),
                action: TraceAction::Arbitrated { input: winner },
            });
        }

        let timing = self.timing.fanin;
        let class = FlitClass::of(flit.kind());
        self.channels[out] = ChannelState::InFlight(flit);
        self.queue.schedule(
            self.now + timing.forward(class) + self.timing.wire_delay,
            Event::Arrive { channel: out },
        );
        self.queue.schedule(
            self.now + timing.free_delay(class),
            Event::FreeChannel {
                channel: input_channel,
            },
        );
        if self.in_window() {
            self.ledger.add(
                EnergyCategory::Fanin,
                self.timing.fanin_energy.for_class(class),
            );
            self.ledger.add(EnergyCategory::Wire, self.timing.wire_fj);
            self.activity.record_fanin(flat, timing.free_delay(class));
        }
        self.fanin_next_fire[flat] = self.now + timing.cycle_floor;
    }

    fn sink_consume(&mut self, channel: usize, dest: usize) {
        let state = std::mem::replace(&mut self.channels[channel], ChannelState::Draining);
        let ChannelState::Arrived(flit) = state else {
            unreachable!("sink consumes only arrived flits");
        };
        self.queue.schedule(
            self.now + self.timing.sink_ack,
            Event::FreeChannel { channel },
        );
        if self.trace.enabled() {
            self.trace.push(TraceEvent {
                time: self.now,
                packet: flit.descriptor().id(),
                flit: flit.index(),
                location: TraceLocation::Sink(dest),
                action: TraceAction::Delivered,
            });
        }
        if self.in_window() {
            self.throughput.record_delivered(1);
            self.flits_delivered += 1;
        }
        if flit.kind().is_header() {
            let logical = flit.descriptor().logical_id().as_u64();
            if let Some(pending) = self.pending.get_mut(&logical) {
                // Delivery audit: a header may reach each destination in
                // its set exactly once — a duplicate means a redundant
                // speculative copy escaped throttling, a miss would show up
                // as a never-completing packet.
                assert!(
                    pending.awaiting.contains(dest),
                    "packet {logical}: duplicate or misrouted header at destination {dest}"
                );
                pending.awaiting.remove(dest);
                if pending.awaiting.is_empty() {
                    let done = self.pending.remove(&logical).expect("entry present");
                    if done.measured {
                        self.latency
                            .record(self.now.saturating_since(done.created_at));
                        self.pending_measured -= 1;
                    }
                }
            } else {
                panic!(
                    "packet {logical}: header delivered at destination {dest} after completion \
                     — a redundant speculative copy escaped throttling"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, RunConfig};
    use asynoc_kernel::Duration;
    use asynoc_topology::Architecture;
    use asynoc_traffic::Benchmark;

    fn quick_run(arch: Architecture, benchmark: Benchmark, rate: f64) -> RunReport {
        let network = Network::new(NetworkConfig::eight_by_eight(arch).with_seed(42)).unwrap();
        network.run(&RunConfig::quick(benchmark, rate)).unwrap()
    }

    #[test]
    fn light_load_delivers_everything() {
        for arch in Architecture::ALL {
            let report = quick_run(arch, Benchmark::UniformRandom, 0.1);
            assert!(report.packets_measured > 0, "{arch}: no packets measured");
            assert_eq!(
                report.packets_incomplete, 0,
                "{arch}: packets stuck at light load"
            );
            assert!(
                report.acceptance() > 0.99,
                "{arch}: acceptance {} at light load",
                report.acceptance()
            );
        }
    }

    #[test]
    fn zero_load_latency_reflects_path_length() {
        // At very light load, mean latency approaches the sum of node
        // forward latencies + wire hops. Baseline 8x8: 3 fanout (263 ps)
        // + 3 fanin (220 ps) + 7 wires (60 ps) ≈ 1.9 ns.
        let report = quick_run(Architecture::Baseline, Benchmark::Shuffle, 0.05);
        let mean = report.latency.mean().unwrap();
        assert!(
            mean.as_ps() > 1_500 && mean.as_ps() < 3_000,
            "unexpected zero-load latency {mean}"
        );
    }

    #[test]
    fn speculative_networks_are_faster_at_light_load() {
        let baseline = quick_run(
            Architecture::BasicNonSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let hybrid = quick_run(
            Architecture::BasicHybridSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let base_mean = baseline.latency.mean().unwrap();
        let hybrid_mean = hybrid.latency.mean().unwrap();
        assert!(
            hybrid_mean < base_mean,
            "hybrid {hybrid_mean} not faster than non-speculative {base_mean}"
        );
    }

    #[test]
    fn speculation_throttles_redundant_copies() {
        let hybrid = quick_run(
            Architecture::BasicHybridSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        assert!(
            hybrid.flits_throttled > 0,
            "speculative broadcasts must produce throttled copies"
        );
        let nonspec = quick_run(
            Architecture::BasicNonSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        assert_eq!(
            nonspec.flits_throttled, 0,
            "non-speculative unicast traffic has nothing to throttle"
        );
    }

    #[test]
    fn multicast_delivers_replicas() {
        let report = quick_run(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast10,
            0.3,
        );
        // Delivered exceeds injected because replicas fan out inside the
        // network.
        assert!(
            report.throughput.delivered > report.throughput.injected * 1.05,
            "expected replication: {}",
            report.throughput
        );
    }

    #[test]
    fn serial_baseline_injects_clones() {
        let report = quick_run(Architecture::Baseline, Benchmark::Multicast10, 0.2);
        // The baseline serializes multicasts into clones, so offered ≈
        // injected ≈ delivered (no in-network replication).
        assert!(report.packets_measured > 0);
        let ratio = report.throughput.delivered / report.throughput.injected.max(1e-9);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "serial multicast should not replicate in-network: {}",
            report.throughput
        );
    }

    #[test]
    fn overload_is_detected_as_non_acceptance() {
        // 3 flits/ns per source is far beyond any architecture's capacity.
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(1),
        )
        .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 3.0).with_drain(false);
        let report = network.run(&run).unwrap();
        assert!(
            report.acceptance() < 0.9,
            "overload must show up as refused injections, got {}",
            report.acceptance()
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = quick_run(Architecture::OptAllSpeculative, Benchmark::Multicast5, 0.4);
        let b = quick_run(Architecture::OptAllSpeculative, Benchmark::Multicast5, 0.4);
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.flits_delivered, b.flits_delivered);
        assert_eq!(a.flits_throttled, b.flits_throttled);
    }

    #[test]
    fn different_seeds_differ() {
        let network1 = Network::new(
            NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(1),
        )
        .unwrap();
        let network2 = Network::new(
            NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(2),
        )
        .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 0.3);
        let a = network1.run(&run).unwrap();
        let b = network2.run(&run).unwrap();
        assert_ne!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn hotspot_saturates_near_paper_anchor() {
        // All 8 sources hammer destination 0; the fanin root → sink stage
        // caps per-source throughput at ≈ 0.29 GF/s.
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::Baseline).with_seed(3),
        )
        .unwrap();
        let run = RunConfig::new(Benchmark::Hotspot, 0.8)
            .unwrap()
            .with_phases(Phases::new(Duration::from_ns(200), Duration::from_ns(2000)))
            .with_drain(false);
        let report = network.run(&run).unwrap();
        let delivered = report.throughput.delivered;
        assert!(
            (0.26..=0.32).contains(&delivered),
            "hotspot ceiling {delivered} GF/s per source"
        );
    }

    #[test]
    fn power_scales_with_load() {
        let low = quick_run(Architecture::Baseline, Benchmark::UniformRandom, 0.1);
        let high = quick_run(Architecture::Baseline, Benchmark::UniformRandom, 0.4);
        assert!(
            high.power.total_mw() > low.power.total_mw(),
            "power must grow with activity: {} vs {}",
            high.power,
            low.power
        );
        assert!(low.power.leakage_mw() > 0.0);
    }

    #[test]
    fn custom_speculation_map_network_runs_and_throttles() {
        use asynoc_topology::SpeculationMap;
        let size = asynoc_topology::MotSize::new(8).unwrap();
        let map = SpeculationMap::custom(size, vec![false, true, false]).unwrap();
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
                .with_speculation_map(&map, true)
                .with_seed(42),
        )
        .unwrap();
        let report = network
            .run(&RunConfig::quick(Benchmark::Multicast10, 0.3))
            .unwrap();
        assert!(report.packets_measured > 0);
        assert_eq!(report.packets_incomplete, 0, "custom map lost packets");
        assert!(
            report.flits_throttled > 0,
            "mid-level speculation must produce throttled copies"
        );
    }

    #[test]
    fn activity_localizes_throttling_below_speculative_levels() {
        // In the hybrid (speculative root only), redundant copies die at
        // level 1 — the "local region" of local speculation.
        let report = quick_run(
            Architecture::BasicHybridSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let throttles = report.activity.fanout_level_throttles();
        assert_eq!(throttles[0], 0, "the root level has nothing to throttle");
        assert!(throttles[1] > 0, "wrong-path copies must die at level 1");
        assert_eq!(
            throttles[2], 0,
            "local speculation must confine waste to the region below the root"
        );
    }

    #[test]
    fn activity_throttling_widens_under_full_speculation() {
        // Almost-fully-speculative: copies travel further before dying at
        // the (non-speculative) leaf level.
        let report = quick_run(
            Architecture::OptAllSpeculative,
            Benchmark::UniformRandom,
            0.2,
        );
        let throttles = report.activity.fanout_level_throttles();
        assert!(
            throttles[2] > 0,
            "all-speculative waste must reach the leaf level"
        );
    }

    #[test]
    fn activity_counts_match_totals() {
        let report = quick_run(
            Architecture::OptHybridSpeculative,
            Benchmark::Multicast10,
            0.3,
        );
        let throttle_total: u64 = report.activity.fanout_level_throttles().iter().sum();
        assert_eq!(throttle_total, report.flits_throttled);
        let fanin_total: u64 = report.activity.fanin_tree_fires().iter().sum();
        assert!(fanin_total > 0);
        let (busiest, utilization) = report.activity.busiest_fanin().expect("nodes exist");
        assert!(utilization > 0.0 && utilization <= 1.0, "{busiest}: {utilization}");
    }

    #[test]
    fn hotspot_activity_concentrates_on_one_fanin_tree() {
        let report = quick_run(Architecture::Baseline, Benchmark::Hotspot, 0.15);
        let per_tree = report.activity.fanin_tree_fires();
        assert!(per_tree[0] > 0);
        assert!(per_tree[1..].iter().all(|&fires| fires == 0));
        let (busiest, _) = report.activity.busiest_fanin().expect("nodes exist");
        assert_eq!(busiest.tree, 0, "hotspot bottleneck must sit in tree 0");
    }

    #[test]
    fn trace_records_a_packet_journey() {
        use crate::trace::TraceAction;
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(42),
        )
        .unwrap();
        let run = RunConfig::quick(Benchmark::UniformRandom, 0.1).with_trace(500);
        let report = network.run(&run).unwrap();
        assert!(!report.trace.is_empty());
        assert!(report.trace.len() <= 500);
        // Times are non-decreasing.
        assert!(report
            .trace
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
        // With a speculative root, the trace must show both broadcasts and
        // throttles, and at least one delivery.
        assert!(report
            .trace
            .iter()
            .any(|e| e.action == TraceAction::Throttled));
        assert!(report
            .trace
            .iter()
            .any(|e| e.action == TraceAction::Delivered));
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e.action, TraceAction::Forwarded(s) if s == asynoc_packet::RouteSymbol::Both)));
        // Every traced packet's journey starts with an injection.
        let first = &report.trace[0];
        assert_eq!(first.action, TraceAction::Injected);
    }

    #[test]
    fn tracing_off_by_default() {
        let report = quick_run(Architecture::Baseline, Benchmark::Shuffle, 0.1);
        assert!(report.trace.is_empty());
    }

    #[test]
    fn multicast_static_only_three_sources_multicast() {
        let report = quick_run(Architecture::OptHybridSpeculative, Benchmark::MulticastStatic, 0.3);
        assert!(report.packets_measured > 0);
        assert!(report.throughput.delivered > report.throughput.injected);
    }
}
