//! Network and run configuration.

use asynoc_kernel::{Duration, SchedulerKind};
use asynoc_nodes::TimingModel;
use asynoc_stats::Phases;
use asynoc_topology::{Architecture, MotSize, NodePlan, SpecMap, SpeculationMap, TopologyError};
use asynoc_traffic::Benchmark;

use crate::error::SimError;

/// Default flits per packet (the paper fixes packets at 5 flits).
pub const DEFAULT_FLITS_PER_PACKET: u8 = 5;

/// Static description of one network to simulate.
///
/// # Examples
///
/// ```
/// use asynoc::{Architecture, MotSize, NetworkConfig};
///
/// let config = NetworkConfig::new(MotSize::new(16)?, Architecture::OptAllSpeculative)
///     .with_seed(7)
///     .with_flits_per_packet(5);
/// assert_eq!(config.size().n(), 16);
/// # Ok::<(), asynoc::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkConfig {
    size: MotSize,
    architecture: Architecture,
    plan: NodePlan,
    timing: TimingModel,
    flits_per_packet: u8,
    seed: u64,
}

impl NetworkConfig {
    /// Creates a configuration with the calibrated timing model, 5-flit
    /// packets, and seed 0.
    #[must_use]
    pub fn new(size: MotSize, architecture: Architecture) -> Self {
        NetworkConfig {
            size,
            architecture,
            plan: NodePlan::for_architecture(architecture, size),
            timing: TimingModel::calibrated(),
            flits_per_packet: DEFAULT_FLITS_PER_PACKET,
            seed: 0,
        }
    }

    /// Replaces the per-level node-kind plan with a custom speculation
    /// placement — the wider design space the paper sketches in Fig 3(d).
    /// Speculative levels get optimized/basic speculative nodes per
    /// `optimized`; the reported [`architecture`](Self::architecture) label
    /// is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the map was built for a different network size.
    #[must_use]
    pub fn with_speculation_map(mut self, map: &SpeculationMap, optimized: bool) -> Self {
        assert_eq!(
            map.size(),
            self.size,
            "speculation map size {} does not match network size {}",
            map.size(),
            self.size
        );
        self.plan = NodePlan::from_speculation(map, optimized);
        self
    }

    /// Replaces the node plan with a validated speculation placement — the
    /// first-class form behind the CLI's `--spec-map`. A [`SpecMap`] can
    /// express every [`Architecture`] preset (and is then bit-identical to
    /// the preset run) as well as arbitrary per-level/per-node placements.
    /// When the map equals a preset the
    /// [`architecture`](Self::architecture) label is updated to match;
    /// otherwise the label of [`NetworkConfig::new`] is kept.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Topology`] if the map was built for a different
    /// network size.
    pub fn with_spec_map(mut self, map: &SpecMap) -> Result<Self, SimError> {
        if map.size() != self.size {
            return Err(SimError::Topology(TopologyError::LevelCountMismatch {
                provided: map.size().levels() as usize,
                required: self.size.levels() as usize,
            }));
        }
        if let Some(arch) = map.label() {
            self.architecture = arch;
        }
        self.plan = map.node_plan();
        Ok(self)
    }

    /// The paper's evaluated 8×8 configuration.
    ///
    /// # Panics
    ///
    /// Never panics (8 is always a valid size).
    #[must_use]
    pub fn eight_by_eight(architecture: Architecture) -> Self {
        NetworkConfig::new(MotSize::new(8).expect("8 is a valid size"), architecture)
    }

    /// Replaces the RNG seed (traffic streams are derived from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the timing/energy parameter model (ablation studies).
    #[must_use]
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Replaces the packet length in flits.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    #[must_use]
    pub fn with_flits_per_packet(mut self, flits: u8) -> Self {
        assert!(flits > 0, "packets must have at least one flit");
        self.flits_per_packet = flits;
        self
    }

    /// The network size.
    #[must_use]
    pub fn size(&self) -> MotSize {
        self.size
    }

    /// The architecture label this configuration started from (custom
    /// speculation maps keep the label of [`NetworkConfig::new`]).
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// The per-level node-kind plan actually simulated.
    #[must_use]
    pub fn plan(&self) -> &NodePlan {
        &self.plan
    }

    /// The timing/energy model.
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Flits per packet.
    #[must_use]
    pub fn flits_per_packet(&self) -> u8 {
        self.flits_per_packet
    }

    /// The RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One simulation run: benchmark, offered load, and measurement schedule.
///
/// # Examples
///
/// ```
/// use asynoc::{Benchmark, RunConfig};
///
/// let run = RunConfig::new(Benchmark::Shuffle, 0.5)?;
/// assert_eq!(run.rate_gfs(), 0.5);
/// # Ok::<(), asynoc::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    benchmark: Benchmark,
    rate_gfs: f64,
    phases: Phases,
    drain: bool,
    trace_limit: usize,
    scheduler: SchedulerKind,
    shards: usize,
    profile: bool,
    progress: bool,
    latency_cap: Option<usize>,
}

impl RunConfig {
    /// Creates a run at `rate_gfs` flits/ns per source with the paper's
    /// standard measurement schedule (doubled for `Multicast_static`) and
    /// draining enabled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRate`] unless the rate is positive and
    /// finite.
    pub fn new(benchmark: Benchmark, rate_gfs: f64) -> Result<Self, SimError> {
        if !(rate_gfs.is_finite() && rate_gfs > 0.0) {
            return Err(SimError::InvalidRate { rate: rate_gfs });
        }
        Ok(RunConfig {
            benchmark,
            rate_gfs,
            phases: Phases::paper_standard(benchmark == Benchmark::MulticastStatic),
            drain: true,
            trace_limit: 0,
            scheduler: SchedulerKind::default(),
            shards: 1,
            profile: false,
            progress: false,
            latency_cap: None,
        })
    }

    /// A short-window run for tests and examples (80 ns warmup, 800 ns
    /// measurement).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    #[must_use]
    pub fn quick(benchmark: Benchmark, rate_gfs: f64) -> Self {
        RunConfig::new(benchmark, rate_gfs)
            .expect("quick() requires a positive, finite rate")
            .with_phases(Phases::new(Duration::from_ns(80), Duration::from_ns(800)))
    }

    /// Replaces the measurement schedule.
    #[must_use]
    pub fn with_phases(mut self, phases: Phases) -> Self {
        self.phases = phases;
        self
    }

    /// Enables or disables the drain phase (saturation probes disable it:
    /// they only need acceptance ratios, not complete packet latencies).
    #[must_use]
    pub fn with_drain(mut self, drain: bool) -> Self {
        self.drain = drain;
        self
    }

    /// The benchmark to run.
    #[must_use]
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Offered load, flits/ns per source.
    #[must_use]
    pub fn rate_gfs(&self) -> f64 {
        self.rate_gfs
    }

    /// The measurement schedule.
    #[must_use]
    pub fn phases(&self) -> Phases {
        self.phases
    }

    /// Whether the run drains in-flight measured packets after the window.
    #[must_use]
    pub fn drain(&self) -> bool {
        self.drain
    }

    /// Enables flit-level tracing, recording up to `limit` events into
    /// [`RunReport::trace`](crate::RunReport). Zero disables tracing (the
    /// default).
    #[must_use]
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }

    /// The trace-event cap (0 = tracing off).
    #[must_use]
    pub fn trace_limit(&self) -> usize {
        self.trace_limit
    }

    /// Replaces the event-queue scheduler (results are bit-identical
    /// under either kind; this only affects run speed).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The event-queue scheduler this run uses.
    #[must_use]
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Splits the run across `shards` conservative shards (threads).
    ///
    /// Results are bit-identical for every shard count (the sharded
    /// engine merges observable streams back into exact serial order);
    /// this only affects run speed on multi-core hosts. The network
    /// clamps the count to what its topology can support.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a run needs at least one shard");
        self.shards = shards;
        self
    }

    /// How many shards execute the run (default 1: serial).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Enables runtime self-profiling: the engine fills
    /// [`RunReport::profile`](crate::RunReport::profile) with per-shard
    /// counters, histograms, and phase wall-clock splits. Simulation
    /// results are bit-identical with profiling on or off — only host-side
    /// metadata is collected.
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Whether the run collects an engine profile (default off).
    #[must_use]
    pub fn profile(&self) -> bool {
        self.profile
    }

    /// Enables the stderr progress heartbeat (a single line refreshed a
    /// few times per second; suppressed when stderr is not a terminal).
    /// Like profiling, it never perturbs simulation results.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Whether the run prints a progress heartbeat (default off).
    #[must_use]
    pub fn progress(&self) -> bool {
        self.progress
    }

    /// Caps the engine's stored latency-sample reservoir (streaming
    /// runs set this so memory is bounded independent of run length).
    /// Count, mean, min, and max stay exact past the cap; percentiles
    /// degrade to the retained prefix. `None` (the default) stores
    /// every sample.
    #[must_use]
    pub fn with_latency_cap(mut self, cap: Option<usize>) -> Self {
        self.latency_cap = cap;
        self
    }

    /// The latency-sample reservoir cap (`None` = unbounded).
    #[must_use]
    pub fn latency_cap(&self) -> Option<usize> {
        self.latency_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = NetworkConfig::eight_by_eight(Architecture::Baseline);
        assert_eq!(c.size().n(), 8);
        assert_eq!(c.flits_per_packet(), 5);
        assert_eq!(c.seed(), 0);
        assert_eq!(*c.timing(), TimingModel::calibrated());
    }

    #[test]
    fn builder_overrides() {
        let mut timing = TimingModel::calibrated();
        timing.wire_fj = 0.0;
        let c = NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
            .with_seed(9)
            .with_flits_per_packet(3)
            .with_timing(timing.clone());
        assert_eq!(c.seed(), 9);
        assert_eq!(c.flits_per_packet(), 3);
        assert_eq!(c.timing().wire_fj, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flits_rejected() {
        let _ = NetworkConfig::eight_by_eight(Architecture::Baseline).with_flits_per_packet(0);
    }

    #[test]
    fn custom_speculation_map_replaces_plan() {
        use asynoc_topology::FanoutKind;
        let size = MotSize::new(8).unwrap();
        let map = SpeculationMap::custom(size, vec![false, true, false]).unwrap();
        let config = NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
            .with_speculation_map(&map, true);
        assert_eq!(config.plan().kind(1), FanoutKind::OptSpeculative);
        assert_eq!(config.plan().address_bits(), 10);
        // The label is unchanged.
        assert_eq!(config.architecture(), Architecture::OptNonSpeculative);
    }

    #[test]
    #[should_panic(expected = "does not match network size")]
    fn speculation_map_size_mismatch_panics() {
        let map = SpeculationMap::hybrid(MotSize::new(16).unwrap());
        let _ = NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
            .with_speculation_map(&map, true);
    }

    #[test]
    fn run_config_validates_rate() {
        assert!(matches!(
            RunConfig::new(Benchmark::Shuffle, 0.0),
            Err(SimError::InvalidRate { .. })
        ));
        assert!(matches!(
            RunConfig::new(Benchmark::Shuffle, f64::INFINITY),
            Err(SimError::InvalidRate { .. })
        ));
        assert!(RunConfig::new(Benchmark::Shuffle, 0.1).is_ok());
    }

    #[test]
    fn multicast_static_gets_doubled_phases() {
        let run = RunConfig::new(Benchmark::MulticastStatic, 0.2).unwrap();
        assert_eq!(run.phases(), Phases::paper_standard(true));
        let run = RunConfig::new(Benchmark::UniformRandom, 0.2).unwrap();
        assert_eq!(run.phases(), Phases::paper_standard(false));
    }

    #[test]
    fn scheduler_defaults_to_calendar_and_is_overridable() {
        let run = RunConfig::new(Benchmark::Shuffle, 0.5).unwrap();
        assert_eq!(run.scheduler(), SchedulerKind::Calendar);
        assert_eq!(
            run.with_scheduler(SchedulerKind::Heap).scheduler(),
            SchedulerKind::Heap
        );
    }

    #[test]
    fn quick_run_is_short_and_drains() {
        let run = RunConfig::quick(Benchmark::Hotspot, 0.1);
        assert!(run.phases().measure() < Phases::paper_standard(false).measure());
        assert!(run.drain());
        assert!(!run.with_drain(false).drain());
    }
}
