//! `asynoc` — an asynchronous Mesh-of-Trees NoC simulator with
//! local-speculation multicast.
//!
//! This crate is the core of a full reproduction of **Bhardwaj & Nowick,
//! "Achieving Lightweight Multicast in Asynchronous Networks-on-Chip Using
//! Local Speculation" (DAC 2016)**. It wires the workspace substrates —
//! topology, node behavior/timing, traffic, power, statistics — into a
//! runnable network model and an experiment harness that regenerates every
//! table and figure of the paper's evaluation.
//!
//! # The system in one paragraph
//!
//! An N×N variant Mesh-of-Trees connects N sources to N destinations via
//! private binary *fanout* (routing) trees and shared binary *fanin*
//! (arbitration) trees. Multicast packets are replicated at fanout branch
//! points driven by 2-bit source-routing symbols. Under **local
//! speculation**, a fixed subset of fanout nodes always *broadcasts* every
//! flit — these nodes need no route computation, so they are tiny and fast —
//! while neighboring non-speculative nodes *throttle* the redundant copies
//! (their routing symbol reads `Drop`), confining the waste to small local
//! regions. Protocol optimizations let speculative nodes stop replicating
//! body flits and non-speculative nodes pre-allocate channels, recovering
//! most of speculation's power cost while keeping its speed.
//!
//! # Quick start
//!
//! ```
//! use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig};
//!
//! // An 8x8 hybrid-speculative network, as in the paper's headline result.
//! let config = NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative);
//! let network = Network::new(config)?;
//!
//! // Run Multicast10 at 0.3 GF/s per source with short windows.
//! let run = RunConfig::quick(Benchmark::Multicast10, 0.3);
//! let report = network.run(&run)?;
//! assert!(report.latency.count() > 0);
//! println!("mean latency: {}", report.latency.mean().unwrap());
//! # Ok::<(), asynoc::SimError>(())
//! ```
//!
//! # Reproducing the paper
//!
//! The [`harness`] module has one entry point per table/figure; the
//! `asynoc-bench` crate wraps them in runnable binaries. See
//! `EXPERIMENTS.md` at the workspace root for paper-vs-measured results.

pub mod config;
pub mod error;
pub mod explore;
pub mod fabric;
pub mod harness;
pub mod observers;
pub mod report;
pub mod sim;
pub mod trace;

pub use config::{NetworkConfig, RunConfig};
pub use error::SimError;
pub use report::RunReport;
pub use sim::{MotNode, Network};
pub use trace::{TraceAction, TraceEvent, TraceLocation};

// Re-export the vocabulary types users need to drive the API.
pub use asynoc_engine::probe;
pub use asynoc_engine::{parallel_map, NodeKey, Observer, SimEvent};
pub use asynoc_kernel::default_parallelism;
pub use asynoc_kernel::{Duration, SchedulerKind, Time};
pub use asynoc_nodes::TimingModel;
pub use asynoc_packet::DestSet;
pub use asynoc_stats::Phases;
pub use asynoc_telemetry as telemetry;
pub use asynoc_topology::{
    Architecture, FanoutKind, FanoutNodeId, MotSize, NodePlan, SpecMap, SpeculationMap,
    TopologyError,
};
pub use asynoc_traffic::Benchmark;
