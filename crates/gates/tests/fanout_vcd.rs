//! Golden-waveform coverage for a two-level speculative fanout tree
//! under one injected stall.
//!
//! The netlist is the §4(a) broadcast stage composed with itself: a
//! root MOUSETRAP fork feeds two child forks, so one request transition
//! reaches four leaves. The testbench withholds exactly one leaf
//! acknowledge — the gate-level image of a link stall — and the full
//! VCD dump is diffed against a checked-in golden, so any change to the
//! latch/C-element timing or to the VCD writer shows up as a waveform
//! diff. Regenerate deliberately with
//! `BLESS_VCD=1 cargo test -p asynoc-gates --test fanout_vcd`.

use asynoc_gates::netlist::{GateKind, NetId, Netlist};
use asynoc_gates::{vcd, GateSim};
use asynoc_kernel::{Duration, Time};

struct FanoutTree {
    netlist: Netlist,
    req_in: NetId,
    leaf_ack: [NetId; 4],
    leaf_req: [NetId; 4],
    root_ack: NetId,
}

/// One MOUSETRAP fork branch: a normally-transparent latch whose enable
/// is `XNOR(req_out, ack_in)`.
fn branch(netlist: &mut Netlist, req_in: NetId, ack_in: NetId, req_out: NetId, tag: &str) {
    let enable = netlist.gate(
        GateKind::Xnor2,
        &[req_out, ack_in],
        Duration::from_ps(25),
        &format!("en_{tag}"),
    );
    netlist.set_initial(enable, true);
    netlist.gate_into(
        GateKind::Latch,
        &[req_in, enable],
        Duration::from_ps(40),
        req_out,
    );
}

/// A two-level speculative fanout: root fork -> two child forks -> four
/// leaves. Each level's upstream acknowledge is a C-element over its
/// two branch outputs, exactly as in [`asynoc_gates::mousetrap::SpeculativeFork`].
fn fanout_tree() -> FanoutTree {
    let celem = Duration::from_ps(30);
    let mut netlist = Netlist::new();
    let req_in = netlist.input("req_in");
    let leaf_ack = [
        netlist.input("ack_l0"),
        netlist.input("ack_l1"),
        netlist.input("ack_l2"),
        netlist.input("ack_l3"),
    ];
    let root_req = [
        netlist.placeholder("root_req0"),
        netlist.placeholder("root_req1"),
    ];
    let mut leaf_req = [0; 4];
    let mut child_ack = [0; 2];
    for child in 0..2 {
        for b in 0..2 {
            let leaf = 2 * child + b;
            leaf_req[leaf] = netlist.placeholder(&format!("leaf{leaf}"));
            branch(
                &mut netlist,
                root_req[child],
                leaf_ack[leaf],
                leaf_req[leaf],
                &format!("l{leaf}"),
            );
        }
        child_ack[child] = netlist.gate(
            GateKind::C2,
            &[leaf_req[2 * child], leaf_req[2 * child + 1]],
            celem,
            &format!("child{child}_ack"),
        );
    }
    for (child, &ack) in child_ack.iter().enumerate() {
        branch(
            &mut netlist,
            req_in,
            ack,
            root_req[child],
            &format!("r{child}"),
        );
    }
    let root_ack = netlist.gate(GateKind::C2, &[root_req[0], root_req[1]], celem, "ack_out");
    FanoutTree {
        netlist,
        req_in,
        leaf_ack,
        leaf_req,
        root_ack,
    }
}

#[test]
fn two_level_fanout_under_one_stall_matches_the_golden_vcd() {
    let tree = fanout_tree();
    let mut sim = GateSim::new(&tree.netlist);
    sim.settle();

    // Request 1 broadcasts to all four leaves (two latch delays deep).
    sim.toggle_at(Time::from_ps(100), tree.req_in);
    sim.run_until_quiet();

    // Three leaves acknowledge; leaf 3's acknowledge is withheld — the
    // injected stall. Request 2 then arrives behind it.
    for leaf in 0..3 {
        sim.toggle_at(Time::from_ps(400), tree.leaf_ack[leaf]);
    }
    sim.toggle_at(Time::from_ps(500), tree.req_in);
    sim.run_until_quiet();

    // The stall releases; the pent-up transition drains.
    sim.toggle_at(Time::from_ps(900), tree.leaf_ack[3]);
    sim.run_until_quiet();

    // Key waveform facts, asserted directly so the golden diff below is
    // never the only witness. Request 1 crosses both latch levels
    // (100 + 40 + 40 = 180); the unacked leaf stays opaque and only
    // passes request 2 once its acknowledge reopens the latch
    // (900 + 25 enable + 40... the latch fires one latch delay after
    // the enable, at 965).
    assert_eq!(
        sim.transitions_of(tree.leaf_req[0]),
        vec![Time::from_ps(180), Time::from_ps(580)],
        "acked leaf passes both requests"
    );
    assert_eq!(
        sim.transitions_of(tree.leaf_req[3]).first(),
        Some(&Time::from_ps(180)),
        "stalled leaf got the broadcast"
    );
    assert_eq!(
        sim.transitions_of(tree.leaf_req[3]).len(),
        2,
        "stalled leaf passes the second request exactly once, after the stall"
    );
    assert!(
        sim.transitions_of(tree.leaf_req[3])[1] > Time::from_ps(900),
        "the pent-up transition waits for the late acknowledge"
    );
    // The root's C-element acknowledges both requests without waiting on
    // the stalled leaf — speculation's local handshake, at gate level.
    assert_eq!(
        sim.transitions_of(tree.root_ack),
        vec![Time::from_ps(170), Time::from_ps(570)],
        "root acknowledge is local to its direct branches"
    );

    let dump = vcd::render(&tree.netlist, &sim, "fanout2");
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fanout_stall.vcd");
    if std::env::var_os("BLESS_VCD").is_some() {
        std::fs::write(golden_path, &dump).expect("write golden");
    }
    let golden =
        std::fs::read_to_string(golden_path).expect("golden missing; regenerate with BLESS_VCD=1");
    assert_eq!(
        dump, golden,
        "VCD drifted from tests/golden/fanout_stall.vcd; if the timing or \
         writer change is intentional, regenerate with BLESS_VCD=1"
    );
}
