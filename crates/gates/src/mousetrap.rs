//! Two-phase (transition-signaling) pipeline control circuits.
//!
//! The paper's switches use single-rail bundled data with a two-phase
//! protocol; their output port modules are normally-transparent latches and
//! their acknowledge logic is an XOR (baseline, §2) or a C-element
//! (speculative node, §4(a)). The canonical gate-level realization of this
//! style is the MOUSETRAP stage (Singh & Nowick):
//!
//! ```text
//!   req_in ──D┌───────┐Q── req_out ──► downstream (and ack_out upstream)
//!             │ latch │
//!         EN ─┤       │      EN = XNOR(req_out, ack_in)
//!             └───────┘
//! ```
//!
//! At reset the latch is transparent (`XNOR(0,0)=1`); a request transition
//! flows straight through (the "sub-cycle" forwarding the paper exploits),
//! then the stage goes opaque until the downstream acknowledge transition
//! reopens it.
//!
//! [`Pipeline`] builds a self-timed N-stage ring (source and sink modeled
//! as delays), used to measure forward latency and cycle time from gate
//! delays. [`SpeculativeFork`] builds the §4(a) broadcast stage: one
//! request forks into two branch latches and the upstream acknowledge is a
//! **C-element** over both branch outputs — demonstrating at gate level why
//! a stalled branch stalls the whole speculative node (the congestion cost
//! the network simulator models as "all demanded outputs must be free").

use asynoc_kernel::Duration;

use crate::netlist::{GateKind, NetId, Netlist};

/// Gate-delay parameters for the pipeline builders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageDelays {
    /// Transparent-latch delay (data to output while open).
    pub latch: Duration,
    /// XNOR enable-function delay.
    pub xnor: Duration,
    /// C-element delay (forks only).
    pub celem: Duration,
}

impl Default for StageDelays {
    fn default() -> Self {
        StageDelays {
            latch: Duration::from_ps(40),
            xnor: Duration::from_ps(25),
            celem: Duration::from_ps(30),
        }
    }
}

/// A self-timed linear MOUSETRAP pipeline.
///
/// The source toggles its request whenever the first stage has
/// acknowledged (modeled as an inverter loop with delay `source`), and the
/// sink acknowledges every output request after `sink` — so the circuit
/// free-runs at its natural cycle time.
///
/// # Examples
///
/// ```
/// use asynoc_gates::mousetrap::{Pipeline, StageDelays};
/// use asynoc_gates::GateSim;
/// use asynoc_kernel::{Duration, Time};
///
/// let pipeline = Pipeline::self_timed(3, StageDelays::default(),
///     Duration::from_ps(50), Duration::from_ps(50));
/// let mut sim = GateSim::new(pipeline.netlist());
/// sim.run_until(Time::from_ns(20));
/// // Tokens flowed: the last stage's request has toggled many times.
/// assert!(sim.transitions_of(pipeline.last_req()).len() > 10);
/// ```
#[derive(Debug)]
pub struct Pipeline {
    netlist: Netlist,
    source_req: NetId,
    stage_req: Vec<NetId>,
    sink_ack: NetId,
    delays: StageDelays,
}

impl Pipeline {
    /// Builds a self-timed pipeline with `stages` MOUSETRAP stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    #[must_use]
    pub fn self_timed(
        stages: usize,
        delays: StageDelays,
        source: Duration,
        sink: Duration,
    ) -> Self {
        assert!(stages > 0, "pipeline needs at least one stage");
        let mut netlist = Netlist::new();

        // Stage requests are placeholders so the enable feedback and the
        // source loop can reference them before they are driven.
        let source_req = netlist.placeholder("src_req");
        let stage_req: Vec<NetId> = (0..stages)
            .map(|i| netlist.placeholder(&format!("req{i}")))
            .collect();
        let sink_ack = netlist.placeholder("sink_ack");

        for i in 0..stages {
            let req_in = if i == 0 { source_req } else { stage_req[i - 1] };
            let ack_in = if i + 1 == stages {
                sink_ack
            } else {
                stage_req[i + 1]
            };
            // EN = XNOR(req_out, ack_in); initial (0,0) -> transparent.
            let enable = netlist.gate(
                GateKind::Xnor2,
                &[stage_req[i], ack_in],
                delays.xnor,
                &format!("en{i}"),
            );
            netlist.set_initial(enable, true);
            netlist.gate_into(
                GateKind::Latch,
                &[req_in, enable],
                delays.latch,
                stage_req[i],
            );
        }

        // Sink: acknowledge every output request after `sink`.
        netlist.gate_into(GateKind::Buf, &[stage_req[stages - 1]], sink, sink_ack);
        // Source: toggle the request whenever the first stage's output has
        // caught up (ack_out of stage 0 = req0 in MOUSETRAP).
        netlist.gate_into(GateKind::Inv, &[stage_req[0]], source, source_req);

        Pipeline {
            netlist,
            source_req,
            stage_req,
            sink_ack,
            delays,
        }
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The source request net.
    #[must_use]
    pub fn source_req(&self) -> NetId {
        self.source_req
    }

    /// Request output of stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn stage_req(&self, i: usize) -> NetId {
        self.stage_req[i]
    }

    /// Request output of the last stage (the pipeline's output).
    #[must_use]
    pub fn last_req(&self) -> NetId {
        *self.stage_req.last().expect("at least one stage")
    }

    /// The sink acknowledge net.
    #[must_use]
    pub fn sink_ack(&self) -> NetId {
        self.sink_ack
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stage_req.len()
    }

    /// The forward latency of an empty pipeline: one transparent-latch
    /// delay per stage.
    #[must_use]
    pub fn forward_latency(&self) -> Duration {
        self.delays.latch * self.stage_req.len() as u64
    }
}

/// The speculative broadcast stage of §4(a): a request forks into two
/// normally-transparent branch latches; the upstream acknowledge is a
/// C-element over both branch outputs.
///
/// # Examples
///
/// ```
/// use asynoc_gates::mousetrap::{SpeculativeFork, StageDelays};
/// use asynoc_gates::GateSim;
/// use asynoc_kernel::{Duration, Time};
///
/// let fork = SpeculativeFork::new(StageDelays::default());
/// let mut sim = GateSim::new(fork.netlist());
/// sim.settle();
/// sim.toggle_at(Time::from_ps(100), fork.req_in());
/// sim.run_until_quiet();
/// // Both branches broadcast the request...
/// assert!(sim.level(fork.branch_req(0)));
/// assert!(sim.level(fork.branch_req(1)));
/// // ...and the C-element acknowledged the upstream.
/// assert!(sim.level(fork.ack_out()));
/// ```
#[derive(Debug)]
pub struct SpeculativeFork {
    netlist: Netlist,
    req_in: NetId,
    ack_out: NetId,
    branch_req: [NetId; 2],
    branch_ack: [NetId; 2],
}

impl SpeculativeFork {
    /// Builds the fork with testbench-driven branch acknowledges.
    #[must_use]
    pub fn new(delays: StageDelays) -> Self {
        let mut netlist = Netlist::new();
        let req_in = netlist.input("req_in");
        let branch_ack = [netlist.input("ack0"), netlist.input("ack1")];
        let mut branch_req = [0, 0];
        for branch in 0..2 {
            let req_out = netlist.placeholder(&format!("reqout{branch}"));
            let enable = netlist.gate(
                GateKind::Xnor2,
                &[req_out, branch_ack[branch]],
                delays.xnor,
                &format!("en{branch}"),
            );
            netlist.set_initial(enable, true);
            netlist.gate_into(GateKind::Latch, &[req_in, enable], delays.latch, req_out);
            branch_req[branch] = req_out;
        }
        let ack_out = netlist.gate(
            GateKind::C2,
            &[branch_req[0], branch_req[1]],
            delays.celem,
            "ack_out",
        );
        SpeculativeFork {
            netlist,
            req_in,
            ack_out,
            branch_req,
            branch_ack,
        }
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The upstream request input.
    #[must_use]
    pub fn req_in(&self) -> NetId {
        self.req_in
    }

    /// The upstream acknowledge (C-element output).
    #[must_use]
    pub fn ack_out(&self) -> NetId {
        self.ack_out
    }

    /// Branch request output (0 = top, 1 = bottom).
    ///
    /// # Panics
    ///
    /// Panics if `branch > 1`.
    #[must_use]
    pub fn branch_req(&self, branch: usize) -> NetId {
        self.branch_req[branch]
    }

    /// Branch acknowledge input (testbench-driven, plays the downstream
    /// node).
    ///
    /// # Panics
    ///
    /// Panics if `branch > 1`.
    #[must_use]
    pub fn branch_ack(&self, branch: usize) -> NetId {
        self.branch_ack[branch]
    }
}

/// The baseline node's acknowledge merge (§2): in two-phase signaling an
/// XOR of the two output requests toggles whenever *either* output sends a
/// flit — exactly one does per unicast transaction.
///
/// Returns `(netlist, req0, req1, ack_out)`.
#[must_use]
pub fn baseline_ack_xor(delay: Duration) -> (Netlist, NetId, NetId, NetId) {
    let mut netlist = Netlist::new();
    let req0 = netlist.input("reqout0");
    let req1 = netlist.input("reqout1");
    let ack = netlist.gate(GateKind::Xor2, &[req0, req1], delay, "ack");
    (netlist, req0, req1, ack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::GateSim;
    use asynoc_kernel::Time;

    #[test]
    fn pipeline_forward_latency_is_one_latch_per_stage() {
        // Freeze the source/sink loops far in the future so we observe a
        // single token.
        let delays = StageDelays::default();
        let pipeline =
            Pipeline::self_timed(4, delays, Duration::from_ns(500), Duration::from_ns(500));
        let mut sim = GateSim::new(pipeline.netlist());
        // The source inverter fires on its own after its delay (req = 1 at
        // t = 500 ns); run long enough to watch the first token cross.
        sim.run_until(Time::from_ns(900));
        let first_out = sim
            .transitions_of(pipeline.last_req())
            .first()
            .copied()
            .expect("token reached the output");
        let first_in = sim
            .transitions_of(pipeline.source_req())
            .first()
            .copied()
            .expect("source fired");
        assert_eq!(first_out - first_in, pipeline.forward_latency());
        assert_eq!(pipeline.forward_latency(), Duration::from_ps(160));
    }

    #[test]
    fn pipeline_free_runs_at_a_stable_cycle_time() {
        let pipeline = Pipeline::self_timed(
            3,
            StageDelays::default(),
            Duration::from_ps(60),
            Duration::from_ps(60),
        );
        let mut sim = GateSim::new(pipeline.netlist());
        sim.run_until(Time::from_ns(50));
        let transitions = sim.transitions_of(pipeline.last_req());
        assert!(transitions.len() > 20, "pipeline did not free-run");
        // Steady-state: the last several periods are identical.
        let n = transitions.len();
        let periods: Vec<_> = (n - 5..n)
            .map(|i| transitions[i] - transitions[i - 1])
            .collect();
        assert!(
            periods.windows(2).all(|w| w[0] == w[1]),
            "cycle time not stable: {periods:?}"
        );
        assert!(!periods[0].is_zero());
    }

    #[test]
    fn pipeline_cycle_time_grows_with_latch_delay() {
        let run = |latch_ps: u64| {
            let delays = StageDelays {
                latch: Duration::from_ps(latch_ps),
                ..StageDelays::default()
            };
            let pipeline =
                Pipeline::self_timed(3, delays, Duration::from_ps(60), Duration::from_ps(60));
            let mut sim = GateSim::new(pipeline.netlist());
            sim.run_until(Time::from_ns(60));
            sim.last_period_of(pipeline.last_req()).expect("periodic")
        };
        assert!(run(80) > run(40), "slower latches must slow the pipeline");
    }

    #[test]
    fn pipeline_throughput_independent_of_depth() {
        let measure = |stages: usize| {
            let pipeline = Pipeline::self_timed(
                stages,
                StageDelays::default(),
                Duration::from_ps(60),
                Duration::from_ps(60),
            );
            let mut sim = GateSim::new(pipeline.netlist());
            sim.run_until(Time::from_ns(80));
            sim.last_period_of(pipeline.last_req()).expect("periodic")
        };
        // Linear pipelines of the same stage design cycle at the same rate
        // regardless of depth.
        assert_eq!(measure(2), measure(5));
    }

    #[test]
    fn fork_broadcasts_and_c_element_joins() {
        let fork = SpeculativeFork::new(StageDelays::default());
        let mut sim = GateSim::new(fork.netlist());
        sim.settle();
        sim.toggle_at(Time::from_ps(100), fork.req_in());
        sim.run_until_quiet();
        // Both branches got the request after one latch delay.
        assert_eq!(
            sim.transitions_of(fork.branch_req(0)),
            vec![Time::from_ps(140)]
        );
        assert_eq!(
            sim.transitions_of(fork.branch_req(1)),
            vec![Time::from_ps(140)]
        );
        // Upstream acknowledge: one C-element delay later.
        assert_eq!(sim.transitions_of(fork.ack_out()), vec![Time::from_ps(170)]);
    }

    #[test]
    fn fork_second_request_needs_both_branch_acks() {
        // The gate-level demonstration of speculation's congestion cost: a
        // branch that withholds its acknowledge keeps that branch's latch
        // opaque, so the next request cannot broadcast and the upstream
        // acknowledge never comes.
        let fork = SpeculativeFork::new(StageDelays::default());
        let mut sim = GateSim::new(fork.netlist());
        sim.settle();
        sim.toggle_at(Time::from_ps(100), fork.req_in());
        sim.run_until_quiet();
        // Branch 0 acknowledges; branch 1 stalls.
        sim.toggle_at(Time::from_ps(300), fork.branch_ack(0));
        sim.toggle_at(Time::from_ps(400), fork.req_in());
        sim.run_until_quiet();
        assert!(
            !sim.level(fork.branch_req(0)),
            "acked branch passes the second request (toggles back low)"
        );
        assert!(
            sim.level(fork.branch_req(1)),
            "stalled branch must hold the first request"
        );
        let acks = sim.transitions_of(fork.ack_out());
        assert_eq!(
            acks.len(),
            1,
            "no second upstream ack while a branch stalls"
        );
        // Branch 1 finally acknowledges: the stalled request flows and the
        // C-element completes the handshake.
        sim.toggle_at(Time::from_ps(1_000), fork.branch_ack(1));
        sim.run_until_quiet();
        assert_eq!(sim.transitions_of(fork.ack_out()).len(), 2);
        assert!(!sim.level(fork.branch_req(1)));
    }

    #[test]
    fn baseline_xor_acks_on_either_output() {
        let (netlist, req0, req1, ack) = baseline_ack_xor(Duration::from_ps(12));
        let mut sim = GateSim::new(&netlist);
        sim.settle();
        // Transaction 1 goes out on output 0.
        sim.toggle_at(Time::from_ps(100), req0);
        // Transaction 2 goes out on output 1.
        sim.toggle_at(Time::from_ps(300), req1);
        sim.run_until_quiet();
        assert_eq!(
            sim.transitions_of(ack),
            vec![Time::from_ps(112), Time::from_ps(312)],
            "the XOR merge must toggle once per transaction, from either output"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_pipeline_rejected() {
        let _ = Pipeline::self_timed(
            0,
            StageDelays::default(),
            Duration::from_ps(1),
            Duration::from_ps(1),
        );
    }
}
