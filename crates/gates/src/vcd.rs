//! VCD (Value Change Dump) export of gate-level waveforms.
//!
//! Writes the standard IEEE 1364 VCD text format, viewable in GTKWave and
//! every commercial waveform browser — the lingua franca of EDA debugging.

use std::fmt::Write as _;

use crate::netlist::Netlist;
use crate::sim::{Change, GateSim};

/// Renders a simulation's waveform log as a VCD document.
///
/// All nets appear under a single scope named `module_name`, with a 1 ps
/// timescale (the kernel's native resolution).
///
/// # Examples
///
/// ```
/// use asynoc_gates::netlist::{GateKind, Netlist};
/// use asynoc_gates::{vcd, GateSim};
/// use asynoc_kernel::{Duration, Time};
///
/// let mut netlist = Netlist::new();
/// let a = netlist.input("a");
/// let _y = netlist.gate(GateKind::Inv, &[a], Duration::from_ps(10), "y");
/// let mut sim = GateSim::new(&netlist);
/// sim.set_at(Time::from_ps(100), a, true);
/// sim.run_until_quiet();
/// let dump = vcd::render(&netlist, &sim, "demo");
/// assert!(dump.contains("$timescale 1ps $end"));
/// assert!(dump.contains("$var wire 1"));
/// ```
#[must_use]
pub fn render(netlist: &Netlist, sim: &GateSim<'_>, module_name: &str) -> String {
    render_changes(netlist, sim.log(), module_name)
}

/// [`render`] over an explicit change log (initial values are taken to be
/// low, matching the simulator's reset state unless the first change says
/// otherwise).
#[must_use]
pub fn render_changes(netlist: &Netlist, log: &[Change], module_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date asynoc-gates $end");
    let _ = writeln!(out, "$version asynoc-gates 0.1.0 $end");
    let _ = writeln!(out, "$timescale 1ps $end");
    let _ = writeln!(out, "$scope module {module_name} $end");
    for net in 0..netlist.net_count() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            identifier(net),
            sanitize(netlist.net_name(net))
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "$dumpvars");
    for net in 0..netlist.net_count() {
        let level = netlist.initial_level(net);
        let _ = writeln!(out, "{}{}", if level { '1' } else { '0' }, identifier(net));
    }
    let _ = writeln!(out, "$end");

    let mut last_time = None;
    for change in log {
        let t = change.time.as_ps();
        if last_time != Some(t) {
            let _ = writeln!(out, "#{t}");
            last_time = Some(t);
        }
        let _ = writeln!(
            out,
            "{}{}",
            if change.level { '1' } else { '0' },
            identifier(change.net)
        );
    }
    out
}

/// Maps a net index to a short printable VCD identifier (base-94 over the
/// printable ASCII range `!`..=`~`).
fn identifier(mut net: usize) -> String {
    let mut id = String::new();
    loop {
        let digit = (net % 94) as u8;
        id.push((b'!' + digit) as char);
        net /= 94;
        if net == 0 {
            break;
        }
        net -= 1;
    }
    id
}

/// VCD identifiers in `$var` names must not contain whitespace.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;
    use asynoc_kernel::{Duration, Time};

    fn demo() -> (Netlist, Vec<Change>) {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let y = netlist.gate(GateKind::Inv, &[a], Duration::from_ps(10), "y");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(100), a, true);
        sim.run_until_quiet();
        let log = sim.log().to_vec();
        let _ = y;
        (netlist, log)
    }

    #[test]
    fn header_and_vars_present() {
        let (netlist, log) = demo();
        let dump = render_changes(&netlist, &log, "top");
        assert!(dump.contains("$timescale 1ps $end"));
        assert!(dump.contains("$scope module top $end"));
        assert!(dump.contains("$var wire 1 ! a $end"));
        assert!(dump.contains("$var wire 1 \" y $end"));
        assert!(dump.contains("$enddefinitions $end"));
    }

    #[test]
    fn dumpvars_lists_initial_levels() {
        let (netlist, log) = demo();
        let dump = render_changes(&netlist, &log, "top");
        let dumpvars = dump
            .split("$dumpvars")
            .nth(1)
            .and_then(|s| s.split("$end").next())
            .expect("dumpvars section");
        assert!(dumpvars.contains("0!"));
        assert!(dumpvars.contains("0\""));
    }

    #[test]
    fn changes_grouped_by_timestamp() {
        let (netlist, log) = demo();
        let dump = render_changes(&netlist, &log, "top");
        // y settles high at t=10 (settle), a rises at 100, y falls at 110.
        assert!(dump.contains("#10\n1\""));
        assert!(dump.contains("#100\n1!"));
        assert!(dump.contains("#110\n0\""));
    }

    #[test]
    fn identifiers_are_printable_and_unique() {
        let ids: Vec<String> = (0..500).map(identifier).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids
            .iter()
            .all(|id| id.chars().all(|c| ('!'..='~').contains(&c))));
        assert_eq!(identifier(0), "!");
        assert_eq!(identifier(93), "~");
        assert_eq!(identifier(94), "!!");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("my net"), "my_net");
        assert_eq!(sanitize("clean"), "clean");
    }

    #[test]
    fn render_matches_render_changes() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let _ = netlist.gate(GateKind::Buf, &[a], Duration::from_ps(5), "y");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(50), a, true);
        sim.run_until_quiet();
        let via_sim = render(&netlist, &sim, "m");
        let via_log = render_changes(&netlist, sim.log(), "m");
        assert_eq!(via_sim, via_log);
    }
}
