//! Gate-level asynchronous-circuit substrate.
//!
//! The paper's node micro-architectures (Figures 2 and 5) are built from a
//! small set of asynchronous control primitives: Muller **C-elements**
//! (the speculative node's acknowledge join), **XOR** completion detectors
//! (the baseline's acknowledge), and **normally-transparent latches** (the
//! speculative node's output port modules). This crate rebuilds that layer
//! from scratch:
//!
//! - [`netlist`] — gate netlists (INV/BUF/AND/OR/XOR/XNOR, C-element,
//!   transparent D-latch) with per-gate delays,
//! - [`sim`] — an event-driven transport-delay simulator over a netlist,
//!   deterministic and glitch-aware, with a full waveform log,
//! - [`mousetrap`] — two-phase (transition-signaling) bundled-data pipeline
//!   stages in the MOUSETRAP style the paper's single-rail bundled-data
//!   switches follow, and the **speculative broadcast fork** whose
//!   acknowledge is a C-element over both branches (§4(a)),
//! - [`vcd`] — VCD waveform export for inspection in GTKWave et al.
//!
//! The network-level simulator (`asynoc` core) abstracts nodes to
//! forward-latency/acknowledge parameters; this crate justifies that
//! abstraction by demonstrating the handshake sequencing those parameters
//! summarize.
//!
//! # Examples
//!
//! ```
//! use asynoc_gates::netlist::{GateKind, Netlist};
//! use asynoc_gates::sim::GateSim;
//! use asynoc_kernel::{Duration, Time};
//!
//! // A C-element: the output goes high only when both inputs are high,
//! // low only when both are low, and holds otherwise.
//! let mut netlist = Netlist::new();
//! let a = netlist.input("a");
//! let b = netlist.input("b");
//! let c = netlist.gate(GateKind::C2, &[a, b], Duration::from_ps(20), "c");
//! let mut sim = GateSim::new(&netlist);
//! sim.set_at(Time::from_ps(0), a, true);
//! sim.set_at(Time::from_ps(100), b, true);
//! sim.run_until_quiet();
//! assert!(sim.level(c)); // fired at 120 ps, after *both* inputs rose
//! ```

pub mod mousetrap;
pub mod netlist;
pub mod sim;
pub mod vcd;

pub use mousetrap::{Pipeline, SpeculativeFork};
pub use netlist::{GateKind, NetId, Netlist};
pub use sim::GateSim;
