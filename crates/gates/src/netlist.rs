//! Gate netlists.
//!
//! A [`Netlist`] is a flat list of nets (single-bit wires) and gates. Nets
//! are created as primary inputs ([`Netlist::input`]) or as gate outputs
//! ([`Netlist::gate`]); every net carries a name for debugging and VCD
//! export. Gates have a transport delay — an input change propagates to
//! the output after exactly that delay.

use asynoc_kernel::Duration;

/// Index of one net (wire) in a netlist.
pub type NetId = usize;

/// The supported gate primitives.
///
/// `C2` is the two-input Muller C-element — *the* asynchronous primitive:
/// its output follows the inputs when they agree and holds when they
/// disagree. `Latch` is a transparent D-latch (`inputs[0]` = data,
/// `inputs[1]` = enable, transparent while enable is high) — the paper's
/// "normally transparent" output port registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (used to model wire/driver delays).
    Buf,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR (the baseline node's acknowledge merge).
    Xor2,
    /// Two-input XNOR (MOUSETRAP latch-enable function).
    Xnor2,
    /// Two-input Muller C-element (the speculative node's acknowledge
    /// join).
    C2,
    /// Transparent D-latch: data, enable.
    Latch,
}

impl GateKind {
    /// Number of input nets the gate requires.
    #[must_use]
    pub const fn arity(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf => 1,
            _ => 2,
        }
    }

    /// Returns `true` for gates whose next output depends on their current
    /// output (state-holding elements).
    #[must_use]
    pub const fn is_sequential(self) -> bool {
        matches!(self, GateKind::C2 | GateKind::Latch)
    }

    /// Evaluates the gate function.
    ///
    /// `current` is the present output value (meaningful only for
    /// sequential gates).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the gate's arity.
    #[must_use]
    pub fn eval(self, inputs: &[bool], current: bool) -> bool {
        assert_eq!(inputs.len(), self.arity(), "wrong input count for {self:?}");
        match self {
            GateKind::Inv => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::And2 => inputs[0] && inputs[1],
            GateKind::Or2 => inputs[0] || inputs[1],
            GateKind::Xor2 => inputs[0] ^ inputs[1],
            GateKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            GateKind::C2 => {
                if inputs[0] == inputs[1] {
                    inputs[0]
                } else {
                    current
                }
            }
            GateKind::Latch => {
                if inputs[1] {
                    inputs[0]
                } else {
                    current
                }
            }
        }
    }
}

/// One gate instance.
#[derive(Clone, Debug)]
pub struct Gate {
    /// The gate function.
    pub kind: GateKind,
    /// Input nets, in [`GateKind`] order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Transport delay from any input change to the output change.
    pub delay: Duration,
}

/// A flat gate netlist.
///
/// # Examples
///
/// ```
/// use asynoc_gates::netlist::{GateKind, Netlist};
/// use asynoc_kernel::Duration;
///
/// let mut netlist = Netlist::new();
/// let a = netlist.input("a");
/// let not_a = netlist.gate(GateKind::Inv, &[a], Duration::from_ps(10), "not_a");
/// assert_eq!(netlist.net_name(not_a), "not_a");
/// assert_eq!(netlist.net_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    names: Vec<String>,
    gates: Vec<Gate>,
    /// `driver[net]` = index of the gate driving it, if any.
    driver: Vec<Option<usize>>,
    /// `fanout[net]` = gates reading it.
    fanout: Vec<Vec<usize>>,
    /// Initial levels for nets (default low).
    initial: Vec<bool>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    fn add_net(&mut self, name: &str) -> NetId {
        let id = self.names.len();
        self.names.push(name.to_string());
        self.driver.push(None);
        self.fanout.push(Vec::new());
        self.initial.push(false);
        id
    }

    /// Creates a primary-input net (driven by the testbench).
    pub fn input(&mut self, name: &str) -> NetId {
        self.add_net(name)
    }

    /// Creates an undriven placeholder net, to be driven later with
    /// [`gate_into`](Self::gate_into) — the way feedback loops (latch
    /// enables, C-element acknowledge joins) are closed.
    pub fn placeholder(&mut self, name: &str) -> NetId {
        self.add_net(name)
    }

    /// Instantiates a gate driving an *existing* net (closing a feedback
    /// loop through a [`placeholder`](Self::placeholder)).
    ///
    /// # Panics
    ///
    /// Panics if the input count mismatches, any net does not exist, or
    /// `output` already has a driver.
    pub fn gate_into(&mut self, kind: GateKind, inputs: &[NetId], delay: Duration, output: NetId) {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind:?} needs {} inputs",
            kind.arity()
        );
        assert!(
            output < self.names.len(),
            "output net {output} does not exist"
        );
        assert!(
            self.driver[output].is_none(),
            "net {} already has a driver",
            self.names[output]
        );
        for &input in inputs {
            assert!(input < self.names.len(), "input net {input} does not exist");
        }
        let gate_index = self.gates.len();
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
        self.driver[output] = Some(gate_index);
        for &input in inputs {
            self.fanout[input].push(gate_index);
        }
    }

    /// Sets a net's initial level (the default is low). For sequential
    /// gates this also seeds their held state.
    pub fn set_initial(&mut self, net: NetId, level: bool) {
        self.initial[net] = level;
    }

    /// Instantiates a gate, returning its output net.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the gate's arity or an
    /// input net does not exist.
    pub fn gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        delay: Duration,
        output_name: &str,
    ) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind:?} needs {} inputs",
            kind.arity()
        );
        for &input in inputs {
            assert!(input < self.names.len(), "input net {input} does not exist");
        }
        let output = self.add_net(output_name);
        let gate_index = self.gates.len();
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
        self.driver[output] = Some(gate_index);
        for &input in inputs {
            self.fanout[input].push(gate_index);
        }
        output
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.names.len()
    }

    /// Number of gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// A net's name.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.names[net]
    }

    /// All gates.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gates reading `net`.
    #[must_use]
    pub fn fanout_of(&self, net: NetId) -> &[usize] {
        &self.fanout[net]
    }

    /// The gate driving `net`, if any (`None` for primary inputs).
    #[must_use]
    pub fn driver_of(&self, net: NetId) -> Option<usize> {
        self.driver[net]
    }

    /// Initial level of `net`.
    #[must_use]
    pub fn initial_level(&self, net: NetId) -> bool {
        self.initial[net]
    }

    /// Returns `true` if `net` is a primary input.
    #[must_use]
    pub fn is_input(&self, net: NetId) -> bool {
        self.driver[net].is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynoc_kernel::SimRng;

    #[test]
    fn gate_truth_tables() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(GateKind::And2.eval(&[a, b], false), a && b);
            assert_eq!(GateKind::Or2.eval(&[a, b], false), a || b);
            assert_eq!(GateKind::Xor2.eval(&[a, b], false), a ^ b);
            assert_eq!(GateKind::Xnor2.eval(&[a, b], false), !(a ^ b));
        }
        assert!(GateKind::Inv.eval(&[false], false));
        assert!(!GateKind::Inv.eval(&[true], false));
        assert!(GateKind::Buf.eval(&[true], false));
    }

    #[test]
    fn c_element_holds_on_disagreement() {
        // Agreement drives, disagreement holds.
        assert!(GateKind::C2.eval(&[true, true], false));
        assert!(!GateKind::C2.eval(&[false, false], true));
        assert!(GateKind::C2.eval(&[true, false], true));
        assert!(!GateKind::C2.eval(&[true, false], false));
        assert!(GateKind::C2.eval(&[false, true], true));
    }

    #[test]
    fn latch_transparent_and_opaque() {
        // Enable high: follows data. Enable low: holds.
        assert!(GateKind::Latch.eval(&[true, true], false));
        assert!(!GateKind::Latch.eval(&[false, true], true));
        assert!(GateKind::Latch.eval(&[false, false], true));
        assert!(!GateKind::Latch.eval(&[true, false], false));
    }

    #[test]
    fn arity_and_sequential_flags() {
        assert_eq!(GateKind::Inv.arity(), 1);
        assert_eq!(GateKind::C2.arity(), 2);
        assert!(GateKind::C2.is_sequential());
        assert!(GateKind::Latch.is_sequential());
        assert!(!GateKind::Xor2.is_sequential());
    }

    #[test]
    fn netlist_wiring_bookkeeping() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let b = netlist.input("b");
        let y = netlist.gate(GateKind::And2, &[a, b], Duration::from_ps(15), "y");
        let z = netlist.gate(GateKind::Inv, &[y], Duration::from_ps(5), "z");
        assert_eq!(netlist.net_count(), 4);
        assert_eq!(netlist.gate_count(), 2);
        assert!(netlist.is_input(a));
        assert!(!netlist.is_input(y));
        assert_eq!(netlist.driver_of(y), Some(0));
        assert_eq!(netlist.fanout_of(y), &[1]);
        assert_eq!(netlist.fanout_of(a), &[0]);
        assert_eq!(netlist.net_name(z), "z");
    }

    #[test]
    fn initial_levels() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        assert!(!netlist.initial_level(a));
        netlist.set_initial(a, true);
        assert!(netlist.initial_level(a));
    }

    #[test]
    #[should_panic(expected = "needs 2 inputs")]
    fn gate_arity_checked() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let _ = netlist.gate(GateKind::And2, &[a], Duration::from_ps(1), "y");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn gate_inputs_must_exist() {
        let mut netlist = Netlist::new();
        let _ = netlist.gate(GateKind::Inv, &[5], Duration::from_ps(1), "y");
    }

    /// The C-element is monotone between stable states: for any input
    /// sequence, its output only changes when both inputs agree on the
    /// new value.
    #[test]
    fn c_element_only_moves_on_agreement() {
        let mut rng = SimRng::seed_from(11);
        for _case in 0..64 {
            let len = rng.range_inclusive(1, 49);
            let mut out = false;
            for _ in 0..len {
                let (a, b) = (rng.chance(0.5), rng.chance(0.5));
                let next = GateKind::C2.eval(&[a, b], out);
                if next != out {
                    assert_eq!(a, b);
                    assert_eq!(next, a);
                }
                out = next;
            }
        }
    }
}
