//! Event-driven simulation of a gate netlist.
//!
//! Transport-delay semantics: an input change propagates to a gate's
//! output exactly `delay` later. Equal-valued updates are suppressed via a
//! per-net *projected* value (the level the net will have once all
//! in-flight updates land), so stable logic quiesces. Ties pop in schedule
//! order (the kernel queue is FIFO for simultaneous events), making runs
//! deterministic.

use asynoc_kernel::{Duration, EventQueue, Time};

use crate::netlist::{NetId, Netlist};

/// One recorded level change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Change {
    /// When the net switched.
    pub time: Time,
    /// The net that switched.
    pub net: NetId,
    /// The new level.
    pub level: bool,
}

/// An event-driven simulator over a [`Netlist`].
///
/// # Examples
///
/// ```
/// use asynoc_gates::netlist::{GateKind, Netlist};
/// use asynoc_gates::GateSim;
/// use asynoc_kernel::{Duration, Time};
///
/// let mut netlist = Netlist::new();
/// let a = netlist.input("a");
/// let y = netlist.gate(GateKind::Inv, &[a], Duration::from_ps(10), "y");
/// let mut sim = GateSim::new(&netlist);
/// sim.settle(); // propagate initial levels: y rises at t=10
/// assert!(sim.level(y));
/// sim.set_at(Time::from_ps(100), a, true);
/// sim.run_until_quiet();
/// assert!(!sim.level(y)); // fell at 110 ps
/// ```
#[derive(Debug)]
pub struct GateSim<'a> {
    netlist: &'a Netlist,
    levels: Vec<bool>,
    projected: Vec<bool>,
    queue: EventQueue<(NetId, bool)>,
    now: Time,
    log: Vec<Change>,
    events_processed: u64,
}

impl<'a> GateSim<'a> {
    /// Creates a simulator with every net at its initial level and all
    /// gates scheduled for initial evaluation.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let levels: Vec<bool> = (0..netlist.net_count())
            .map(|n| netlist.initial_level(n))
            .collect();
        let mut sim = GateSim {
            netlist,
            projected: levels.clone(),
            levels,
            queue: EventQueue::new(),
            now: Time::ZERO,
            log: Vec::new(),
            events_processed: 0,
        };
        // Evaluate every gate against the initial levels so inconsistent
        // initial states resolve.
        for gate_index in 0..netlist.gate_count() {
            sim.evaluate_gate(gate_index);
        }
        sim
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The current level of `net`.
    #[must_use]
    pub fn level(&self, net: NetId) -> bool {
        self.levels[net]
    }

    /// The full waveform log so far (every applied level change, in time
    /// order).
    #[must_use]
    pub fn log(&self) -> &[Change] {
        &self.log
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules a testbench drive of a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `net` is gate-driven or `at` is in the simulator's past.
    pub fn set_at(&mut self, at: Time, net: NetId, level: bool) {
        assert!(
            self.netlist.is_input(net),
            "net {} is gate-driven; only primary inputs can be forced",
            self.netlist.net_name(net)
        );
        assert!(at >= self.now, "cannot schedule a drive in the past");
        self.projected[net] = level;
        self.queue.schedule(at, (net, level));
    }

    /// Toggles a primary input (two-phase transition signaling).
    ///
    /// # Panics
    ///
    /// Same as [`set_at`](Self::set_at).
    pub fn toggle_at(&mut self, at: Time, net: NetId) {
        let level = !self.projected[net];
        self.set_at(at, net, level);
    }

    fn evaluate_gate(&mut self, gate_index: usize) {
        let gate = &self.netlist.gates()[gate_index];
        let inputs: Vec<bool> = gate.inputs.iter().map(|&n| self.levels[n]).collect();
        let next = gate.kind.eval(&inputs, self.levels[gate.output]);
        if next != self.projected[gate.output] {
            self.projected[gate.output] = next;
            self.queue
                .schedule(self.now + gate.delay, (gate.output, next));
        }
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, (net, level))) = self.queue.pop() else {
            return false;
        };
        self.now = time;
        self.events_processed += 1;
        if self.levels[net] != level {
            self.levels[net] = level;
            self.log.push(Change { time, net, level });
            for &gate_index in self.netlist.fanout_of(net) {
                self.evaluate_gate(gate_index);
            }
        }
        true
    }

    /// Runs until no events remain or `limit` events were processed.
    ///
    /// # Panics
    ///
    /// Panics if the limit is hit — an unstable circuit (e.g. a ring
    /// oscillator) never quiesces, and hitting the limit almost always
    /// means a combinational loop was built by mistake.
    pub fn run_until_quiet(&mut self) {
        self.run_until_quiet_with_limit(1_000_000);
    }

    /// [`run_until_quiet`](Self::run_until_quiet) with an explicit event
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted.
    pub fn run_until_quiet_with_limit(&mut self, limit: u64) {
        let start = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed - start < limit,
                "circuit did not quiesce within {limit} events (oscillation?)"
            );
        }
    }

    /// Runs until simulation time reaches `deadline` (events at the
    /// deadline itself are processed).
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(t) = self.queue_peek() {
            if t > deadline {
                break;
            }
            let _ = self.step();
        }
        self.now = self.now.max(deadline);
    }

    fn queue_peek(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Times (ascending) at which `net` switched.
    #[must_use]
    pub fn transitions_of(&self, net: NetId) -> Vec<Time> {
        self.log
            .iter()
            .filter(|c| c.net == net)
            .map(|c| c.time)
            .collect()
    }

    /// The interval between the last two transitions of `net`, if any —
    /// the measured cycle time of a periodically toggling signal.
    #[must_use]
    pub fn last_period_of(&self, net: NetId) -> Option<Duration> {
        let times = self.transitions_of(net);
        match times.len() {
            0 | 1 => None,
            n => Some(times[n - 1] - times[n - 2]),
        }
    }
}

impl GateSim<'_> {
    /// Convenience alias: run the initial-evaluation events to quiescence.
    pub fn settle(&mut self) {
        self.run_until_quiet();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateKind;

    #[test]
    fn inverter_chain_accumulates_delay() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let b = netlist.gate(GateKind::Inv, &[a], Duration::from_ps(10), "b");
        let c = netlist.gate(GateKind::Inv, &[b], Duration::from_ps(10), "c");
        let mut sim = GateSim::new(&netlist);
        sim.run_until_quiet(); // settle: b=1 at 10, c=0 at 20
        assert!(sim.level(b));
        assert!(!sim.level(c));
        sim.set_at(Time::from_ps(100), a, true);
        sim.run_until_quiet();
        assert_eq!(
            sim.transitions_of(c).last().copied(),
            Some(Time::from_ps(120))
        );
        assert!(sim.level(c));
    }

    #[test]
    fn c_element_waits_for_both_inputs() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let b = netlist.input("b");
        let c = netlist.gate(GateKind::C2, &[a, b], Duration::from_ps(25), "c");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(10), a, true);
        sim.run_until_quiet();
        assert!(!sim.level(c), "one input high must not fire the C-element");
        sim.set_at(Time::from_ps(200), b, true);
        sim.run_until_quiet();
        assert!(sim.level(c));
        assert_eq!(sim.transitions_of(c), vec![Time::from_ps(225)]);
    }

    #[test]
    fn latch_captures_on_enable_fall() {
        let mut netlist = Netlist::new();
        let d = netlist.input("d");
        let en = netlist.input("en");
        netlist.set_initial(en, true);
        let q = netlist.gate(GateKind::Latch, &[d, en], Duration::from_ps(15), "q");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(50), d, true);
        sim.run_until_quiet();
        assert!(sim.level(q), "transparent latch follows data");
        sim.set_at(Time::from_ps(100), en, false);
        sim.set_at(Time::from_ps(150), d, false);
        sim.run_until_quiet();
        assert!(sim.level(q), "opaque latch must hold the captured value");
    }

    #[test]
    fn equal_value_updates_are_suppressed() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let b = netlist.input("b");
        let y = netlist.gate(GateKind::Or2, &[a, b], Duration::from_ps(10), "y");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(10), a, true);
        sim.set_at(Time::from_ps(20), b, true); // y already projected high
        sim.run_until_quiet();
        assert_eq!(sim.transitions_of(y).len(), 1, "no duplicate rise");
        assert!(sim.level(y));
    }

    #[test]
    fn glitch_propagates_through_xor() {
        // a -> xor(a, buf(a)): the delayed copy creates a pulse of the
        // buffer's delay on every input edge — transport semantics keep it.
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let slow = netlist.gate(GateKind::Buf, &[a], Duration::from_ps(30), "slow");
        let y = netlist.gate(GateKind::Xor2, &[a, slow], Duration::from_ps(5), "y");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(100), a, true);
        sim.run_until_quiet();
        let times = sim.transitions_of(y);
        assert_eq!(times, vec![Time::from_ps(105), Time::from_ps(135)]);
        assert!(!sim.level(y));
    }

    #[test]
    fn toggle_alternates_levels() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let y = netlist.gate(GateKind::Buf, &[a], Duration::from_ps(1), "y");
        let mut sim = GateSim::new(&netlist);
        for k in 0..4 {
            sim.toggle_at(Time::from_ps(10 * (k + 1)), a);
        }
        sim.run_until_quiet();
        assert_eq!(sim.transitions_of(y).len(), 4);
        assert!(!sim.level(y));
        assert_eq!(sim.last_period_of(y), Some(Duration::from_ps(10)));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let y = netlist.gate(GateKind::Buf, &[a], Duration::from_ps(50), "y");
        let mut sim = GateSim::new(&netlist);
        sim.set_at(Time::from_ps(100), a, true);
        sim.run_until(Time::from_ps(120));
        assert!(!sim.level(y), "y switches at 150, after the deadline");
        assert_eq!(sim.now(), Time::from_ps(120));
        sim.run_until_quiet();
        assert!(sim.level(y));
    }

    #[test]
    #[should_panic(expected = "gate-driven")]
    fn cannot_force_gate_outputs() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let y = netlist.gate(GateKind::Inv, &[a], Duration::from_ps(1), "y");
        GateSim::new(&netlist).set_at(Time::from_ps(1), y, true);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn ring_oscillator_detected() {
        // A genuine ring oscillator through a feedback placeholder: the
        // event budget must catch it instead of looping forever.
        let mut netlist = Netlist::new();
        let y = netlist.placeholder("y");
        netlist.gate_into(GateKind::Inv, &[y], Duration::from_ps(10), y);
        let mut sim = GateSim::new(&netlist);
        sim.run_until_quiet_with_limit(100);
    }

    #[test]
    fn feedback_loop_through_placeholder_stabilizes() {
        // An SR-ish hold loop: or(a, y) -> y latches high once `a` pulses.
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        let y = netlist.placeholder("y");
        netlist.gate_into(GateKind::Or2, &[a, y], Duration::from_ps(10), y);
        let mut sim = GateSim::new(&netlist);
        sim.settle();
        assert!(!sim.level(y));
        sim.set_at(Time::from_ps(100), a, true);
        sim.set_at(Time::from_ps(120), a, false);
        sim.run_until_quiet();
        assert!(sim.level(y), "the feedback loop must hold the pulse");
    }

    #[test]
    fn settle_alias() {
        let mut netlist = Netlist::new();
        let a = netlist.input("a");
        netlist.set_initial(a, true);
        let y = netlist.gate(GateKind::Buf, &[a], Duration::from_ps(5), "y");
        let mut sim = GateSim::new(&netlist);
        sim.settle();
        assert!(sim.level(y));
    }
}
