//! The exploration-engine guard: scoring a placement through
//! [`asynoc::explore::evaluate`] must cost what the underlying run costs
//! (the scoring layer adds only a config build and a handful of scalar
//! reads), and the exhaustive per-level sweep must stay an honest
//! serial-sum of its constituent runs plus front bookkeeping.
//!
//! Two cases over the deterministic 4x4 smoke configuration:
//!
//! - `evaluate_hybrid` — one placement (the paper's headline hybrid)
//!   scored end to end
//! - `explore_level_4x4` — the full 9-point exhaustive per-level sweep
//!
//! `--smoke` shrinks the sample count for CI. With `--json <path>` each
//! case's *fastest* sample, normalized to ns per simulated event, is
//! checked against the stored baseline record (seeded on first run,
//! refreshed with `--update-baseline`).

use asynoc::explore::{evaluate, explore, level_space, ExploreSpec};
use asynoc::{Architecture, MotSize, Network, NetworkConfig, RunConfig, SpecMap};
use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_bench::timing::Harness;

/// The deterministic event count of one placement's run under `spec`.
fn events_of(spec: &ExploreSpec, map: &SpecMap) -> u64 {
    let label = map.label().unwrap_or(Architecture::OptHybridSpeculative);
    let config = NetworkConfig::new(spec.size, label)
        .with_seed(spec.seed)
        .with_flits_per_packet(spec.flits_per_packet)
        .with_spec_map(map)
        .expect("valid placement");
    let network = Network::new(config).expect("valid config");
    let run = RunConfig::new(spec.benchmark, spec.rate_gfs)
        .expect("positive rate")
        .with_phases(spec.phases);
    network.run(&run).expect("run succeeds").events_processed
}

fn main() {
    let args = parse_bench_args();
    let samples = if args.smoke { 3 } else { 10 };
    let harness = Harness::new(samples);

    let size = MotSize::new(4).expect("4x4 is a valid size");
    let spec = ExploreSpec::smoke(size);
    let hybrid = SpecMap::preset(Architecture::OptHybridSpeculative, size);

    // Every constituent run is deterministic, so untimed passes fix the
    // event counts the timed cases are normalized by.
    let hybrid_events = events_of(&spec, &hybrid);
    let sweep_events: u64 = level_space(size).iter().map(|m| events_of(&spec, m)).sum();

    let group = harness.group("explore_smoke_4x4");
    let evaluate_hybrid = group
        .bench_stats("evaluate_hybrid", || {
            evaluate(&spec, &hybrid).expect("evaluation succeeds")
        })
        .min;
    let explore_level = group
        .bench_stats("explore_level_4x4", || {
            explore(&spec).expect("exploration succeeds")
        })
        .min;

    if let Some(path) = args.json {
        let cases = [
            ("evaluate_hybrid", evaluate_hybrid, hybrid_events),
            ("explore_level_4x4", explore_level, sweep_events),
        ]
        .map(|(id, fastest, events)| BenchCase {
            id: id.to_string(),
            median: fastest,
            events,
        });
        if let Err(message) = guard("explore", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
