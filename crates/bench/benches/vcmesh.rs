//! The VC mesh substrate's cost guard: per-event wall-clock of the
//! credit-based router under multicast load, one case per multicast
//! scheme plus a unicast reference.
//!
//! The credit loop roughly doubles the event population of the plain
//! mesh (every data launch eventually triggers a credit return), so
//! this bench normalizes by the substrate's *own* event count — the
//! guard holds the router's per-event cost, not the protocol's event
//! volume.
//!
//! `--smoke` shrinks the window and sample count for CI. With
//! `--json <path>` each case's *fastest* sample, normalized to ns per
//! simulated event, is checked against the stored baseline record
//! (seeded on first run, refreshed with `--update-baseline`).

use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_bench::timing::Harness;
use asynoc_kernel::Duration;
use asynoc_mesh::MeshSize;
use asynoc_stats::Phases;
use asynoc_traffic::Benchmark;
use asynoc_vcmesh::{McastScheme, VcMeshConfig, VcMeshNetwork};

fn main() {
    let args = parse_bench_args();
    let (samples, measure_ns) = if args.smoke { (3, 200) } else { (15, 800) };
    let harness = Harness::new(samples);
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(measure_ns));

    let group = harness.group(&format!("vcmesh_4x4_{measure_ns}ns"));
    let mut cases = Vec::new();
    for (id, benchmark, mcast) in [
        ("unicast_xy", Benchmark::UniformRandom, McastScheme::XyTree),
        ("mcast_xy_tree", Benchmark::Multicast10, McastScheme::XyTree),
        ("mcast_dpm", Benchmark::Multicast10, McastScheme::Dpm),
    ] {
        let network = VcMeshNetwork::new(
            VcMeshConfig::new(MeshSize::new(4, 4).expect("valid size"))
                .with_seed(3)
                .with_mcast(mcast),
        )
        .expect("valid config");
        // The run is deterministic, so one untimed pass fixes the event
        // count every timed sample processes.
        let events = network
            .run(benchmark, 0.15, phases)
            .expect("run succeeds")
            .events_processed;
        let fastest = group
            .bench_stats(id, || {
                network.run(benchmark, 0.15, phases).expect("run succeeds")
            })
            .min;
        cases.push(BenchCase {
            id: id.to_string(),
            median: fastest,
            events,
        });
    }

    if let Some(path) = args.json {
        if let Err(message) = guard("vcmesh", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
