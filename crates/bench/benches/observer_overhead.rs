//! The observer-overhead guard: a run with no observers must cost the
//! same as before the telemetry stack existed, and the full stack's cost
//! must be visible (and modest) next to it.
//!
//! Three cases over an identical 8x8 hybrid-speculative run:
//!
//! - `no_observers` — `run()`, the zero-observer fast path
//! - `noop_observer` — one registered observer that does nothing, pricing
//!   the dispatch alone
//! - `full_telemetry` — latency histograms + time-series + waste ledger
//! - `profiled_run` — `run()` with the engine self-profile enabled
//!   ([`RunConfig::with_profile`]); gated hard at ≤5% over `no_observers`
//!   in addition to the stored baseline, because the profile's promise is
//!   that it is close to free
//!
//! `--smoke` shrinks the window and sample count for CI. With
//! `--json <path>` each case's *fastest* sample, normalized to ns per
//! simulated event, is checked against the stored baseline record
//! (seeded on first run, refreshed with `--update-baseline`); a
//! regression beyond the tolerance fails the process. The minimum is the
//! noise-robust estimator on a shared machine — external load only ever
//! adds time, so medians swing with the host while minimums track the
//! code.

use asynoc::{
    Architecture, Benchmark, Duration, MotNode, Network, NetworkConfig, Observer, Phases,
    RunConfig, SimEvent, Time,
};
use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_bench::timing::Harness;
use asynoc_telemetry::{LatencyHistograms, SpeculationWaste, TimeSeries};

struct Noop;

impl Observer<MotNode> for Noop {
    fn on_event(&mut self, _at: Time, _in_window: bool, _event: &SimEvent<'_, MotNode>) {}
}

fn main() {
    let args = parse_bench_args();
    let (samples, measure_ns) = if args.smoke { (3, 200) } else { (20, 800) };
    let harness = Harness::new(samples);

    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(3),
    )
    .expect("valid config");
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(measure_ns));
    let run = RunConfig::new(Benchmark::Multicast10, 0.3)
        .expect("positive rate")
        .with_phases(phases);
    let timing = network.config().timing();
    let (wire_fj, drop_fj) = (timing.wire_fj, timing.drop_fj);

    // The run is deterministic, so one untimed pass fixes the event
    // count every timed case processes.
    let events = network.run(&run).expect("run succeeds").events_processed;

    let group = harness.group(&format!("observer_overhead_{measure_ns}ns"));
    let no_observers = group
        .bench_stats("no_observers", || network.run(&run).expect("run succeeds"))
        .min;
    let noop_observer = group
        .bench_stats("noop_observer", || {
            let mut noop = Noop;
            network
                .run_with_observers(&run, &mut [&mut noop])
                .expect("run succeeds")
        })
        .min;
    let full_telemetry = group
        .bench_stats("full_telemetry", || {
            let mut latency = LatencyHistograms::new(phases, 8);
            let mut timeseries: TimeSeries<MotNode> =
                TimeSeries::single_level(Duration::from_ns(100), "nodes", 120);
            let mut waste: SpeculationWaste<MotNode> = SpeculationWaste::generic(wire_fj, drop_fj);
            network
                .run_with_observers(&run, &mut [&mut latency, &mut timeseries, &mut waste])
                .expect("run succeeds")
        })
        .min;
    let profiled = RunConfig::new(Benchmark::Multicast10, 0.3)
        .expect("positive rate")
        .with_phases(phases)
        .with_profile(true);
    let profiled_run = group
        .bench_stats("profiled_run", || {
            let report = network.run(&profiled).expect("run succeeds");
            assert!(report.profile.is_some(), "profile was collected");
            report
        })
        .min;

    // Hard gate, independent of any stored baseline: a profiled serial
    // run adds two phase-boundary clock stamps and a final fold — it
    // must stay within 5% of the bare run. Minimums are compared so a
    // noisy neighbor can only produce false passes, not false failures;
    // smoke runs are too short for a 5% resolution, so they get a wider
    // band that still catches a hot-path regression.
    let limit = if args.smoke { 1.15 } else { 1.05 };
    let ratio = profiled_run.as_nanos() as f64 / no_observers.as_nanos().max(1) as f64;
    if ratio > limit {
        eprintln!(
            "profiled run costs {:.1}% over the bare run (limit {:.0}%): {:?} vs {:?}",
            (ratio - 1.0) * 100.0,
            (limit - 1.0) * 100.0,
            profiled_run,
            no_observers
        );
        std::process::exit(1);
    }

    if let Some(path) = args.json {
        let cases = [
            ("no_observers", no_observers),
            ("noop_observer", noop_observer),
            ("full_telemetry", full_telemetry),
            ("profiled_run", profiled_run),
        ]
        .map(|(id, fastest)| BenchCase {
            id: id.to_string(),
            median: fastest,
            events,
        });
        if let Err(message) = guard("observer_overhead", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
