//! The disarmed-faults guard: threading an *empty* fault table through
//! the run loop must cost the same as the plain zero-observer path —
//! the injection hooks are one `Option` branch when nothing is armed,
//! and this bench holds them to it.
//!
//! Three cases over an identical 8x8 hybrid-speculative run:
//!
//! - `no_faults` — `run()`, the reference path
//! - `disarmed_faults` — `run_with_faults()` with an empty table,
//!   pricing the hook dispatch alone
//! - `armed_faults` — a small recoverable plan actually firing, showing
//!   the injected work stays proportionate
//!
//! `--smoke` shrinks the window and sample count for CI. With
//! `--json <path>` each case's *fastest* sample, normalized to ns per
//! simulated event, is checked against the stored baseline record
//! (seeded on first run, refreshed with `--update-baseline`); minimums
//! track the code where medians track a shared host's load.

use asynoc::{Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig};
use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_bench::timing::Harness;
use asynoc_engine::ArmedFaults;

fn main() {
    let args = parse_bench_args();
    let (samples, measure_ns) = if args.smoke { (3, 200) } else { (20, 800) };
    let harness = Harness::new(samples);

    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(3),
    )
    .expect("valid config");
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(measure_ns));
    let run = RunConfig::new(Benchmark::Multicast10, 0.3)
        .expect("positive rate")
        .with_phases(phases);

    // The run is deterministic, so one untimed pass fixes the event
    // count every timed case processes.
    let events = network.run(&run).expect("run succeeds").events_processed;

    let group = harness.group(&format!("faults_{measure_ns}ns"));
    let no_faults = group
        .bench_stats("no_faults", || network.run(&run).expect("run succeeds"))
        .min;
    let disarmed_faults = group
        .bench_stats("disarmed_faults", || {
            let mut faults = ArmedFaults::new();
            network
                .run_with_faults(&run, &mut faults, &mut [])
                .expect("run succeeds")
        })
        .min;
    let armed_faults = group
        .bench_stats("armed_faults", || {
            let mut faults = ArmedFaults::new();
            faults.add_stall(0, 3, Duration::from_ps(300));
            faults.add_stall(7, 2, Duration::from_ps(200));
            faults.add_drop(1, 2, 1, Duration::from_ps(500));
            network
                .run_with_faults(&run, &mut faults, &mut [])
                .expect("run succeeds")
        })
        .min;

    if let Some(path) = args.json {
        let cases = [
            ("no_faults", no_faults),
            ("disarmed_faults", disarmed_faults),
            ("armed_faults", armed_faults),
        ]
        .map(|(id, fastest)| BenchCase {
            id: id.to_string(),
            median: fastest,
            events,
        });
        if let Err(message) = guard("faults", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
