//! Criterion benches of the node state machines — the inner loop of the
//! simulator (millions of decisions per run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asynoc_nodes::{FaninState, FanoutState};
use asynoc_packet::{FlitKind, RouteSymbol};
use asynoc_topology::FanoutKind;

const PACKET: [FlitKind; 5] = [
    FlitKind::Header,
    FlitKind::Body,
    FlitKind::Body,
    FlitKind::Body,
    FlitKind::Tail,
];

fn bench_fanout_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_packet_decisions");
    for kind in [
        FanoutKind::Baseline,
        FanoutKind::NonSpeculative,
        FanoutKind::Speculative,
        FanoutKind::OptSpeculative,
        FanoutKind::OptNonSpeculative,
    ] {
        let symbol = if kind == FanoutKind::Baseline {
            RouteSymbol::Top
        } else {
            RouteSymbol::Both
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &symbol,
            |b, &symbol| {
                b.iter(|| {
                    let mut state = FanoutState::new(kind);
                    for flit in PACKET {
                        let decision = state.peek(flit, symbol);
                        std::hint::black_box(decision);
                        std::hint::black_box(state.decide(flit, symbol));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_fanin_arbitration(c: &mut Criterion) {
    c.bench_function("fanin_contested_grants_1k", |b| {
        b.iter(|| {
            let mut arb = FaninState::new();
            for _ in 0..1_000 {
                let winner = arb.select(true, true).expect("both present");
                arb.advance(winner, FlitKind::Body);
                std::hint::black_box(winner);
            }
        })
    });
}

criterion_group!(benches, bench_fanout_decisions, bench_fanin_arbitration);
criterion_main!(benches);
