//! Benches of the node state machines — the inner loop of the simulator
//! (millions of decisions per run).

use asynoc_bench::timing::Harness;
use asynoc_nodes::{FaninState, FanoutState};
use asynoc_packet::{FlitKind, RouteSymbol};
use asynoc_topology::FanoutKind;

const PACKET: [FlitKind; 5] = [
    FlitKind::Header,
    FlitKind::Body,
    FlitKind::Body,
    FlitKind::Body,
    FlitKind::Tail,
];

fn main() {
    let harness = Harness::new(20);

    let group = harness.group("fanout_packet_decisions");
    for kind in [
        FanoutKind::Baseline,
        FanoutKind::NonSpeculative,
        FanoutKind::Speculative,
        FanoutKind::OptSpeculative,
        FanoutKind::OptNonSpeculative,
    ] {
        let symbol = if kind == FanoutKind::Baseline {
            RouteSymbol::Top
        } else {
            RouteSymbol::Both
        };
        group.bench(&kind.to_string(), || {
            let mut state = FanoutState::new(kind);
            for flit in PACKET {
                let decision = state.peek(flit, symbol);
                std::hint::black_box(decision);
                std::hint::black_box(state.decide(flit, symbol));
            }
        });
    }

    let group = harness.group("fanin_arbitration");
    group.bench("fanin_contested_grants_1k", || {
        let mut arb = FaninState::new();
        for _ in 0..1_000 {
            let winner = arb.select(true, true).expect("both present");
            arb.advance(winner, FlitKind::Body);
            std::hint::black_box(winner);
        }
    });
}
