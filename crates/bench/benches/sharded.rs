//! Sharded-engine throughput: serial vs conservative-parallel, 64×64.
//!
//! The sharded engine's performance claim is that splitting one run
//! across cores beats the serial loop on the topologies that need it —
//! a 64×64 MoT keeps tens of thousands of events in flight, enough work
//! per barrier window to amortize the synchronization. Its correctness
//! claim (bit-identical results at every shard count) is enforced by
//! `tests/sharded_differential.rs`; this bench cross-checks it anyway
//! via `events_processed` and then times the split.
//!
//! Timing is *paired*: each round times one serial pass then one
//! sharded pass back-to-back, and the reported speedup is the best
//! round's serial/sharded quotient — external load slows both halves
//! of a round together, so the quotient is stable where independent
//! medians swing.
//!
//! The speedup gate only arms on a machine with ≥ 4 hardware threads.
//! On fewer cores the shards time-slice one another and the window
//! barrier's yield loop turns into pure overhead, so the bench prints
//! the (sub-1.0) quotient for the record and gates only on determinism
//! and the per-case `--json` baseline.

use std::time::{Duration, Instant};

use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig, RunReport};
use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_kernel::Duration as SimDuration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;

fn mot_run(shards: usize) -> (Duration, RunReport) {
    let config = NetworkConfig::new(
        asynoc::MotSize::new(64).expect("64x64 is the supported maximum"),
        Architecture::OptHybridSpeculative,
    )
    .with_seed(7);
    let network = Network::new(config).expect("64x64 network builds");
    let run = RunConfig::quick(Benchmark::Multicast5, 0.2).with_shards(shards);
    let start = Instant::now();
    let report = network.run(&run).expect("run succeeds");
    (start.elapsed(), report)
}

fn mesh_run(shards: usize) -> (Duration, asynoc_mesh::MeshReport) {
    let config = MeshConfig::new(MeshSize::new(8, 8).expect("8x8 is the supported maximum"))
        .with_seed(7)
        .with_shards(shards);
    let network = MeshNetwork::new(config).expect("8x8 mesh builds");
    let phases = Phases::new(SimDuration::from_ns(100), SimDuration::from_ns(1_000));
    let start = Instant::now();
    let report = network
        .run(Benchmark::UniformRandom, 0.15, phases)
        .expect("run succeeds");
    (start.elapsed(), report)
}

fn format_ms(d: Duration) -> String {
    format!("{:8.2} ms", d.as_secs_f64() * 1_000.0)
}

struct Outcome {
    serial_best: Duration,
    sharded_best: Duration,
    best_speedup: f64,
    events: u64,
}

/// Paired serial/sharded rounds for one substrate; the warmup round
/// doubles as the determinism cross-check.
fn measure(
    label: &str,
    rounds: u32,
    shards: usize,
    mut run: impl FnMut(usize) -> (Duration, u64),
) -> Outcome {
    println!("\nsharded_{label} (1 vs {shards} shards)");
    println!("{}", "-".repeat(48));
    let (_, serial_events) = run(1);
    let (_, sharded_events) = run(shards);
    assert_eq!(
        serial_events, sharded_events,
        "{label}: serial and sharded runs diverged (events_processed)"
    );
    let mut serial_best = Duration::MAX;
    let mut sharded_best = Duration::MAX;
    let mut best_speedup = 0.0f64;
    for _ in 0..rounds {
        let (serial, _) = run(1);
        let (sharded, _) = run(shards);
        serial_best = serial_best.min(serial);
        sharded_best = sharded_best.min(sharded);
        let speedup = serial.as_secs_f64() / sharded.as_secs_f64().max(f64::MIN_POSITIVE);
        best_speedup = best_speedup.max(speedup);
    }
    println!("  serial   best-of-{rounds}  {}", format_ms(serial_best));
    println!("  sharded  best-of-{rounds}  {}", format_ms(sharded_best));
    println!("  speedup at {shards} shards: {best_speedup:.2}x (best paired round)");
    Outcome {
        serial_best,
        sharded_best,
        best_speedup,
        events: serial_events,
    }
}

fn main() {
    let args = parse_bench_args();
    let rounds = if args.smoke { 2 } else { 5 };
    let threads = asynoc::default_parallelism();
    // Two shards per substrate band keeps cut traffic low; more shards
    // only pay off past ~4 cores, and the differential suite already
    // covers higher counts for correctness.
    let shards = threads.clamp(2, 4);

    let mot = measure("mot64", rounds, shards, |s| {
        let (wall, report) = mot_run(s);
        (wall, report.events_processed)
    });
    let mesh = measure("mesh8", rounds, shards, |s| {
        let (wall, report) = mesh_run(s);
        (wall, report.events_processed)
    });

    if threads >= 4 {
        if mot.best_speedup < 1.0 {
            eprintln!(
                "64x64 MoT sharded run is only {:.2}x serial on {threads} threads \
                 (acceptance floor is 1.0x)",
                mot.best_speedup
            );
            std::process::exit(1);
        }
    } else {
        println!(
            "\n{threads} hardware thread(s): speedup gate disarmed \
             (shards time-slice a single core); determinism still enforced"
        );
    }

    if let Some(path) = args.json {
        // Guard only the serial halves: sharded wall time on a shared or
        // core-starved machine is dominated by scheduling noise, and the
        // speedup gate above already covers the parallel side where it
        // is meaningful.
        let cases = vec![
            BenchCase {
                id: "mot64_serial".to_string(),
                median: mot.serial_best,
                events: mot.events,
            },
            BenchCase {
                id: "mesh8_serial".to_string(),
                median: mesh.serial_best,
                events: mesh.events,
            },
        ];
        let _ = (mot.sharded_best, mesh.sharded_best);
        if let Err(message) = guard("sharded", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
