//! Scheduler throughput: heap vs calendar event queue at three depths.
//!
//! The classic *hold model* (Vaucher & Duval): the queue is pre-filled
//! to a fixed depth, then each operation pops the earliest event and
//! schedules a replacement a random gap in the future, so the depth
//! stays constant while the time axis advances. A binary heap pays
//! `O(log depth)` per hold; the calendar queue pays amortized `O(1)`,
//! so its advantage must *grow* with depth — the acceptance criterion
//! is calendar ≥ 1.3× heap holds/sec at the deepest depth.
//!
//! Timing is *paired*: each round times one heap pass then one calendar
//! pass back-to-back, and the acceptance ratio is the best round's
//! heap/calendar quotient. External load on a shared machine slows both
//! halves of a round together, so a paired quotient is stable where
//! independent medians swing; and since contention can only make either
//! side slower, the best round is the closest view of the hardware's
//! true ratio.
//!
//! `--smoke` shrinks the per-depth operation count for CI. With
//! `--json <path>` each case's fastest round, normalized to ns per
//! hold, is checked against the stored baseline (seeded on first run,
//! refreshed with `--update-baseline`).

use std::time::{Duration, Instant};

use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_kernel::{SchedulerKind, SchedulerQueue, SimRng, Time};

/// One hold-model pass: pre-fill to `depth`, run `ops` pop+push holds,
/// then drain. Gap sampling is seeded, so both queue kinds see the
/// identical event sequence.
///
/// The gap range scales with depth so the pending-event density stays
/// near one event per picosecond at every depth — the regime simulator
/// runs actually occupy. A fixed range would push deep queues far past
/// one event per time quantum, where no calendar (whatever its width)
/// can separate events into buckets and the comparison degenerates into
/// a memmove contest inside oversized buckets.
fn hold(kind: SchedulerKind, depth: usize, ops: u64) -> u64 {
    let gap_max = depth.max(1_024);
    let mut rng = SimRng::seed_from(depth as u64);
    let mut queue: SchedulerQueue<u64> = SchedulerQueue::with_capacity(kind, depth);
    for i in 0..depth {
        queue.schedule(
            Time::from_ps(rng.range_inclusive(0, 2 * gap_max) as u64),
            i as u64,
        );
    }
    let mut checksum = 0u64;
    for _ in 0..ops {
        let (time, payload) = queue.pop().expect("hold keeps the queue full");
        checksum = checksum.wrapping_add(time.as_ps()).wrapping_add(payload);
        let gap = rng.range_inclusive(50, gap_max) as u64;
        queue.schedule(time + asynoc_kernel::Duration::from_ps(gap), payload);
    }
    while let Some((time, _)) = queue.pop() {
        checksum = checksum.wrapping_add(time.as_ps());
    }
    checksum
}

fn timed(kind: SchedulerKind, depth: usize, ops: u64) -> (Duration, u64) {
    let start = Instant::now();
    let checksum = std::hint::black_box(hold(kind, depth, ops));
    (start.elapsed(), checksum)
}

fn format_ms(d: Duration) -> String {
    format!("{:8.2} ms", d.as_secs_f64() * 1_000.0)
}

fn main() {
    let args = parse_bench_args();
    // Scale holds with depth so the timed region is hold-dominated even
    // at the deepest point (pre-fill + drain are 2×depth operations;
    // anything close to that and the measurement mostly times queue
    // construction).
    let mult: u64 = if args.smoke { 4 } else { 16 };
    let floor: u64 = if args.smoke { 40_000 } else { 400_000 };
    let rounds = if args.smoke { 5 } else { 10 };

    // The deepest point is deliberately cache-resident: past ~10^5
    // pending events both queues are DRAM-latency-bound on this class of
    // machine and the comparison measures the memory system, not the
    // algorithms. 4096 is also the realistic deep operating point for
    // engine runs (a 64×64 substrate keeps a few thousand events
    // pending).
    const DEPTHS: [usize; 3] = [256, 1_024, 4_096];

    // Same seeds per depth ⇒ both kinds process the identical sequence;
    // checksums cross-check that (and defeat dead-code elimination).
    let mut cases = Vec::new();
    let mut per_depth = Vec::new();
    for depth in DEPTHS {
        let ops = (depth as u64 * mult).max(floor);
        println!("\nscheduler_hold_depth_{depth}");
        println!("{}", "-".repeat(48));
        // Warmup (untimed) doubles as the determinism cross-check.
        let (_, heap_sum) = timed(SchedulerKind::Heap, depth, ops);
        let (_, calendar_sum) = timed(SchedulerKind::Calendar, depth, ops);
        assert_eq!(
            heap_sum, calendar_sum,
            "depth {depth}: queue kinds diverged on the same event sequence"
        );
        let mut heap_best = Duration::MAX;
        let mut calendar_best = Duration::MAX;
        let mut best_ratio = 0.0f64;
        for _ in 0..rounds {
            let (heap, _) = timed(SchedulerKind::Heap, depth, ops);
            let (calendar, _) = timed(SchedulerKind::Calendar, depth, ops);
            heap_best = heap_best.min(heap);
            calendar_best = calendar_best.min(calendar);
            let ratio = heap.as_secs_f64() / calendar.as_secs_f64().max(f64::MIN_POSITIVE);
            best_ratio = best_ratio.max(ratio);
        }
        println!("  heap      best-of-{rounds}  {}", format_ms(heap_best));
        println!("  calendar  best-of-{rounds}  {}", format_ms(calendar_best));
        println!("  calendar speedup at depth {depth}: {best_ratio:.2}x (best paired round)");
        per_depth.push((depth, best_ratio));
        cases.push(BenchCase {
            id: format!("heap_{depth}"),
            median: heap_best,
            events: ops,
        });
        cases.push(BenchCase {
            id: format!("calendar_{depth}"),
            median: calendar_best,
            events: ops,
        });
    }

    let &(deepest, ratio) = per_depth.last().expect("three depths measured");
    if ratio < 1.3 {
        eprintln!(
            "calendar queue is only {ratio:.2}x the heap at depth {deepest} \
             (acceptance floor is 1.3x)"
        );
        std::process::exit(1);
    }

    if let Some(path) = args.json {
        if let Err(message) = guard("scheduler", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
