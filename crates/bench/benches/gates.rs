//! Criterion benches of the gate-level simulator: events per second on the
//! free-running MOUSETRAP pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asynoc_gates::mousetrap::{Pipeline, StageDelays};
use asynoc_gates::GateSim;
use asynoc_kernel::{Duration, Time};

fn bench_pipeline_depths(c: &mut Criterion) {
    let mut group = c.benchmark_group("mousetrap_free_run_20ns");
    group.sample_size(20);
    for stages in [2usize, 4, 8, 16] {
        let pipeline = Pipeline::self_timed(
            stages,
            StageDelays::default(),
            Duration::from_ps(60),
            Duration::from_ps(60),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(stages),
            &pipeline,
            |b, pipeline| {
                b.iter(|| {
                    let mut sim = GateSim::new(pipeline.netlist());
                    sim.run_until(Time::from_ns(20));
                    sim.events_processed()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_depths);
criterion_main!(benches);
