//! Benches of the gate-level simulator: events per second on the
//! free-running MOUSETRAP pipeline.

use asynoc_bench::timing::Harness;
use asynoc_gates::mousetrap::{Pipeline, StageDelays};
use asynoc_gates::GateSim;
use asynoc_kernel::{Duration, Time};

fn main() {
    let harness = Harness::new(20);
    let group = harness.group("mousetrap_free_run_20ns");
    for stages in [2usize, 4, 8, 16] {
        let pipeline = Pipeline::self_timed(
            stages,
            StageDelays::default(),
            Duration::from_ps(60),
            Duration::from_ps(60),
        );
        group.bench(&stages.to_string(), || {
            let mut sim = GateSim::new(pipeline.netlist());
            sim.run_until(Time::from_ns(20));
            sim.events_processed()
        });
    }
}
