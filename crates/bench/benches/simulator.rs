//! Criterion benches of the simulator itself: wall-clock cost of one
//! benchmark window per architecture. These track the engine's performance
//! (events/second), which bounds how precise the table regeneration can be
//! in a given time budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asynoc::{Architecture, Benchmark, Duration, Network, NetworkConfig, Phases, RunConfig};

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_uniform_800ns");
    group.sample_size(20);
    for arch in Architecture::ALL {
        let network = Network::new(NetworkConfig::eight_by_eight(arch).with_seed(3))
            .expect("valid config");
        let run = RunConfig::new(Benchmark::UniformRandom, 0.4)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(80), Duration::from_ns(800)));
        group.bench_with_input(
            BenchmarkId::from_parameter(arch.to_string()),
            &run,
            |b, run| b.iter(|| network.run(run).expect("run succeeds")),
        );
    }
    group.finish();
}

fn bench_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_opt_hybrid_800ns");
    group.sample_size(20);
    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(3),
    )
    .expect("valid config");
    for benchmark in Benchmark::ALL {
        let run = RunConfig::new(benchmark, 0.4)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(80), Duration::from_ns(800)));
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.to_string()),
            &run,
            |b, run| b.iter(|| network.run(run).expect("run succeeds")),
        );
    }
    group.finish();
}

fn bench_network_sizes(c: &mut Criterion) {
    use asynoc::MotSize;
    let mut group = c.benchmark_group("run_by_size_400ns");
    group.sample_size(15);
    for n in [4usize, 8, 16, 32] {
        let network = Network::new(NetworkConfig::new(
            MotSize::new(n).expect("valid size"),
            Architecture::OptHybridSpeculative,
        ))
        .expect("valid config");
        let run = RunConfig::new(Benchmark::UniformRandom, 0.3)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(40), Duration::from_ns(400)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &run, |b, run| {
            b.iter(|| network.run(run).expect("run succeeds"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_architectures,
    bench_benchmarks,
    bench_network_sizes
);
criterion_main!(benches);
