//! Benches of the simulator itself: wall-clock cost of one benchmark
//! window per architecture. These track the engine's performance
//! (events/second), which bounds how precise the table regeneration can be
//! in a given time budget.

use asynoc::{
    Architecture, Benchmark, Duration, MotSize, Network, NetworkConfig, Phases, RunConfig,
};
use asynoc_bench::timing::Harness;

fn main() {
    let harness = Harness::new(20);

    let group = harness.group("run_uniform_800ns");
    for arch in Architecture::ALL {
        let network =
            Network::new(NetworkConfig::eight_by_eight(arch).with_seed(3)).expect("valid config");
        let run = RunConfig::new(Benchmark::UniformRandom, 0.4)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(80), Duration::from_ns(800)));
        group.bench(&arch.to_string(), || {
            network.run(&run).expect("run succeeds")
        });
    }

    let group = harness.group("run_opt_hybrid_800ns");
    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(3),
    )
    .expect("valid config");
    for benchmark in Benchmark::ALL {
        let run = RunConfig::new(benchmark, 0.4)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(80), Duration::from_ns(800)));
        group.bench(&benchmark.to_string(), || {
            network.run(&run).expect("run succeeds")
        });
    }

    let group = harness.group("run_by_size_400ns");
    for n in [4usize, 8, 16, 32] {
        let network = Network::new(NetworkConfig::new(
            MotSize::new(n).expect("valid size"),
            Architecture::OptHybridSpeculative,
        ))
        .expect("valid config");
        let run = RunConfig::new(Benchmark::UniformRandom, 0.3)
            .expect("positive rate")
            .with_phases(Phases::new(Duration::from_ns(40), Duration::from_ns(400)));
        group.bench(&n.to_string(), || network.run(&run).expect("run succeeds"));
    }
}
