//! Criterion benches of the routing encoder — the per-packet work a source
//! does under source routing (multicast tree marking), across destination
//! set sizes and network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asynoc_packet::DestSet;
use asynoc_topology::{multicast_route, MotSize};

fn bench_multicast_route(c: &mut Criterion) {
    let size = MotSize::new(8).expect("valid size");
    let mut group = c.benchmark_group("multicast_route_8x8");
    for k in [1usize, 2, 4, 8] {
        let dests: DestSet = (0..k).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &dests, |b, &dests| {
            b.iter(|| multicast_route(size, 0, dests).expect("valid route"))
        });
    }
    group.finish();
}

fn bench_route_by_network_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_route_by_size");
    for n in [4usize, 8, 16, 32, 64] {
        let size = MotSize::new(n).expect("valid size");
        let dests: DestSet = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dests, |b, &dests| {
            b.iter(|| multicast_route(size, 0, dests).expect("valid route"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multicast_route, bench_route_by_network_size);
criterion_main!(benches);
