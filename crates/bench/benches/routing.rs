//! Benches of the routing encoder — the per-packet work a source does
//! under source routing (multicast tree marking), across destination set
//! sizes and network sizes.

use asynoc_bench::timing::Harness;
use asynoc_packet::DestSet;
use asynoc_topology::{multicast_route, MotSize};

fn main() {
    let harness = Harness::new(20);

    let group = harness.group("multicast_route_8x8");
    let size = MotSize::new(8).expect("valid size");
    for k in [1usize, 2, 4, 8] {
        let dests: DestSet = (0..k).collect();
        group.bench(&k.to_string(), || {
            multicast_route(size, 0, dests).expect("valid route")
        });
    }

    let group = harness.group("broadcast_route_by_size");
    for n in [4usize, 8, 16, 32, 64] {
        let size = MotSize::new(n).expect("valid size");
        let dests: DestSet = (0..n).collect();
        group.bench(&n.to_string(), || {
            multicast_route(size, 0, dests).expect("valid route")
        });
    }
}
