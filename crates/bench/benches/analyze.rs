//! Analysis-pipeline throughput: the offline `asynoc analyze` stages
//! priced per trace event, so a slowdown in ingest or span
//! reconstruction is caught before it makes post-run analysis painful
//! on long traces.
//!
//! One 8x8 hybrid-speculative run is traced in-memory, then each stage
//! is timed over the same record stream:
//!
//! - `parse_trace` — NDJSON text back into meta + records
//! - `span_forest` — causal span-tree reconstruction alone
//! - `full_analysis` — the complete report build (spans, critical
//!   paths, attribution, heatmaps, scorecard)
//!
//! `--smoke` shrinks the window and sample count for CI; `--json <path>`
//! guards the stored ns/event baseline as in `observer_overhead` —
//! recording each case's *fastest* sample, since on a shared machine
//! external load only ever adds time.

use asynoc::{
    Architecture, Benchmark, Duration, MotNode, Network, NetworkConfig, Observer, Phases, RunConfig,
};
use asynoc_analysis::{Analysis, SpanForest};
use asynoc_bench::baseline::{guard, parse_bench_args, BenchCase};
use asynoc_bench::timing::Harness;
use asynoc_telemetry::{parse_trace, render_trace, TraceCollector, TraceMeta};
use asynoc_topology::{FaninNodeId, FanoutNodeId};

fn main() {
    let args = parse_bench_args();
    let (samples, measure_ns) = if args.smoke { (3, 200) } else { (20, 800) };
    let harness = Harness::new(samples);

    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(3),
    )
    .expect("valid config");
    let size = network.config().size();
    let timing = network.config().timing();
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(measure_ns));
    let run = RunConfig::new(Benchmark::Multicast10, 0.3)
        .expect("positive rate")
        .with_phases(phases);

    let mut collector: TraceCollector<MotNode> = TraceCollector::new(
        1_000_000,
        Box::new(move |node| match node {
            MotNode::Fanout(flat) => FanoutNodeId::from_flat_index(size, flat).to_string(),
            MotNode::Fanin(flat) => FaninNodeId::from_flat_index(size, flat).to_string(),
        }),
    );
    let mut extra: Vec<&mut dyn Observer<MotNode>> = vec![&mut collector];
    network
        .run_with_observers(&run, &mut extra)
        .expect("run succeeds");
    let meta = TraceMeta {
        substrate: "mot".to_string(),
        arch: Some(Architecture::BasicHybridSpeculative.to_string()),
        size: 8,
        seed: 3,
        flits: 1,
        rate: 0.3,
        warmup_ps: phases.warmup().as_ps(),
        measure_ps: phases.measure().as_ps(),
        wire_fj: Some(timing.wire_fj),
        drop_fj: Some(timing.drop_fj),
        dropped_events: collector.dropped(),
    };
    let text = render_trace(&meta, collector.records());
    let records = collector.records().to_vec();
    let events = records.len() as u64;

    let group = harness.group(&format!("analyze_{measure_ns}ns ({events} events)"));
    let parse = group
        .bench_stats("parse_trace", || {
            parse_trace(&text).expect("well-formed trace")
        })
        .min;
    let spans = group
        .bench_stats("span_forest", || SpanForest::build(&records))
        .min;
    let full = group
        .bench_stats("full_analysis", || {
            Analysis::build(Some(meta.clone()), records.clone(), 10)
        })
        .min;

    if let Some(path) = args.json {
        let cases = [
            ("parse_trace", parse),
            ("span_forest", spans),
            ("full_analysis", full),
        ]
        .map(|(id, fastest)| BenchCase {
            id: id.to_string(),
            median: fastest,
            events,
        });
        if let Err(message) = guard("analyze", &path, &cases, args.update) {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
