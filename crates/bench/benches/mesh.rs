//! Criterion benches of the mesh simulator: wall-clock cost of one
//! benchmark window per mesh size and pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asynoc_kernel::Duration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;
use asynoc_traffic::Benchmark;

fn phases() -> Phases {
    Phases::new(Duration::from_ns(60), Duration::from_ns(500))
}

fn bench_mesh_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_run_by_size_500ns");
    group.sample_size(15);
    for (cols, rows) in [(2usize, 2usize), (4, 4), (8, 8)] {
        let network = MeshNetwork::new(
            MeshConfig::new(MeshSize::new(cols, rows).expect("valid size")).with_seed(3),
        )
        .expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cols}x{rows}")),
            &network,
            |b, network| {
                b.iter(|| {
                    network
                        .run(Benchmark::UniformRandom, 0.2, phases())
                        .expect("run succeeds")
                })
            },
        );
    }
    group.finish();
}

fn bench_mesh_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_4x4_by_pattern_500ns");
    group.sample_size(15);
    let network = MeshNetwork::new(
        MeshConfig::new(MeshSize::new(4, 4).expect("valid size")).with_seed(3),
    )
    .expect("valid config");
    for benchmark in [
        Benchmark::UniformRandom,
        Benchmark::Tornado,
        Benchmark::Multicast10,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.to_string()),
            &benchmark,
            |b, &benchmark| {
                b.iter(|| network.run(benchmark, 0.15, phases()).expect("run succeeds"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mesh_sizes, bench_mesh_patterns);
criterion_main!(benches);
