//! Benches of the mesh simulator: wall-clock cost of one benchmark window
//! per mesh size and pattern.

use asynoc_bench::timing::Harness;
use asynoc_kernel::Duration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;
use asynoc_traffic::Benchmark;

fn phases() -> Phases {
    Phases::new(Duration::from_ns(60), Duration::from_ns(500))
}

fn main() {
    let harness = Harness::new(15);

    let group = harness.group("mesh_run_by_size_500ns");
    for (cols, rows) in [(2usize, 2usize), (4, 4), (8, 8)] {
        let network = MeshNetwork::new(
            MeshConfig::new(MeshSize::new(cols, rows).expect("valid size")).with_seed(3),
        )
        .expect("valid config");
        group.bench(&format!("{cols}x{rows}"), || {
            network
                .run(Benchmark::UniformRandom, 0.2, phases())
                .expect("run succeeds")
        });
    }

    let group = harness.group("mesh_4x4_by_pattern_500ns");
    let network =
        MeshNetwork::new(MeshConfig::new(MeshSize::new(4, 4).expect("valid size")).with_seed(3))
            .expect("valid config");
    for benchmark in [
        Benchmark::UniformRandom,
        Benchmark::Tornado,
        Benchmark::Multicast10,
    ] {
        group.bench(&benchmark.to_string(), || {
            network
                .run(benchmark, 0.15, phases())
                .expect("run succeeds")
        });
    }
}
