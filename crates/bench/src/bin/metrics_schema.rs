//! Prints the *schema skeleton* of the `asynoc metrics` JSON report —
//! every key with its value replaced by a type name, arrays reduced to
//! their first element's shape — for each substrate, keyed by substrate
//! name. The check script diffs this against
//! `results/metrics_schema.golden.json`, so any report-format change has
//! to be made deliberately (regenerate with
//! `cargo run -p asynoc-bench --bin metrics_schema > results/metrics_schema.golden.json`).

use asynoc_cli::{execute, parse};
use asynoc_telemetry::JsonValue;

fn skeleton(line: &str) -> JsonValue {
    let args: Vec<String> = line.split_whitespace().map(String::from).collect();
    let command = parse(&args).expect("valid invocation");
    let mut out = Vec::new();
    execute(&command, &mut out).expect("metrics run succeeds");
    let report =
        JsonValue::parse(&String::from_utf8(out).expect("utf8")).expect("valid JSON report");
    report.schema()
}

fn main() {
    // Short windows keep this fast; each invocation is chosen so every
    // report section its substrate can populate is populated (the hybrid
    // MoT throttles redundant copies, filling the waste ledger; the VC
    // mesh multicasts, filling the per-VC occupancy section).
    let document = JsonValue::Object(vec![
        (
            "mot".to_string(),
            skeleton(
                "metrics --arch BasicHybridSpeculative --benchmark Multicast10 --rate 0.3 \
                 --warmup-ns 40 --measure-ns 400",
            ),
        ),
        (
            "mesh".to_string(),
            skeleton(
                "metrics --substrate mesh --benchmark Uniform-random --rate 0.1 --size 4 \
                 --warmup-ns 40 --measure-ns 400",
            ),
        ),
        (
            "vcmesh".to_string(),
            skeleton(
                "metrics --substrate vcmesh --mcast dpm --benchmark Multicast5 --rate 0.1 \
                 --size 4 --warmup-ns 40 --measure-ns 400",
            ),
        ),
    ]);
    print!("{}", document.render_pretty());
}
