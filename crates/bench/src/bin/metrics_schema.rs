//! Prints the *schema skeleton* of the `asynoc metrics` JSON report —
//! every key with its value replaced by a type name, arrays reduced to
//! their first element's shape. The check script diffs this against
//! `results/metrics_schema.golden.json`, so any report-format change has
//! to be made deliberately (regenerate with
//! `cargo run -p asynoc-bench --bin metrics_schema > results/metrics_schema.golden.json`).

use asynoc_cli::{execute, parse};
use asynoc_telemetry::JsonValue;

fn main() {
    // Short windows keep this fast; the benchmark/architecture pair is
    // chosen so every report section is populated (the hybrid network
    // throttles redundant copies, filling the waste ledger).
    let line = "metrics --arch BasicHybridSpeculative --benchmark Multicast10 --rate 0.3 \
                --warmup-ns 40 --measure-ns 400";
    let args: Vec<String> = line.split_whitespace().map(String::from).collect();
    let command = parse(&args).expect("valid invocation");
    let mut out = Vec::new();
    execute(&command, &mut out).expect("metrics run succeeds");
    let report =
        JsonValue::parse(&String::from_utf8(out).expect("utf8")).expect("valid JSON report");
    print!("{}", report.schema().render_pretty());
}
