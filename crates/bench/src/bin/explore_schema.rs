//! Prints the *schema skeleton* of the `asynoc explore` JSON report —
//! every key with its value replaced by a type name, arrays reduced to
//! their first element's shape — for the exhaustive and the truncated
//! form, keyed by case name. The check script diffs this against
//! `results/explore_schema.golden.json`, so any report-format change has
//! to be made deliberately (regenerate with
//! `cargo run -p asynoc-bench --bin explore_schema > results/explore_schema.golden.json`).

use asynoc_cli::{execute, parse};
use asynoc_telemetry::JsonValue;

fn skeleton(line: &str) -> JsonValue {
    let args: Vec<String> = line.split_whitespace().map(String::from).collect();
    let command = parse(&args).expect("valid invocation");
    let mut out = Vec::new();
    execute(&command, &mut out).expect("explore run succeeds");
    let report =
        JsonValue::parse(&String::from_utf8(out).expect("utf8")).expect("valid JSON report");
    report.schema()
}

fn main() {
    // 4x4 keeps this fast (9 placements). The exhaustive case keeps the
    // default guard — tolerance 1.0 always holds, so the guard section is
    // populated without ever failing the bin; the truncated case pins the
    // `truncated: true` / `guard: null` shape.
    let document = JsonValue::Object(vec![
        (
            "exhaustive".to_string(),
            skeleton("explore --smoke --size 4 --tolerance 1.0"),
        ),
        (
            "truncated".to_string(),
            skeleton("explore --smoke --size 4 --max-points 3 --guard none"),
        ),
    ]);
    print!("{}", document.render_pretty());
}
