//! Extension experiment: scaling to larger MoT networks (the paper's
//! future work, §6), checking its §5.2(c) prediction that speculation's
//! power overhead *grows* with network size "due to wider speculative
//! regions".
//!
//! Runs the three optimized architectures on 8×8, 16×16, and 32×32
//! networks at a fixed moderate load and reports latency, power, the
//! power overhead of OptAllSpeculative over OptHybridSpeculative, and the
//! address-bit savings.
//!
//! Usage: `cargo run --release -p asynoc-bench --bin scaling
//! [--quick|--paper] [--seed N]`

use asynoc::{Architecture, Benchmark, MotSize, Network, NetworkConfig, RunConfig};
use asynoc_bench::quality_from_args;

fn main() {
    let quality = quality_from_args();
    let rate = 0.3;
    let benchmark = Benchmark::Multicast10;

    println!("Scaling study: {benchmark} at {rate} GF/s per source");
    println!();
    println!(
        "{:<6} {:<24} {:>10} {:>14} {:>12} {:>12}",
        "size", "architecture", "addr bits", "latency (ns)", "power (mW)", "throttled"
    );
    println!("{}", "-".repeat(84));

    for n in [8usize, 16, 32] {
        let size = MotSize::new(n).expect("power-of-two size");
        let mut hybrid_power = None;
        for arch in Architecture::DESIGN_SPACE {
            let network = Network::new(NetworkConfig::new(size, arch).with_seed(quality.seed))
                .expect("valid config");
            let run = RunConfig::new(benchmark, rate)
                .expect("positive rate")
                .with_phases(quality.probe_phases);
            let report = network.run(&run).expect("run succeeds");
            let latency_ns = report
                .latency
                .mean()
                .map(|d| d.as_ns_f64())
                .unwrap_or_default();
            println!(
                "{:<6} {:<24} {:>10} {:>14.2} {:>12.1} {:>12}",
                size.to_string(),
                arch.to_string(),
                arch.address_bits(size),
                latency_ns,
                report.power.total_mw(),
                report.flits_throttled
            );
            match arch {
                Architecture::OptHybridSpeculative => hybrid_power = Some(report.power.total_mw()),
                Architecture::OptAllSpeculative => {
                    if let Some(hybrid) = hybrid_power {
                        println!(
                            "       -> OptAllSpec power overhead vs OptHybrid: {:+.1}% \
                             (paper predicts this grows with size)",
                            100.0 * (report.power.total_mw() / hybrid - 1.0)
                        );
                    }
                }
                _ => {}
            }
        }
        println!();
    }
}
