//! Extension experiment (beyond the paper): the remaining standard
//! Dally & Towles traffic patterns on the three optimized networks —
//! does the local-speculation advantage hold across permutations the paper
//! did not evaluate?
//!
//! Usage: `cargo run --release -p asynoc-bench --bin patterns
//! [--quick|--paper] [--seed N]`

use asynoc::harness::{latency_at_fraction, saturation};
use asynoc::{Architecture, Benchmark};
use asynoc_bench::{arch_label, print_benchmark_header, quality_from_args};

fn main() {
    let quality = quality_from_args();
    let architectures = Architecture::DESIGN_SPACE;

    println!("Extension: Dally-Towles patterns not in the paper (8x8 MoT, optimized networks)");
    println!();
    println!("Saturation throughput (GF/s per source, delivered):");
    print_benchmark_header("Scheme", &Benchmark::EXTENDED);
    for &arch in &architectures {
        print!("{}", arch_label(arch));
        for benchmark in Benchmark::EXTENDED {
            let point = saturation(arch, benchmark, &quality).expect("run succeeds");
            print!(" {:>16.2}", point.delivered_gfs);
        }
        println!();
    }
    println!();

    println!("Mean latency at 25% saturation load (ns):");
    print_benchmark_header("Scheme", &Benchmark::EXTENDED);
    for &arch in &architectures {
        print!("{}", arch_label(arch));
        for benchmark in Benchmark::EXTENDED {
            let cell = latency_at_fraction(arch, benchmark, 0.25, &quality).expect("run succeeds");
            print!(" {:>16.2}", cell.mean_latency_ps as f64 / 1_000.0);
        }
        println!();
    }
    println!();
    println!(
        "Every permutation gets a unique MoT path, so — unlike a mesh — the \
         adversarial patterns (bit-complement, tornado) behave like any other \
         permutation here; local speculation's gains carry over unchanged."
    );
}
