//! Bounded-memory gate for streaming telemetry: a streamed 64x64 MoT
//! run's peak allocation must be independent of how long the run is.
//!
//! The live-export contract is O(window), not O(events): the stream
//! sink drains every buffer at each flush window, and the engine's
//! latency reservoir is capped (`RunConfig::with_latency_cap`, which
//! library users set for long-lived runs). This binary measures peak
//! heap (via the `CountingAlloc` global allocator) across a short and
//! an 8x-longer streamed run — serial shards, since sharded capture
//! legitimately buffers the event log — and fails when the long run's
//! peak exceeds the short run's by more than a fixed headroom factor.
//! Invoked by `scripts/check.sh`; exits non-zero on violation.

use std::io::Write;

use asynoc::probe::{peak_bytes, reset_peak_bytes};
use asynoc::telemetry::{LevelSpec, StreamConfig, StreamSink, TimeSeries, WatchConfig};
use asynoc::{
    Architecture, Benchmark, Duration, MotNode, Network, NetworkConfig, Observer, Phases, RunConfig,
};
use asynoc_topology::{FaninNodeId, FanoutNodeId, MotSize};

#[global_allocator]
static GLOBAL: asynoc::probe::CountingAlloc = asynoc::probe::CountingAlloc;

/// The long run may use this much more peak heap than the short one —
/// headroom for event-pool high-water jitter, not for real growth (an
/// O(events) buffer shows up as ~8x).
const HEADROOM: f64 = 1.5;

/// Discards stream bytes but proves the stream was actually written.
struct CountingWriter {
    bytes: &'static std::sync::atomic::AtomicU64,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes
            .fetch_add(buf.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

static STREAM_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn sink_for(size: MotSize, phases: Phases) -> StreamSink<MotNode> {
    let n = size.n();
    let levels = size.levels() as usize;
    let mut specs = Vec::with_capacity(2 * levels);
    for level in 0..levels {
        specs.push(LevelSpec {
            label: format!("fanout-L{level}"),
            nodes: n << level,
        });
    }
    for level in 0..levels {
        specs.push(LevelSpec {
            label: format!("fanin-L{level}"),
            nodes: n << level,
        });
    }
    let series = TimeSeries::new(
        asynoc::Duration::from_ns(1000),
        specs,
        Box::new(move |node: MotNode| match node {
            MotNode::Fanout(flat) => Some(FanoutNodeId::from_flat_index(size, flat).level as usize),
            MotNode::Fanin(flat) => {
                Some(levels + FaninNodeId::from_flat_index(size, flat).level as usize)
            }
        }),
    );
    StreamSink::new(
        Box::new(CountingWriter {
            bytes: &STREAM_BYTES,
        }),
        StreamConfig {
            substrate: "mot".to_string(),
            config: asynoc::telemetry::JsonValue::Object(vec![]),
            window: asynoc::Duration::from_ns(1000),
            trace_limit: None,
            watch: WatchConfig::default(),
        },
        phases,
        n,
        series,
        Box::new(move |node: MotNode| match node {
            MotNode::Fanout(flat) => FanoutNodeId::from_flat_index(size, flat).to_string(),
            MotNode::Fanin(flat) => FaninNodeId::from_flat_index(size, flat).to_string(),
        }),
    )
    .expect("stream head writes")
}

/// One streamed serial run; returns (peak heap bytes, events, stream bytes).
fn streamed_run(net: &Network, measure_ns: u64) -> (u64, u64, u64) {
    let size = net.config().size();
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(measure_ns));
    let run = RunConfig::new(Benchmark::Multicast5, 0.05)
        .expect("valid run")
        .with_phases(phases)
        .with_shards(1)
        .with_latency_cap(Some(4096));
    let stream_start = STREAM_BYTES.load(std::sync::atomic::Ordering::Relaxed);
    let mut sink = sink_for(size, phases);
    reset_peak_bytes();
    let report = {
        let mut extra: Vec<&mut dyn Observer<MotNode>> = vec![&mut sink];
        net.run_with_observers(&run, &mut extra)
            .expect("run completes")
    };
    let peak = peak_bytes();
    sink.finish(asynoc::telemetry::JsonValue::Object(vec![]))
        .expect("stream closes");
    let written = STREAM_BYTES.load(std::sync::atomic::Ordering::Relaxed) - stream_start;
    (peak, report.events_processed, written)
}

fn main() {
    let size = 64;
    let net = Network::new(NetworkConfig::new(
        MotSize::new(size).expect("64 is a power of two"),
        Architecture::OptHybridSpeculative,
    ))
    .expect("network builds");

    // Warm the allocator and event pool so the measured short run is
    // not charged for one-time growth the long run gets for free.
    let _ = streamed_run(&net, 300);

    let (short_peak, short_events, short_bytes) = streamed_run(&net, 300);
    let (long_peak, long_events, long_bytes) = streamed_run(&net, 2400);
    let ratio = long_peak as f64 / short_peak.max(1) as f64;
    println!(
        "memcheck ({size}x{size} MoT, streamed, serial):\n\
         \x20 short run : {short_events:>9} events, peak {short_peak:>11} B, stream {short_bytes} B\n\
         \x20 long run  : {long_events:>9} events, peak {long_peak:>11} B, stream {long_bytes} B\n\
         \x20 peak ratio: {ratio:.3} (events grew {:.1}x, gate {HEADROOM})",
        long_events as f64 / short_events.max(1) as f64
    );
    assert!(
        long_events > 4 * short_events,
        "long run must process several times more events for the gate to mean anything"
    );
    assert!(
        long_bytes > short_bytes,
        "the longer run must stream more windows"
    );
    if ratio > HEADROOM {
        eprintln!(
            "FAIL: peak allocation grew {ratio:.2}x on an 8x-longer streamed run \
             (> {HEADROOM}); an O(events) buffer is hiding in the live-export path"
        );
        std::process::exit(1);
    }
    println!("OK: streamed peak memory is bounded independent of run length");
}
