//! Regenerates the §5.2(d) addressing-scheme comparison: address-field
//! sizes per packet header for 8×8 and 16×16 MoT networks.
//!
//! Usage: `cargo run -p asynoc-bench --bin addressing`

use asynoc::harness::addressing_rows;

fn main() {
    let rows = addressing_rows(&[8, 16]).expect("sizes are valid");
    println!("Addressing scheme comparison (paper section 5.2(d))");
    println!();
    println!(
        "{:<8} {:>16} {:>18} {:>10} {:>22}",
        "Size", "Baseline (bits)", "Non-spec (bits)", "Hybrid", "Almost-fully-spec"
    );
    println!("{}", "-".repeat(78));
    for row in rows {
        println!(
            "{:<8} {:>16} {:>18} {:>10} {:>22}",
            row.size.to_string(),
            row.baseline_bits,
            row.non_speculative_bits,
            row.hybrid_bits,
            row.all_speculative_bits
        );
    }
    println!();
    println!("(paper: 8x8 -> 3/14/12/8, 16x16 -> 4/30/20/16)");
}
