//! Regenerates Figure 3: the fanout network architectures — (a) fully
//! non-speculative, (b) hybrid, (c) almost fully speculative for 8×8, and
//! (d) the hybrid 16×16 — as ASCII diagrams with speculative levels marked.
//!
//! Usage: `cargo run -p asynoc-bench --bin fig3_architectures`

use asynoc::{Architecture, MotSize};
use asynoc_topology::SpeculationMap;

fn render(title: &str, map: &SpeculationMap) {
    println!("{title}");
    let size = map.size();
    for level in 0..size.levels() {
        let speculative = map.is_speculative_level(level);
        let marker = if speculative { "S" } else { "n" };
        let width = size.nodes_at_level(level);
        let spacing = size.n() * 4 / width;
        print!(
            "  level {level} [{}]: ",
            if speculative { "SPEC " } else { "nonsp" }
        );
        for _ in 0..width {
            print!("{marker:^spacing$}");
        }
        println!();
    }
    println!(
        "  -> {} speculative / {} non-speculative nodes per tree, {} address bits\n",
        map.speculative_nodes(),
        map.non_speculative_nodes(),
        map.address_bits()
    );
}

fn main() {
    let size8 = MotSize::new(8).expect("8 is valid");
    let size16 = MotSize::new(16).expect("16 is valid");

    println!("Figure 3: fanout network architectures (S = speculative, n = non-speculative)\n");
    render(
        "(a) 8x8 non-speculative",
        &Architecture::OptNonSpeculative.speculation_map(size8),
    );
    render(
        "(b) 8x8 hybrid (local speculation)",
        &Architecture::OptHybridSpeculative.speculation_map(size8),
    );
    render(
        "(c) 8x8 almost fully speculative",
        &Architecture::OptAllSpeculative.speculation_map(size8),
    );
    render(
        "(d) 16x16 hybrid (one of a family of possibilities)",
        &SpeculationMap::hybrid(size16),
    );
}
