//! Regenerates Figure 4: unicast and multicast routing walkthroughs in the
//! hybrid fanout network — which nodes broadcast, forward, replicate, and
//! throttle.
//!
//! Usage: `cargo run -p asynoc-bench --bin fig4_routing`

use asynoc::{Architecture, DestSet, MotSize};
use asynoc_packet::RouteHeader;
use asynoc_topology::{multicast_route, FanoutChild, FanoutNodeId, OutputPort};

/// Walks a packet's copies down the fanout tree, printing what every
/// visited node does. Speculative nodes broadcast (possibly creating
/// redundant copies); non-speculative nodes obey their routing symbol.
fn walk(size: MotSize, architecture: Architecture, source: usize, header: &RouteHeader) {
    let map = architecture.speculation_map(size);
    let mut frontier = vec![FanoutNodeId::root(source)];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for node in frontier {
            let symbol = header.symbol(node.level, node.index);
            let speculative = map.is_speculative_level(node.level);
            let action = if speculative {
                format!("SPECULATIVE: broadcast (true route: {symbol})")
            } else if symbol.is_drop() {
                "non-speculative: THROTTLE redundant copy".to_string()
            } else {
                format!("non-speculative: forward {symbol}")
            };
            println!("  {node} -> {action}");
            let (top, bottom) = if speculative {
                (true, true)
            } else {
                (symbol.wants_top(), symbol.wants_bottom())
            };
            for (wants, port) in [(top, OutputPort::Top), (bottom, OutputPort::Bottom)] {
                if !wants {
                    continue;
                }
                match node.child(size, port) {
                    FanoutChild::Node(child) => next.push(child),
                    FanoutChild::FaninLeaf { dest, .. } => {
                        let wanted = header.symbol(node.level, node.index);
                        let delivered = match port {
                            OutputPort::Top => wanted.wants_top(),
                            OutputPort::Bottom => wanted.wants_bottom(),
                        };
                        debug_assert!(
                            delivered || speculative,
                            "only speculative leaves could misdeliver, and leaves are never speculative"
                        );
                        println!("    => delivered to destination D{dest}");
                    }
                }
            }
        }
        frontier = next;
    }
}

fn main() {
    let size = MotSize::new(8).expect("8 is valid");
    let architecture = Architecture::OptHybridSpeculative;

    println!("Figure 4(a): unicast packet, source 0 -> D7, hybrid 8x8 network");
    let unicast = multicast_route(size, 0, DestSet::unicast(7)).expect("valid route");
    walk(size, architecture, 0, &unicast);
    println!();

    println!("Figure 4(b): multicast packet, source 0 -> {{D0, D1, D2}}, hybrid 8x8 network");
    let dests: DestSet = [0usize, 1, 2].into_iter().collect();
    let multicast = multicast_route(size, 0, dests).expect("valid route");
    walk(size, architecture, 0, &multicast);
    println!();
    println!(
        "The speculative root always broadcasts; the copy on the wrong path is \
         throttled by the first non-speculative node it meets, confining the \
         redundant traffic to a small local region."
    );
}
