//! Regenerates the §5.2(a) node-level results: area and forward latency of
//! the five fanout node designs.
//!
//! Usage: `cargo run -p asynoc-bench --bin node_results`

use asynoc::harness::node_cost_rows;

fn main() {
    println!("Node-level results (paper section 5.2(a))");
    println!();
    println!(
        "{:<30} {:>12} {:>14}",
        "Node", "Area (um^2)", "Latency (ps)"
    );
    println!("{}", "-".repeat(58));
    for row in node_cost_rows() {
        println!(
            "{:<30} {:>12.0} {:>14}",
            row.name,
            row.area_um2,
            row.latency.as_ps()
        );
    }
    println!();
    println!("(paper: Baseline 342/263, UnoptSpec 247/52, UnoptNonSpec 406/299, OptSpec 373/120, OptNonSpec 366/279)");
}
