//! Regenerates Table 1 (left half): saturation throughput in GF/s per
//! source for all six networks across all six benchmarks.
//!
//! Usage: `cargo run --release -p asynoc-bench --bin table1_throughput
//! [--quick|--paper] [--seed N]`

use asynoc::harness::table1_throughput;
use asynoc::{Architecture, Benchmark};
use asynoc_bench::{arch_label, print_benchmark_header, quality_from_args};

fn main() {
    let quality = quality_from_args();
    let rows = table1_throughput(&quality).expect("harness run failed");

    println!("Table 1: Saturation throughput (GF/s per source, delivered flits)");
    println!();
    print_benchmark_header("Scheme", &Benchmark::ALL);
    for group in [
        &Architecture::CONTRIBUTION_TRAJECTORY[..],
        &Architecture::DESIGN_SPACE[..],
    ] {
        for &arch in group {
            print!("{}", arch_label(arch));
            for benchmark in Benchmark::ALL {
                let cell = rows
                    .iter()
                    .find(|(a, b, _)| *a == arch && *b == benchmark)
                    .expect("every cell computed");
                print!(" {:>16.2}", cell.2.delivered_gfs);
            }
            println!();
        }
        println!();
    }
    println!("(paper reference: Baseline 1.26/1.48/0.29/1.28/1.28/1.29; OptHybrid 1.60/1.62/0.29/1.76/1.84/1.96)");
}
