//! Prints the *schema skeleton* of the `asynoc analyze` JSON report —
//! every key with its value replaced by a type name, arrays reduced to
//! their first element's shape. The check script diffs this against
//! `results/analysis_schema.golden.json`, so any report-format change
//! has to be made deliberately (regenerate with
//! `cargo run -p asynoc-bench --bin analysis_schema > results/analysis_schema.golden.json`).

use asynoc_cli::{execute, parse};
use asynoc_telemetry::JsonValue;

fn run(line: &str) -> Vec<u8> {
    let args: Vec<String> = line.split_whitespace().map(String::from).collect();
    let command = parse(&args).expect("valid invocation");
    let mut out = Vec::new();
    execute(&command, &mut out).expect("command succeeds");
    out
}

fn main() {
    // The hybrid multicast run populates every report section (the
    // speculation scorecard needs throttles and energy constants).
    let mut trace_path = std::env::temp_dir();
    trace_path.push(format!(
        "asynoc-analysis-schema-{}.ndjson",
        std::process::id()
    ));
    let trace_path = trace_path.to_string_lossy().into_owned();
    let mut metrics_path = std::env::temp_dir();
    metrics_path.push(format!(
        "asynoc-analysis-schema-{}.json",
        std::process::id()
    ));
    let metrics_path = metrics_path.to_string_lossy().into_owned();

    run(&format!(
        "metrics --arch BasicHybridSpeculative --benchmark Multicast10 --rate 0.3 \
         --warmup-ns 40 --measure-ns 400 --trace-limit 200000 \
         --metrics-out {metrics_path} --trace-out {trace_path}"
    ));
    let out = run(&format!("analyze --trace-in {trace_path}"));
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);

    let report =
        JsonValue::parse(&String::from_utf8(out).expect("utf8")).expect("valid JSON report");
    print!("{}", report.schema().render_pretty());
}
