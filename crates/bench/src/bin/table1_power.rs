//! Regenerates Table 1 (right half): total network power in mW for all six
//! networks across the four power benchmarks, at 25 % of the Baseline
//! network's saturation load.
//!
//! Usage: `cargo run --release -p asynoc-bench --bin table1_power
//! [--quick|--paper] [--seed N]`

use asynoc::harness::table1_power;
use asynoc::{Architecture, Benchmark};
use asynoc_bench::{arch_label, print_benchmark_header, quality_from_args};

fn main() {
    let quality = quality_from_args();
    let cells = table1_power(&quality).expect("harness run failed");

    println!("Table 1: Total network power (mW) at 25% of Baseline saturation");
    println!();
    print_benchmark_header("Scheme", &Benchmark::POWER_SET);
    for group in [
        &Architecture::CONTRIBUTION_TRAJECTORY[..],
        &Architecture::DESIGN_SPACE[..],
    ] {
        for &arch in group {
            print!("{}", arch_label(arch));
            for benchmark in Benchmark::POWER_SET {
                let cell = cells
                    .iter()
                    .find(|c| c.architecture == arch && c.benchmark == benchmark)
                    .expect("every cell computed");
                print!(" {:>16.1}", cell.total_mw);
            }
            println!();
        }
        println!();
    }
    println!("(paper reference: Baseline 12.6/3.8/14.7/17.1; OptHybrid 13.9/4.1/15.7/17.6; OptAllSpec 16.1/4.6/17.8/19.5)");
}
