//! Prints the *schema skeleton* of the `asynoc faults` JSON report —
//! every key with its value replaced by a type name, arrays reduced to
//! their first element's shape. The check script diffs this against
//! `results/faults_schema.golden.json`, so any report-format change has
//! to be made deliberately (regenerate with
//! `cargo run -p asynoc-bench --bin faults_schema > results/faults_schema.golden.json`).

use asynoc_cli::{execute, parse};
use asynoc_telemetry::JsonValue;

fn main() {
    // The explicit plan covers every fault class and fires an oracle
    // verdict, so every report section — plan, both outcomes, ledger
    // rows, checks — is populated. The hybrid architecture certifies
    // corrupt sites; the lethal loss keeps the degradation branch in
    // the skeleton exercised too (judged, reconciled, still passing).
    let line = "faults --arch BasicHybridSpeculative --benchmark Multicast5 --rate 0.2 \
                --warmup-ns 20 --measure-ns 150 --oracle \
                --plan stall:0:2:300;drop:1:0:1:500;lose:2:0";
    let args: Vec<String> = line.split_whitespace().map(String::from).collect();
    let command = parse(&args).expect("valid invocation");
    let mut out = Vec::new();
    execute(&command, &mut out).expect("faults run succeeds");
    let report =
        JsonValue::parse(&String::from_utf8(out).expect("utf8")).expect("valid JSON report");
    print!("{}", report.schema().render_pretty());
}
