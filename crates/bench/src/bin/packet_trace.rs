//! Dynamic Figure 4: traces an *actual simulated* multicast packet through
//! the hybrid network, showing the speculative broadcast, the throttling of
//! the redundant copy, and the deliveries — with real timestamps.
//!
//! Usage: `cargo run --release -p asynoc-bench --bin packet_trace [--seed N]`

use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig, TraceAction};

fn main() {
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    let network = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(seed),
    )
    .expect("valid config");
    let run = RunConfig::quick(Benchmark::Multicast10, 0.2).with_trace(40_000);
    let report = network.run(&run).expect("run succeeds");

    // Prefer a multicast packet whose journey also shows a throttled
    // redundant copy (one whose destinations all sit in one half, so the
    // speculative root's broadcast creates waste); fall back to any
    // multicast packet.
    let deliveries = |packet| {
        report
            .trace
            .iter()
            .filter(|e| e.packet == packet && matches!(e.action, TraceAction::Delivered))
            .count()
    };
    let throttles = |packet| {
        report
            .trace
            .iter()
            .filter(|e| e.packet == packet && matches!(e.action, TraceAction::Throttled))
            .count()
    };
    let mut candidates: Vec<_> = report
        .trace
        .iter()
        .filter(|e| matches!(e.action, TraceAction::Delivered))
        .map(|e| e.packet)
        .filter(|&p| deliveries(p) > 5) // 5-flit packet, >1 destination
        .collect();
    candidates.dedup();
    let Some(&packet) = candidates
        .iter()
        .find(|&&p| throttles(p) > 0)
        .or_else(|| candidates.first())
    else {
        println!("no multicast packet found in the trace window; try another --seed");
        return;
    };

    println!("Journey of multicast packet {packet} through OptHybridSpeculative (8x8):");
    println!();
    for event in report.trace.iter().filter(|e| e.packet == packet) {
        println!("  {event}");
    }
    println!();
    println!(
        "Read the header's (flit 0) path: the speculative root forwards [both] \
         unconditionally; the non-speculative node off the multicast tree reports \
         THROTTLED; every destination in the set reports one delivery."
    );
}
