//! Prints the *schema skeleton* of the `asynoc-profile-v1` document —
//! every key with its value replaced by a type name, arrays reduced to
//! their first element's shape. The check script diffs this against
//! `results/profile_schema.golden.json`, so any profile-format change
//! has to be made deliberately (regenerate with
//! `cargo run -p asynoc-bench --bin profile_schema > results/profile_schema.golden.json`).

use asynoc_cli::{execute, parse};
use asynoc_telemetry::JsonValue;

fn main() {
    // A sharded run populates every section of the document: two shards
    // give non-empty barrier-wait buckets, cross-cut `sent` slots, and
    // a meaningful imbalance summary.
    let mut path = std::env::temp_dir();
    path.push(format!("asynoc-profile-schema-{}.json", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    let line = format!(
        "run --arch BasicHybridSpeculative --benchmark Multicast10 --rate 0.3 \
         --shards 2 --warmup-ns 40 --measure-ns 400 --profile {path}"
    );
    let args: Vec<String> = line.split_whitespace().map(String::from).collect();
    let command = parse(&args).expect("valid invocation");
    let mut out = Vec::new();
    execute(&command, &mut out).expect("profiled run succeeds");
    let text = std::fs::read_to_string(&path).expect("profile document written");
    let _ = std::fs::remove_file(&path);
    let document = JsonValue::parse(&text).expect("valid JSON profile document");
    print!("{}", document.schema().render_pretty());
}
