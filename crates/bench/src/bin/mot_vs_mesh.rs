//! Extension experiment: variant MoT vs 2D mesh at equal endpoint count
//! (the paper's future-work topology comparison, and the \[18\]-style claim
//! that MoT can outperform meshes).
//!
//! Both fabrics connect 64 endpoints: a 64×64 variant MoT (6 fanout + 6
//! fanin levels, log-depth paths) vs an 8×8 mesh (XY wormhole routing,
//! mean ≈ 5.3 hops under uniform traffic). Multicast is parallel on the
//! MoT (OptHybridSpeculative) and serialized on the mesh (wormhole meshes
//! without VCs cannot replicate in-network safely — see `asynoc-mesh`'s
//! crate docs).
//!
//! Usage: `cargo run --release -p asynoc-bench --bin mot_vs_mesh [--seed N]`

use asynoc::{Architecture, MotSize, Network, NetworkConfig, RunConfig};
use asynoc_kernel::Duration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;
use asynoc_traffic::Benchmark;

fn main() {
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let phases = Phases::new(Duration::from_ns(200), Duration::from_ns(1600));

    let mot = Network::new(
        NetworkConfig::new(
            MotSize::new(64).expect("64 is valid"),
            Architecture::OptHybridSpeculative,
        )
        .with_seed(seed),
    )
    .expect("valid config");
    let mesh = MeshNetwork::new(
        MeshConfig::new(MeshSize::new(8, 8).expect("8x8 is valid")).with_seed(seed),
    )
    .expect("valid config");

    println!("64 endpoints: 64x64 variant MoT (OptHybridSpeculative) vs 8x8 XY-wormhole mesh");
    println!();
    println!(
        "{:<18} {:<8} {:>10} {:>14} {:>14} {:>10}",
        "benchmark", "fabric", "load", "mean (ns)", "p99 (ns)", "accepted"
    );
    println!("{}", "-".repeat(80));

    for benchmark in [
        Benchmark::UniformRandom,
        Benchmark::Shuffle,
        Benchmark::Multicast10,
    ] {
        for load in [0.1f64, 0.3] {
            let mot_run = RunConfig::new(benchmark, load)
                .expect("positive rate")
                .with_phases(phases);
            let mut mot_report = mot.run(&mot_run).expect("MoT run succeeds");
            let mut mesh_report = mesh
                .run(benchmark, load, phases)
                .expect("mesh run succeeds");

            for (fabric, mean, p99, accepted) in [
                (
                    "MoT",
                    mot_report.latency.mean(),
                    mot_report.latency.p99(),
                    mot_report.acceptance(),
                ),
                (
                    "mesh",
                    mesh_report.latency.mean(),
                    mesh_report.latency.p99(),
                    mesh_report.acceptance(),
                ),
            ] {
                println!(
                    "{:<18} {:<8} {:>10.1} {:>14.2} {:>14.2} {:>9.0}%",
                    benchmark.to_string(),
                    fabric,
                    load,
                    mean.map(|d| d.as_ns_f64()).unwrap_or(f64::NAN),
                    p99.map(|d| d.as_ns_f64()).unwrap_or(f64::NAN),
                    100.0 * accepted,
                );
            }
        }
        println!();
    }

    println!(
        "The MoT's log-depth paths (12 stages for 64 endpoints) give it flat, \
         low latency; the mesh pays Manhattan distance and, for multicast, \
         per-destination serialization — the gap the paper's parallel multicast \
         closes in-network."
    );
}
