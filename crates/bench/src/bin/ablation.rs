//! Ablation studies for the design choices the paper (and DESIGN.md) call
//! out:
//!
//! 1. **Speculation without the speed** — local speculation's latency gain
//!    should vanish if speculative nodes are forced to the non-speculative
//!    forward latency, showing the gain comes from eliminating route
//!    computation, not from broadcasting per se.
//! 2. **Channel pre-allocation** — disabling the §4(d) body fast path
//!    (body latency = header latency) should erase most of
//!    OptNonSpeculative's throughput advantage over BasicNonSpeculative.
//! 3. **Packet length** — the header-triggered optimizations amortize over
//!    body flits, so their benefit should grow with packet length.
//!
//! Usage: `cargo run --release -p asynoc-bench --bin ablation [--quick]`

use asynoc::harness::{saturation_of, Quality};
use asynoc::{Architecture, Benchmark, Network, NetworkConfig, RunConfig, TimingModel};
use asynoc_bench::quality_from_args;

fn mean_latency_ns(network: &Network, benchmark: Benchmark, rate: f64, quality: &Quality) -> f64 {
    let run = RunConfig::new(benchmark, rate)
        .expect("positive rate")
        .with_phases(quality.probe_phases);
    let report = network.run(&run).expect("run succeeds");
    report.latency.mean().expect("packets measured").as_ns_f64()
}

fn main() {
    let quality = quality_from_args();

    // ------------------------------------------------------------------
    // Ablation 1: speculation without the speed.
    // ------------------------------------------------------------------
    println!("Ablation 1: hybrid network with slowed speculative nodes");
    let fast = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative).with_seed(quality.seed),
    )
    .expect("valid config");
    let mut slowed_model = TimingModel::calibrated();
    slowed_model.speculative.forward_header = slowed_model.non_speculative.forward_header;
    slowed_model.speculative.forward_body = slowed_model.non_speculative.forward_body;
    slowed_model.speculative.ack_extra = slowed_model.non_speculative.ack_extra;
    let slowed = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative)
            .with_seed(quality.seed)
            .with_timing(slowed_model),
    )
    .expect("valid config");
    let nonspec = Network::new(
        NetworkConfig::eight_by_eight(Architecture::BasicNonSpeculative).with_seed(quality.seed),
    )
    .expect("valid config");
    for benchmark in [Benchmark::UniformRandom, Benchmark::Multicast10] {
        let l_fast = mean_latency_ns(&fast, benchmark, 0.25, &quality);
        let l_slow = mean_latency_ns(&slowed, benchmark, 0.25, &quality);
        let l_nonspec = mean_latency_ns(&nonspec, benchmark, 0.25, &quality);
        println!(
            "  {benchmark}: hybrid {l_fast:.2} ns | hybrid w/ slow spec nodes {l_slow:.2} ns | \
             non-spec {l_nonspec:.2} ns"
        );
    }
    println!("  -> the gain comes from the speculative node's simplicity, not broadcasting");
    println!();

    // ------------------------------------------------------------------
    // Ablation 2: channel pre-allocation.
    // ------------------------------------------------------------------
    println!("Ablation 2: OptNonSpeculative without the body fast path");
    let with_fast_path = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative).with_seed(quality.seed),
    )
    .expect("valid config");
    let mut no_fast_path_model = TimingModel::calibrated();
    no_fast_path_model.opt_non_speculative.forward_body =
        no_fast_path_model.opt_non_speculative.forward_header;
    let without_fast_path = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptNonSpeculative)
            .with_seed(quality.seed)
            .with_timing(no_fast_path_model),
    )
    .expect("valid config");
    for benchmark in [Benchmark::Shuffle, Benchmark::Multicast10] {
        let sat_with = saturation_of(&with_fast_path, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        let sat_without = saturation_of(&without_fast_path, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        println!(
            "  {benchmark}: saturation {sat_with:.2} GF/s with pre-allocation, \
             {sat_without:.2} GF/s without"
        );
    }
    println!("  -> pre-allocating the channel on the header buys the body-flit bandwidth");
    println!();

    // ------------------------------------------------------------------
    // Ablation 3: packet length sweep.
    // ------------------------------------------------------------------
    println!("Ablation 3: optimization benefit vs packet length (Multicast10, 0.25 GF/s)");
    println!("  flits   BasicHybrid (ns)   OptHybrid (ns)   gain");
    for flits in [2u8, 3, 5, 7, 9] {
        let basic = Network::new(
            NetworkConfig::eight_by_eight(Architecture::BasicHybridSpeculative)
                .with_seed(quality.seed)
                .with_flits_per_packet(flits),
        )
        .expect("valid config");
        let opt = Network::new(
            NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative)
                .with_seed(quality.seed)
                .with_flits_per_packet(flits),
        )
        .expect("valid config");
        let l_basic = mean_latency_ns(&basic, Benchmark::Multicast10, 0.25, &quality);
        let l_opt = mean_latency_ns(&opt, Benchmark::Multicast10, 0.25, &quality);
        println!(
            "  {flits:<7} {l_basic:<18.2} {l_opt:<16.2} {:.1}%",
            100.0 * (1.0 - l_opt / l_basic)
        );
    }
    println!("  -> header-triggered optimizations amortize over body flits");
    println!();

    // ------------------------------------------------------------------
    // Ablation 4: two-phase vs four-phase handshaking (paper §2's choice).
    // ------------------------------------------------------------------
    println!("Ablation 4: two-phase (NRZ) vs four-phase (RZ) handshaking");
    let two_phase = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(quality.seed),
    )
    .expect("valid config");
    let four_phase = Network::new(
        NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative)
            .with_seed(quality.seed)
            .with_timing(TimingModel::four_phase()),
    )
    .expect("valid config");
    for benchmark in [Benchmark::Shuffle, Benchmark::Multicast10] {
        let sat2 = saturation_of(&two_phase, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        let sat4 = saturation_of(&four_phase, benchmark, &quality)
            .expect("run succeeds")
            .delivered_gfs;
        println!(
            "  {benchmark}: two-phase {sat2:.2} GF/s vs four-phase {sat4:.2} GF/s ({:+.0}%)",
            100.0 * (sat2 / sat4 - 1.0)
        );
    }
    println!(
        "  -> the single round trip per transaction is why the paper picks two-phase (section 2)"
    );
}
