//! Folds every `results/BENCH_*.json` baseline record into one
//! `results/BENCH_summary.json` — a single document answering "how fast
//! is the simulator right now" without opening five files.
//!
//! Usage: `bench_summary [results-dir]` (default `results`). The
//! summary lists every case of every baseline with its ns/event figure
//! and closes with the fastest and slowest case overall. Invoked by
//! `scripts/check.sh --smoke` after the guarded benches run, so the
//! summary always reflects the records the gate just checked.

use asynoc_telemetry::JsonValue;

/// The summary file's schema identifier.
const SUMMARY_SCHEMA: &str = "asynoc-bench-summary-v1";

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| {
            name.starts_with("BENCH_") && name.ends_with(".json") && name != "BENCH_summary.json"
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("no BENCH_*.json records in {dir}; run the benches first");
        std::process::exit(1);
    }

    // (bench, case id, ns/event, events) across every record.
    let mut all_cases: Vec<(String, String, f64, u64)> = Vec::new();
    let mut benches = Vec::new();
    for name in &files {
        let path = format!("{dir}/{name}");
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let record =
            JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path}: not a JSON record: {e}"));
        let bench = record
            .get("bench")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("{path}: missing bench name"))
            .to_string();
        let cases = record
            .get("cases")
            .and_then(JsonValue::as_array)
            .unwrap_or_else(|| panic!("{path}: missing cases array"));
        let mut case_entries = Vec::new();
        for case in cases {
            let id = case
                .get("id")
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| panic!("{path}: case without id"))
                .to_string();
            let ns_per_event = case
                .get("ns_per_event")
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("{path}: case {id} without ns_per_event"));
            let events = case
                .get("events")
                .and_then(JsonValue::as_f64)
                .unwrap_or_default() as u64;
            all_cases.push((bench.clone(), id.clone(), ns_per_event, events));
            case_entries.push(JsonValue::Object(vec![
                ("id".to_string(), JsonValue::str(&id)),
                ("ns_per_event".to_string(), JsonValue::Number(ns_per_event)),
                ("events".to_string(), JsonValue::uint(events)),
            ]));
        }
        benches.push(JsonValue::Object(vec![
            ("bench".to_string(), JsonValue::str(&bench)),
            ("source".to_string(), JsonValue::str(name.as_str())),
            ("cases".to_string(), JsonValue::Array(case_entries)),
        ]));
    }

    let extremum = |cases: &[(String, String, f64, u64)], fastest: bool| -> JsonValue {
        let pick = cases
            .iter()
            .reduce(|a, b| if (b.2 < a.2) == fastest { b } else { a });
        pick.map_or(JsonValue::Null, |(bench, id, ns, _)| {
            JsonValue::Object(vec![
                ("bench".to_string(), JsonValue::str(bench.as_str())),
                ("id".to_string(), JsonValue::str(id.as_str())),
                ("ns_per_event".to_string(), JsonValue::Number(*ns)),
            ])
        })
    };

    let doc = JsonValue::Object(vec![
        ("schema".to_string(), JsonValue::str(SUMMARY_SCHEMA)),
        (
            "case_count".to_string(),
            JsonValue::uint(all_cases.len() as u64),
        ),
        ("fastest".to_string(), extremum(&all_cases, true)),
        ("slowest".to_string(), extremum(&all_cases, false)),
        ("benches".to_string(), JsonValue::Array(benches)),
    ]);
    let out = format!("{dir}/BENCH_summary.json");
    std::fs::write(&out, doc.render_pretty()).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "bench summary: {} benches, {} cases -> {out}",
        files.len(),
        all_cases.len()
    );
}
