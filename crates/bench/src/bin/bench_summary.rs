//! Folds every `results/BENCH_*.json` baseline record into one
//! `results/BENCH_summary.json` — a single document answering "how fast
//! is the simulator right now" without opening five files.
//!
//! Usage: `bench_summary [results-dir]` (default `results`). The
//! summary lists every case of every baseline with its ns/event figure
//! and closes with the fastest and slowest case overall, stamped with
//! the git commit and a UTC timestamp so a checked-in summary is
//! attributable. Invoked by `scripts/check.sh --smoke` after the
//! guarded benches run, so the summary always reflects the records the
//! gate just checked.
//!
//! Partial inputs are tolerated: an unreadable, non-JSON, or
//! incompletely-shaped record is skipped with a warning on stderr
//! (and counted in the summary's `skipped` field) rather than
//! aborting the fold — CI boxes routinely carry stale or truncated
//! records from interrupted runs.

use asynoc_telemetry::JsonValue;

/// The summary file's schema identifier.
const SUMMARY_SCHEMA: &str = "asynoc-bench-summary-v1";

/// One fully-parsed case: (bench, case id, ns/event, events).
type Case = (String, String, f64, u64);

/// Parses one baseline record, returning its summary entry and cases.
/// Malformed cases inside an otherwise-valid record are skipped
/// individually (counted in the returned skip tally).
fn fold_record(name: &str, text: &str) -> Result<(JsonValue, Vec<Case>, u64), String> {
    let record = JsonValue::parse(text).map_err(|e| format!("not a JSON record: {e}"))?;
    let bench = record
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or("missing bench name")?
        .to_string();
    let cases = record
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or("missing cases array")?;
    let mut parsed = Vec::new();
    let mut entries = Vec::new();
    let mut skipped = 0;
    for case in cases {
        let (Some(id), Some(ns_per_event)) = (
            case.get("id").and_then(JsonValue::as_str),
            case.get("ns_per_event").and_then(JsonValue::as_f64),
        ) else {
            eprintln!("warning: {name}: skipping case without id/ns_per_event");
            skipped += 1;
            continue;
        };
        let events = case
            .get("events")
            .and_then(JsonValue::as_f64)
            .unwrap_or_default() as u64;
        parsed.push((bench.clone(), id.to_string(), ns_per_event, events));
        entries.push(JsonValue::Object(vec![
            ("id".to_string(), JsonValue::str(id)),
            ("ns_per_event".to_string(), JsonValue::Number(ns_per_event)),
            ("events".to_string(), JsonValue::uint(events)),
        ]));
    }
    let entry = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::str(&bench)),
        ("source".to_string(), JsonValue::str(name)),
        ("cases".to_string(), JsonValue::Array(entries)),
    ]);
    Ok((entry, parsed, skipped))
}

fn extremum(cases: &[Case], fastest: bool) -> JsonValue {
    let pick = cases
        .iter()
        .reduce(|a, b| if (b.2 < a.2) == fastest { b } else { a });
    pick.map_or(JsonValue::Null, |(bench, id, ns, _)| {
        JsonValue::Object(vec![
            ("bench".to_string(), JsonValue::str(bench.as_str())),
            ("id".to_string(), JsonValue::str(id.as_str())),
            ("ns_per_event".to_string(), JsonValue::Number(*ns)),
        ])
    })
}

/// The HEAD commit hash, or `Null` outside a git checkout (exported
/// tarballs, vendored copies) — the summary must not fail over it.
fn git_sha() -> JsonValue {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or(JsonValue::Null, |sha| JsonValue::str(sha.trim()))
}

/// Renders a Unix timestamp as `YYYY-MM-DDThh:mm:ssZ` (proleptic
/// Gregorian, via the standard civil-from-days conversion) — the
/// workspace is dependency-free, so no chrono.
fn iso8601_utc(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let rem = unix_secs % 86_400;
    let (hour, minute, second) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{hour:02}:{minute:02}:{second:02}Z")
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut files: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| {
                name.starts_with("BENCH_")
                    && name.ends_with(".json")
                    && name != "BENCH_summary.json"
            })
            .collect(),
        Err(e) => {
            eprintln!("warning: cannot read {dir}: {e}; writing an empty summary");
            Vec::new()
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("warning: no BENCH_*.json records in {dir}; run the benches to populate it");
    }

    let mut all_cases: Vec<Case> = Vec::new();
    let mut benches = Vec::new();
    let mut skipped: u64 = 0;
    for name in &files {
        let path = format!("{dir}/{name}");
        let folded = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| fold_record(name, &text));
        match folded {
            Ok((entry, cases, case_skips)) => {
                all_cases.extend(cases);
                benches.push(entry);
                skipped += case_skips;
            }
            Err(reason) => {
                eprintln!("warning: {path}: {reason}; skipping");
                skipped += 1;
            }
        }
    }

    let generated_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or_else(
            |_| JsonValue::Null,
            |d| JsonValue::str(iso8601_utc(d.as_secs())),
        );
    let doc = JsonValue::Object(vec![
        ("schema".to_string(), JsonValue::str(SUMMARY_SCHEMA)),
        ("git_sha".to_string(), git_sha()),
        ("generated_at".to_string(), generated_at),
        (
            "case_count".to_string(),
            JsonValue::uint(all_cases.len() as u64),
        ),
        ("skipped".to_string(), JsonValue::uint(skipped)),
        ("fastest".to_string(), extremum(&all_cases, true)),
        ("slowest".to_string(), extremum(&all_cases, false)),
        ("benches".to_string(), JsonValue::Array(benches)),
    ]);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(1);
    }
    let out = format!("{dir}/BENCH_summary.json");
    if let Err(e) = std::fs::write(&out, doc.render_pretty()) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench summary: {} benches, {} cases ({} skipped) -> {out}",
        files.len(),
        all_cases.len(),
        skipped
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_conversion_matches_known_dates() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:00:00 UTC.
        assert_eq!(iso8601_utc(951_825_600), "2000-02-29T12:00:00Z");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(iso8601_utc(1_786_233_600), "2026-08-09T00:00:00Z");
    }

    #[test]
    fn partial_records_fold_with_warnings_not_panics() {
        let (entry, cases, skipped) = fold_record(
            "BENCH_x.json",
            r#"{"bench":"x","cases":[
                {"id":"good","ns_per_event":12.5,"events":100},
                {"id":"no-figure"},
                {"ns_per_event":9.0}
            ]}"#,
        )
        .expect("record folds");
        assert_eq!(cases.len(), 1);
        assert_eq!(skipped, 2);
        assert_eq!(
            entry
                .get("cases")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
    }

    #[test]
    fn malformed_records_are_rejected_with_a_reason() {
        assert!(fold_record("b", "not json").is_err());
        assert!(fold_record("b", r#"{"cases":[]}"#).is_err());
        assert!(fold_record("b", r#"{"bench":"x"}"#).is_err());
    }
}
