//! Regenerates Figure 6(a): average network latency at 25 % of each
//! network's saturation load, contribution trajectory (Baseline,
//! BasicNonSpeculative, BasicHybridSpeculative, OptHybridSpeculative).
//!
//! Usage: `cargo run --release -p asynoc-bench --bin fig6a_latency
//! [--quick|--paper] [--seed N]`

use asynoc::harness::{fig6a, LatencyCell};
use asynoc::{Architecture, Benchmark};
use asynoc_bench::{arch_label, print_benchmark_header, quality_from_args};

fn print_latency_grid(cells: &[LatencyCell], architectures: &[Architecture]) {
    print_benchmark_header("Scheme (ns)", &Benchmark::ALL);
    for &arch in architectures {
        print!("{}", arch_label(arch));
        for benchmark in Benchmark::ALL {
            let cell = cells
                .iter()
                .find(|c| c.architecture == arch && c.benchmark == benchmark)
                .expect("every cell computed");
            print!(" {:>16.2}", cell.mean_latency_ps as f64 / 1_000.0);
        }
        println!();
    }
    println!();
    print_benchmark_header("Scheme p99 (ns)", &Benchmark::ALL);
    for &arch in architectures {
        print!("{}", arch_label(arch));
        for benchmark in Benchmark::ALL {
            let cell = cells
                .iter()
                .find(|c| c.architecture == arch && c.benchmark == benchmark)
                .expect("every cell computed");
            print!(" {:>16.2}", cell.p99_latency_ps as f64 / 1_000.0);
        }
        println!();
    }
}

fn main() {
    let quality = quality_from_args();
    let cells = fig6a(&quality).expect("harness run failed");

    println!("Figure 6(a): average network latency at 25% saturation load");
    println!();
    print_latency_grid(&cells, &Architecture::CONTRIBUTION_TRAJECTORY);
    println!();

    // The paper reports relative improvements; print the same ratios.
    for benchmark in Benchmark::MULTICAST {
        let get = |arch: Architecture| -> f64 {
            cells
                .iter()
                .find(|c| c.architecture == arch && c.benchmark == benchmark)
                .expect("cell computed")
                .mean_latency_ps as f64
        };
        let baseline = get(Architecture::Baseline);
        let nonspec = get(Architecture::BasicNonSpeculative);
        let hybrid = get(Architecture::BasicHybridSpeculative);
        let opt = get(Architecture::OptHybridSpeculative);
        println!(
            "{benchmark}: BasicNonSpec -{:.1}% vs Baseline (paper 39.1-74.1), \
             BasicHybrid -{:.1}% vs BasicNonSpec (paper 10.5-14.9), \
             OptHybrid -{:.1}% vs BasicNonSpec (paper 17.8-21.4)",
            100.0 * (1.0 - nonspec / baseline),
            100.0 * (1.0 - hybrid / nonspec),
            100.0 * (1.0 - opt / nonspec),
        );
    }
}
