//! Regenerates Figure 6(b): average network latency at 25 % of each
//! network's saturation load, design-space exploration (OptNonSpeculative,
//! OptHybridSpeculative, OptAllSpeculative).
//!
//! Usage: `cargo run --release -p asynoc-bench --bin fig6b_latency
//! [--quick|--paper] [--seed N]`

use asynoc::harness::fig6b;
use asynoc::{Architecture, Benchmark};
use asynoc_bench::{arch_label, print_benchmark_header, quality_from_args};

fn main() {
    let quality = quality_from_args();
    let cells = fig6b(&quality).expect("harness run failed");

    println!("Figure 6(b): average network latency at 25% saturation load");
    println!();
    print_benchmark_header("Scheme (ns)", &Benchmark::ALL);
    for &arch in &Architecture::DESIGN_SPACE {
        print!("{}", arch_label(arch));
        for benchmark in Benchmark::ALL {
            let cell = cells
                .iter()
                .find(|c| c.architecture == arch && c.benchmark == benchmark)
                .expect("every cell computed");
            print!(" {:>16.2}", cell.mean_latency_ps as f64 / 1_000.0);
        }
        println!();
    }
    println!();
    print_benchmark_header("Scheme p99 (ns)", &Benchmark::ALL);
    for &arch in &Architecture::DESIGN_SPACE {
        print!("{}", arch_label(arch));
        for benchmark in Benchmark::ALL {
            let cell = cells
                .iter()
                .find(|c| c.architecture == arch && c.benchmark == benchmark)
                .expect("every cell computed");
            print!(" {:>16.2}", cell.p99_latency_ps as f64 / 1_000.0);
        }
        println!();
    }
    println!();

    for benchmark in Benchmark::ALL {
        let get = |arch: Architecture| -> f64 {
            cells
                .iter()
                .find(|c| c.architecture == arch && c.benchmark == benchmark)
                .expect("cell computed")
                .mean_latency_ps as f64
        };
        let nonspec = get(Architecture::OptNonSpeculative);
        let hybrid = get(Architecture::OptHybridSpeculative);
        let allspec = get(Architecture::OptAllSpeculative);
        println!(
            "{benchmark}: OptHybrid -{:.1}% vs OptNonSpec (paper 9.7-11.9), \
             OptAllSpec -{:.1}% vs OptHybrid (paper 8.7-12.0)",
            100.0 * (1.0 - hybrid / nonspec),
            100.0 * (1.0 - allspec / hybrid),
        );
    }
}
