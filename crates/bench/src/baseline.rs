//! Benchmark baseline records and the regression guard.
//!
//! A bench binary invoked with `--json <path>` normalizes each case's
//! median to **nanoseconds per simulated event** and compares against
//! the stored record at `path`:
//!
//! - no record yet → the run *seeds* one and passes;
//! - record present → any case more than [`TOLERANCE`] slower than its
//!   stored `ns_per_event` fails with a per-case diff (the process exits
//!   non-zero from the caller);
//! - `--update-baseline` → rewrite the record with this run.
//!
//! Passing runs never rewrite the file, so the baseline tracks the
//! machine it was seeded on; wall-clock noise is absorbed by the
//! per-event normalization and the 20% tolerance band.

use std::time::Duration;

use asynoc_telemetry::JsonValue;

/// Allowed slowdown over the stored baseline (fractional).
pub const TOLERANCE: f64 = 0.20;

/// The baseline file's schema identifier.
pub const BASELINE_SCHEMA: &str = "asynoc-bench-v1";

/// One measured benchmark case.
pub struct BenchCase {
    /// Case identifier (stable across runs).
    pub id: String,
    /// Median wall-clock of the case.
    pub median: Duration,
    /// Simulated events the case processed (the normalizer).
    pub events: u64,
}

impl BenchCase {
    fn ns_per_event(&self) -> f64 {
        self.median.as_nanos() as f64 / self.events.max(1) as f64
    }
}

fn record_json(bench: &str, cases: &[BenchCase]) -> JsonValue {
    JsonValue::Object(vec![
        ("schema".to_string(), JsonValue::str(BASELINE_SCHEMA)),
        ("bench".to_string(), JsonValue::str(bench)),
        (
            "cases".to_string(),
            JsonValue::Array(
                cases
                    .iter()
                    .map(|case| {
                        JsonValue::Object(vec![
                            ("id".to_string(), JsonValue::str(&case.id)),
                            (
                                "median_ns".to_string(),
                                JsonValue::uint(case.median.as_nanos() as u64),
                            ),
                            ("events".to_string(), JsonValue::uint(case.events)),
                            (
                                "ns_per_event".to_string(),
                                JsonValue::Number(case.ns_per_event()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Compares `cases` against the record at `path`, seeding or updating it
/// as described in the module docs.
///
/// # Errors
///
/// Returns a human-readable message naming every case that regressed
/// beyond [`TOLERANCE`]; the caller should print it and exit non-zero.
pub fn guard(bench: &str, path: &str, cases: &[BenchCase], update: bool) -> Result<(), String> {
    let stored = std::fs::read_to_string(path);
    let Ok(text) = stored else {
        let rendered = record_json(bench, cases).render_pretty();
        std::fs::write(path, rendered).map_err(|e| format!("cannot seed baseline {path}: {e}"))?;
        println!("seeded baseline {path}");
        return Ok(());
    };
    if update {
        let rendered = record_json(bench, cases).render_pretty();
        std::fs::write(path, rendered)
            .map_err(|e| format!("cannot update baseline {path}: {e}"))?;
        println!("updated baseline {path}");
        return Ok(());
    }

    let record = JsonValue::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    let stored_cases = record
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("baseline {path}: missing cases array"))?;
    let stored_ns_per_event = |id: &str| -> Option<f64> {
        stored_cases
            .iter()
            .find(|c| c.get("id").and_then(JsonValue::as_str) == Some(id))
            .and_then(|c| c.get("ns_per_event"))
            .and_then(JsonValue::as_f64)
    };

    let mut failures = Vec::new();
    for case in cases {
        let Some(baseline) = stored_ns_per_event(&case.id) else {
            println!(
                "  {:<28} no baseline entry (rerun with --update-baseline to add)",
                case.id
            );
            continue;
        };
        let now = case.ns_per_event();
        let ratio = now / baseline.max(f64::MIN_POSITIVE);
        if ratio > 1.0 + TOLERANCE {
            failures.push(format!(
                "  {:<28} {:.1} ns/event vs baseline {:.1} ns/event (+{:.0}%, tolerance {:.0}%)",
                case.id,
                now,
                baseline,
                (ratio - 1.0) * 100.0,
                TOLERANCE * 100.0
            ));
        } else {
            println!(
                "  {:<28} {:.1} ns/event vs baseline {:.1} ns/event ({:+.0}%) ok",
                case.id,
                now,
                baseline,
                (ratio - 1.0) * 100.0
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "bench {bench} regressed beyond the stored baseline {path}:\n{}\n\
             if the slowdown is intentional, rerun with --update-baseline",
            failures.join("\n")
        ))
    }
}

/// Parses the bench-binary argument convention shared by the guarded
/// benches: `--smoke`, `--json <path>`, `--update-baseline`.
#[must_use]
pub fn parse_bench_args() -> BenchArgs {
    let mut parsed = BenchArgs {
        smoke: false,
        json: None,
        update: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--update-baseline" => parsed.update = true,
            "--json" => {
                parsed.json = Some(args.next().unwrap_or_else(|| {
                    panic!("--json requires a path");
                }));
            }
            // `cargo bench` passes through a `--bench` marker.
            "--bench" => {}
            other => panic!(
                "unknown argument {other:?} (expected --smoke, --json <path>, --update-baseline)"
            ),
        }
    }
    parsed
}

/// The parsed bench-binary arguments.
pub struct BenchArgs {
    /// Shrink windows and sample counts for CI.
    pub smoke: bool,
    /// Baseline record path (`None` = no guard, print-only).
    pub json: Option<String>,
    /// Rewrite the baseline with this run.
    pub update: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "asynoc-baseline-test-{}-{name}",
            std::process::id()
        ));
        path.to_string_lossy().into_owned()
    }

    fn case(id: &str, ns: u64, events: u64) -> BenchCase {
        BenchCase {
            id: id.to_string(),
            median: Duration::from_nanos(ns),
            events,
        }
    }

    #[test]
    fn first_run_seeds_and_passes() {
        let path = temp_path("seed.json");
        let _ = std::fs::remove_file(&path);
        let cases = [case("a", 1_000_000, 1_000)];
        guard("demo", &path, &cases, false).expect("seeding passes");
        let text = std::fs::read_to_string(&path).expect("record written");
        let record = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(
            record.get("schema").and_then(JsonValue::as_str),
            Some(BASELINE_SCHEMA)
        );
        let entries = record.get("cases").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            entries[0].get("ns_per_event").and_then(JsonValue::as_f64),
            Some(1_000.0)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn within_tolerance_passes_and_keeps_the_baseline() {
        let path = temp_path("pass.json");
        let _ = std::fs::remove_file(&path);
        guard("demo", &path, &[case("a", 1_000_000, 1_000)], false).expect("seed");
        let before = std::fs::read_to_string(&path).expect("record");
        // 15% slower: inside the band.
        guard("demo", &path, &[case("a", 1_150_000, 1_000)], false).expect("within tolerance");
        assert_eq!(
            std::fs::read_to_string(&path).expect("record"),
            before,
            "passing runs never rewrite the baseline"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn regression_fails_with_a_diff_message() {
        let path = temp_path("fail.json");
        let _ = std::fs::remove_file(&path);
        guard("demo", &path, &[case("a", 1_000_000, 1_000)], false).expect("seed");
        let err = guard("demo", &path, &[case("a", 1_500_000, 1_000)], false)
            .expect_err("50% slower must fail");
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("1500.0 ns/event"), "{err}");
        assert!(err.contains("baseline 1000.0 ns/event"), "{err}");
        assert!(err.contains("--update-baseline"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn update_rewrites_the_baseline() {
        let path = temp_path("update.json");
        let _ = std::fs::remove_file(&path);
        guard("demo", &path, &[case("a", 1_000_000, 1_000)], false).expect("seed");
        guard("demo", &path, &[case("a", 2_000_000, 1_000)], true).expect("update");
        guard("demo", &path, &[case("a", 2_000_000, 1_000)], false).expect("new baseline accepted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faster_events_normalization_absorbs_bigger_runs() {
        let path = temp_path("norm.json");
        let _ = std::fs::remove_file(&path);
        guard("demo", &path, &[case("a", 1_000_000, 1_000)], false).expect("seed");
        // 4x the wall-clock over 4x the events: identical ns/event.
        guard("demo", &path, &[case("a", 4_000_000, 4_000)], false).expect("same per-event cost");
        let _ = std::fs::remove_file(&path);
    }
}
