//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md`'s per-experiment index). They all accept a
//! `--quick` flag for a fast low-precision pass and default to the paper's
//! measurement protocol ([`asynoc::harness::Quality::paper`]).

use asynoc::harness::Quality;
use asynoc::{Architecture, Benchmark};

pub mod baseline;
pub mod timing;

/// Parses the common CLI convention: `--quick` selects the fast preset,
/// `--seed N` overrides the RNG seed, `--jobs J` fans independent cells
/// across worker threads (wall-clock only — results are bit-identical at
/// any setting).
///
/// # Panics
///
/// Panics with a usage message on unknown arguments.
#[must_use]
pub fn quality_from_args() -> Quality {
    let mut quality = None;
    let mut seed = None;
    let mut jobs = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quality = Some(Quality::quick()),
            "--paper" => quality = Some(Quality::paper()),
            "--seed" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed requires an integer"));
                seed = Some(value);
            }
            "--jobs" => {
                let value: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j| j > 0)
                    .unwrap_or_else(|| panic!("--jobs requires a positive integer"));
                jobs = Some(value);
            }
            other => {
                panic!("unknown argument {other:?} (expected --quick, --paper, --seed N, --jobs J)")
            }
        }
    }
    let mut quality = quality.unwrap_or_else(Quality::paper);
    if let Some(seed) = seed {
        quality.seed = seed;
    }
    if let Some(jobs) = jobs {
        quality.jobs = jobs;
    }
    quality
}

/// Fixed-width cell for architecture names.
#[must_use]
pub fn arch_label(arch: Architecture) -> String {
    // Width must be applied to the rendered string: Architecture's Display
    // does not forward padding flags.
    format!("{:<24}", arch.to_string())
}

/// Prints a header row for a benchmark-columned table.
pub fn print_benchmark_header(label: &str, benchmarks: &[Benchmark]) {
    print!("{label:<24}");
    for b in benchmarks {
        print!(" {:>16}", b.to_string());
    }
    println!();
    println!("{}", "-".repeat(24 + benchmarks.len() * 17));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_label_is_fixed_width() {
        assert_eq!(arch_label(Architecture::Baseline).len(), 24);
        assert_eq!(arch_label(Architecture::BasicHybridSpeculative).len(), 24);
    }
}
