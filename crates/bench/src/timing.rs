//! A minimal wall-clock benchmark harness.
//!
//! The build environment is offline, so criterion is unavailable; this
//! module provides the small slice of it the `benches/` binaries need:
//! named benchmark groups, per-case warmup, and a median-of-samples
//! timing report printed as a table.

use std::time::{Duration, Instant};

/// Runs named closures repeatedly and reports wall-clock statistics.
pub struct Harness {
    sample_size: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new(20)
    }
}

impl Harness {
    /// Creates a harness that times each case `sample_size` times.
    #[must_use]
    pub fn new(sample_size: usize) -> Self {
        assert!(sample_size > 0, "sample size must be positive");
        Harness { sample_size }
    }

    /// Opens a named benchmark group; cases print under its heading.
    pub fn group(&self, name: &str) -> Group<'_> {
        println!("\n{name}");
        println!("{}", "-".repeat(name.len().max(48)));
        Group { harness: self }
    }
}

/// A heading under which related benchmark cases are timed.
pub struct Group<'a> {
    harness: &'a Harness,
}

/// Wall-clock statistics over one benchmark case's samples.
#[derive(Clone, Copy, Debug)]
pub struct BenchStats {
    /// Middle sample after sorting.
    pub median: Duration,
    /// Fastest sample — the noise-robust estimator on a shared machine,
    /// since external load only ever adds time.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl Group<'_> {
    /// Times `f`, printing median/min/max over the harness's sample count
    /// and returning the median (for baseline guards).
    ///
    /// One untimed warmup call precedes measurement so allocator and cache
    /// effects of the first run do not skew the minimum.
    pub fn bench<T>(&self, id: &str, f: impl FnMut() -> T) -> Duration {
        self.bench_stats(id, f).median
    }

    /// Like [`bench`](Group::bench) but returns the full
    /// [`BenchStats`], for callers that want the minimum (ratio
    /// comparisons on noisy machines) as well as the median.
    pub fn bench_stats<T>(&self, id: &str, mut f: impl FnMut() -> T) -> BenchStats {
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = (0..self.harness.sample_size)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let stats = BenchStats {
            median: samples[samples.len() / 2],
            min: samples[0],
            max: samples[samples.len() - 1],
        };
        println!(
            "  {id:<28} median {:>12} min {:>12} max {:>12}",
            format_duration(stats.median),
            format_duration(stats.min),
            format_duration(stats.max),
        );
        stats
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale_with_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_millis(2500)), "2.50 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let harness = Harness::new(3);
        let group = harness.group("smoke");
        let mut calls = 0;
        group.bench("counter", || calls += 1);
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}
