//! Profile neutrality: enabling the engine self-profile must not move a
//! single bit of the simulation.
//!
//! The profile layer's contract is "host-side metadata only": always-on
//! counters plus clock reads gated behind the profile flag. Nothing it
//! does may touch event order, timestamps, RNG draws, or report fields.
//! This test proves it the same way the sharded engine proves
//! serial-equivalence — an FNV-1a fingerprint over the debug rendering
//! of every `(time, in_window, event)` triple — across both substrates
//! and both the serial and sharded paths, with `--progress` forced off
//! (the heartbeat is stderr-only and TTY-gated, but the run flag is
//! exercised too).

use asynoc::{
    Architecture, Benchmark, Network, NetworkConfig, Observer, RunConfig, SimEvent, Time,
};
use asynoc_kernel::Duration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;
use std::fmt::Write as _;

/// Streaming FNV-1a fingerprint of the full event stream.
struct Fingerprint {
    hash: u64,
    events: u64,
    line: String,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            hash: 0xcbf2_9ce4_8422_2325,
            events: 0,
            line: String::new(),
        }
    }

    fn absorb<N: std::fmt::Debug>(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        self.line.clear();
        write!(self.line, "{at:?}|{in_window}|{event:?}").expect("String write is infallible");
        for byte in self.line.as_bytes() {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.events += 1;
    }
}

impl<N: std::fmt::Debug> Observer<N> for Fingerprint {
    fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        self.absorb(at, in_window, event);
    }
}

const SHARDS: [usize; 2] = [1, 2];

#[test]
fn mot_runs_are_bit_identical_with_profiling_on() {
    for shards in SHARDS {
        let network = Network::new(
            NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(7),
        )
        .expect("8x8 network builds");
        let run = |profile: bool| {
            let config = RunConfig::quick(Benchmark::Multicast10, 0.3)
                .with_shards(shards)
                .with_profile(profile);
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(&config, &mut [&mut stream])
                .expect("run succeeds");
            (stream.hash, stream.events, report)
        };
        let (plain_hash, plain_events, plain) = run(false);
        let (profiled_hash, profiled_events, profiled) = run(true);
        assert_eq!(
            plain_hash, profiled_hash,
            "shards {shards}: profiling moved the event stream"
        );
        assert_eq!(plain_events, profiled_events, "shards {shards}");
        assert_eq!(plain.events_processed, profiled.events_processed);
        assert_eq!(plain.shard_events, profiled.shard_events);
        assert_eq!(plain.packets_measured, profiled.packets_measured);
        assert_eq!(plain.flits_throttled, profiled.flits_throttled);
        assert_eq!(plain.throughput, profiled.throughput);
        assert_eq!(plain.latency.mean(), profiled.latency.mean());
        assert_eq!(plain.latency.max(), profiled.latency.max());
        assert!(plain.packets_measured > 0, "shards {shards}: degenerate");
        // The profile itself only exists on the profiled side, and its
        // event attribution agrees with the deterministic report.
        assert!(plain.profile.is_none());
        check_profile_attribution(
            &profiled.profile.expect("profile collected"),
            shards,
            profiled.events_processed,
        );
    }
}

/// The profile's per-shard event accounting must be internally
/// consistent and cover the run: each shard's per-kind counts sum to
/// that shard's executed-event count, and the shards together executed
/// at least every event the fold committed (a sharded run may execute a
/// short tail past the serial stopping point — those events are cut by
/// the replay, never observed, but the shard did the work and the
/// profile reports work done).
fn check_profile_attribution(
    profile: &asynoc::probe::EngineProfile,
    shards: usize,
    events_processed: u64,
) {
    assert_eq!(profile.shards.len(), shards);
    for shard in &profile.shards {
        assert_eq!(
            shard.kinds.total(),
            shard.events,
            "shard {}: per-kind counts must sum to the shard's events",
            shard.shard
        );
    }
    let executed: u64 = profile.shards.iter().map(|s| s.events).sum();
    assert!(
        executed >= events_processed,
        "shards {shards}: executed {executed} < committed {events_processed}"
    );
    if shards == 1 {
        assert_eq!(executed, events_processed, "serial runs have no cut tail");
    }
}

#[test]
fn mesh_runs_are_bit_identical_with_profiling_on() {
    let phases = Phases::new(Duration::from_ns(80), Duration::from_ns(800));
    for shards in SHARDS {
        let run = |profile: bool| {
            let config = MeshConfig::new(MeshSize::new(4, 4).expect("4x4 is valid"))
                .with_seed(7)
                .with_shards(shards)
                .with_profile(profile);
            let network = MeshNetwork::new(config).expect("4x4 mesh builds");
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(Benchmark::UniformRandom, 0.25, phases, &mut [&mut stream])
                .expect("run succeeds");
            (stream.hash, stream.events, report)
        };
        let (plain_hash, plain_events, plain) = run(false);
        let (profiled_hash, profiled_events, profiled) = run(true);
        assert_eq!(
            plain_hash, profiled_hash,
            "shards {shards}: profiling moved the event stream"
        );
        assert_eq!(plain_events, profiled_events, "shards {shards}");
        assert_eq!(plain.events_processed, profiled.events_processed);
        assert_eq!(plain.shard_events, profiled.shard_events);
        assert_eq!(plain.packets_measured, profiled.packets_measured);
        assert_eq!(plain.throughput, profiled.throughput);
        assert_eq!(plain.latency.mean(), profiled.latency.mean());
        assert!((plain.mean_hops - profiled.mean_hops).abs() == 0.0);
        assert!(plain.packets_measured > 0, "shards {shards}: degenerate");
        assert!(plain.profile.is_none());
        check_profile_attribution(
            &profiled.profile.expect("profile collected"),
            shards,
            profiled.events_processed,
        );
    }
}
