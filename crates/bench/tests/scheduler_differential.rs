//! Differential conformance: heap vs calendar scheduler, both substrates.
//!
//! The calendar queue's entire correctness claim is that it is
//! *observationally identical* to the binary heap: same `(time, seq)`
//! pop order, therefore the same event stream, therefore the same
//! reports. The kernel already proves this at the queue level with
//! random workloads; this test proves it end-to-end — ten seeded runs
//! on each substrate (MoT and 2D-mesh), each executed once per
//! scheduler kind, must produce bit-identical observer streams and
//! identical report fields (everything except host wall-clock time).
//!
//! Streams are compared by FNV-1a fingerprint over the debug rendering
//! of every `(time, in_window, event)` triple, so any divergence — an
//! extra event, a reordered arbitration, a shifted timestamp — changes
//! the hash.

use asynoc::{
    Architecture, Benchmark, Network, NetworkConfig, Observer, RunConfig, SchedulerKind, SimEvent,
    Time,
};
use asynoc_kernel::Duration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;
use std::fmt::Write as _;

/// Streaming FNV-1a fingerprint of the full event stream.
struct Fingerprint {
    hash: u64,
    events: u64,
    line: String,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            hash: 0xcbf2_9ce4_8422_2325,
            events: 0,
            line: String::new(),
        }
    }

    fn absorb<N: std::fmt::Debug>(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        self.line.clear();
        write!(self.line, "{at:?}|{in_window}|{event:?}").expect("String write is infallible");
        for byte in self.line.as_bytes() {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.events += 1;
    }
}

impl<N: std::fmt::Debug> Observer<N> for Fingerprint {
    fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        self.absorb(at, in_window, event);
    }
}

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

#[test]
fn mot_runs_are_identical_under_both_schedulers() {
    for seed in SEEDS {
        let mut outcomes = Vec::new();
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let config =
                NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(seed);
            let network = Network::new(config).expect("8x8 network builds");
            let run = RunConfig::quick(Benchmark::Multicast10, 0.3).with_scheduler(kind);
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(&run, &mut [&mut stream])
                .expect("run succeeds");
            outcomes.push((kind, stream.hash, stream.events, report));
        }
        let (_, heap_hash, heap_events, heap) = &outcomes[0];
        let (_, cal_hash, cal_events, cal) = &outcomes[1];
        assert_eq!(heap_events, cal_events, "seed {seed}: event counts differ");
        assert_eq!(heap_hash, cal_hash, "seed {seed}: event streams diverged");
        assert_eq!(heap.events_processed, cal.events_processed, "seed {seed}");
        assert_eq!(heap.packets_measured, cal.packets_measured, "seed {seed}");
        assert_eq!(
            heap.packets_incomplete, cal.packets_incomplete,
            "seed {seed}"
        );
        assert_eq!(heap.flits_throttled, cal.flits_throttled, "seed {seed}");
        assert_eq!(heap.flits_delivered, cal.flits_delivered, "seed {seed}");
        assert_eq!(heap.throughput, cal.throughput, "seed {seed}");
        assert_eq!(heap.latency.count(), cal.latency.count(), "seed {seed}");
        assert_eq!(heap.latency.mean(), cal.latency.mean(), "seed {seed}");
        assert_eq!(heap.latency.min(), cal.latency.min(), "seed {seed}");
        assert_eq!(heap.latency.max(), cal.latency.max(), "seed {seed}");
        assert!(heap.packets_measured > 0, "seed {seed}: degenerate run");
    }
}

#[test]
fn mesh_runs_are_identical_under_both_schedulers() {
    let phases = Phases::new(Duration::from_ns(80), Duration::from_ns(800));
    for seed in SEEDS {
        let mut outcomes = Vec::new();
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let config = MeshConfig::new(MeshSize::new(4, 4).expect("4x4 is valid"))
                .with_seed(seed)
                .with_scheduler(kind);
            let network = MeshNetwork::new(config).expect("4x4 mesh builds");
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(Benchmark::UniformRandom, 0.25, phases, &mut [&mut stream])
                .expect("run succeeds");
            outcomes.push((kind, stream.hash, stream.events, report));
        }
        let (_, heap_hash, heap_events, heap) = &outcomes[0];
        let (_, cal_hash, cal_events, cal) = &outcomes[1];
        assert_eq!(heap_events, cal_events, "seed {seed}: event counts differ");
        assert_eq!(heap_hash, cal_hash, "seed {seed}: event streams diverged");
        assert_eq!(heap.events_processed, cal.events_processed, "seed {seed}");
        assert_eq!(heap.packets_measured, cal.packets_measured, "seed {seed}");
        assert_eq!(
            heap.packets_incomplete, cal.packets_incomplete,
            "seed {seed}"
        );
        assert_eq!(heap.throughput, cal.throughput, "seed {seed}");
        assert_eq!(heap.latency.count(), cal.latency.count(), "seed {seed}");
        assert_eq!(heap.latency.mean(), cal.latency.mean(), "seed {seed}");
        assert_eq!(heap.latency.min(), cal.latency.min(), "seed {seed}");
        assert_eq!(heap.latency.max(), cal.latency.max(), "seed {seed}");
        assert!((heap.mean_hops - cal.mean_hops).abs() == 0.0, "seed {seed}");
        assert!(heap.packets_measured > 0, "seed {seed}: degenerate run");
    }
}
