//! Differential conformance: sharded vs serial execution, both substrates.
//!
//! The conservative parallel engine's entire correctness claim is that
//! it is *observationally identical* to the serial loop: the merged
//! per-shard event records replay in the serial engine's canonical
//! `(time, key, seq)` order, therefore observers see the same stream,
//! therefore every report field matches bit for bit. The core and mesh
//! crates already prove this on one seed each; this test proves it
//! across ten seeded runs per substrate and shard counts 1/2/4, plus a
//! fault-injection round trip whose ledger and verdict inputs must not
//! move either.
//!
//! Streams are compared by FNV-1a fingerprint over the debug rendering
//! of every `(time, in_window, event)` triple, so any divergence — an
//! extra event, a reordered arbitration, a shifted timestamp — changes
//! the hash.

use asynoc::{
    Architecture, Benchmark, Network, NetworkConfig, Observer, RunConfig, SimEvent, Time,
};
use asynoc_faults::{run_mesh_outcome, run_mot_outcome, run_vcmesh_outcome, FaultPlan};
use asynoc_kernel::Duration;
use asynoc_mesh::{MeshConfig, MeshNetwork, MeshSize};
use asynoc_stats::Phases;
use asynoc_vcmesh::{McastScheme, VcMeshConfig, VcMeshNetwork};
use std::fmt::Write as _;

/// Streaming FNV-1a fingerprint of the full event stream.
struct Fingerprint {
    hash: u64,
    events: u64,
    line: String,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            hash: 0xcbf2_9ce4_8422_2325,
            events: 0,
            line: String::new(),
        }
    }

    fn absorb<N: std::fmt::Debug>(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        self.line.clear();
        write!(self.line, "{at:?}|{in_window}|{event:?}").expect("String write is infallible");
        for byte in self.line.as_bytes() {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.events += 1;
    }
}

impl<N: std::fmt::Debug> Observer<N> for Fingerprint {
    fn on_event(&mut self, at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        self.absorb(at, in_window, event);
    }
}

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
const SHARDS: [usize; 3] = [1, 2, 4];

#[test]
fn mot_runs_are_identical_at_every_shard_count() {
    for seed in SEEDS {
        let mut outcomes = Vec::new();
        for shards in SHARDS {
            let config =
                NetworkConfig::eight_by_eight(Architecture::OptHybridSpeculative).with_seed(seed);
            let network = Network::new(config).expect("8x8 network builds");
            let run = RunConfig::quick(Benchmark::Multicast10, 0.3).with_shards(shards);
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(&run, &mut [&mut stream])
                .expect("run succeeds");
            assert_eq!(report.shards, shards, "seed {seed}: shard count echoed");
            assert_eq!(report.shard_events.len(), shards, "seed {seed}");
            assert_eq!(
                report.shard_events.iter().sum::<u64>(),
                report.events_processed,
                "seed {seed}: per-shard events must sum to the total"
            );
            outcomes.push((shards, stream.hash, stream.events, report));
        }
        let (_, serial_hash, serial_events, serial) = &outcomes[0];
        for (shards, hash, events, sharded) in &outcomes[1..] {
            assert_eq!(
                serial_events, events,
                "seed {seed} shards {shards}: event counts differ"
            );
            assert_eq!(
                serial_hash, hash,
                "seed {seed} shards {shards}: event streams diverged"
            );
            assert_eq!(serial.events_processed, sharded.events_processed);
            assert_eq!(serial.packets_measured, sharded.packets_measured);
            assert_eq!(serial.packets_incomplete, sharded.packets_incomplete);
            assert_eq!(serial.flits_throttled, sharded.flits_throttled);
            assert_eq!(serial.flits_delivered, sharded.flits_delivered);
            assert_eq!(serial.throughput, sharded.throughput);
            assert_eq!(serial.latency.count(), sharded.latency.count());
            assert_eq!(serial.latency.mean(), sharded.latency.mean());
            assert_eq!(serial.latency.min(), sharded.latency.min());
            assert_eq!(serial.latency.max(), sharded.latency.max());
        }
        assert!(serial.packets_measured > 0, "seed {seed}: degenerate run");
    }
}

#[test]
fn mesh_runs_are_identical_at_every_shard_count() {
    let phases = Phases::new(Duration::from_ns(80), Duration::from_ns(800));
    for seed in SEEDS {
        let mut outcomes = Vec::new();
        for shards in SHARDS {
            let config = MeshConfig::new(MeshSize::new(4, 4).expect("4x4 is valid"))
                .with_seed(seed)
                .with_shards(shards);
            let network = MeshNetwork::new(config).expect("4x4 mesh builds");
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(Benchmark::UniformRandom, 0.25, phases, &mut [&mut stream])
                .expect("run succeeds");
            assert_eq!(report.shards, shards, "seed {seed}: shard count echoed");
            assert_eq!(
                report.shard_events.iter().sum::<u64>(),
                report.events_processed,
                "seed {seed}: per-shard events must sum to the total"
            );
            outcomes.push((shards, stream.hash, stream.events, report));
        }
        let (_, serial_hash, serial_events, serial) = &outcomes[0];
        for (shards, hash, events, sharded) in &outcomes[1..] {
            assert_eq!(
                serial_events, events,
                "seed {seed} shards {shards}: event counts differ"
            );
            assert_eq!(
                serial_hash, hash,
                "seed {seed} shards {shards}: event streams diverged"
            );
            assert_eq!(serial.events_processed, sharded.events_processed);
            assert_eq!(serial.packets_measured, sharded.packets_measured);
            assert_eq!(serial.packets_incomplete, sharded.packets_incomplete);
            assert_eq!(serial.throughput, sharded.throughput);
            assert_eq!(serial.latency.count(), sharded.latency.count());
            assert_eq!(serial.latency.mean(), sharded.latency.mean());
            assert_eq!(serial.latency.min(), sharded.latency.min());
            assert_eq!(serial.latency.max(), sharded.latency.max());
            assert!((serial.mean_hops - sharded.mean_hops).abs() == 0.0);
        }
        assert!(serial.packets_measured > 0, "seed {seed}: degenerate run");
    }
}

/// The VC mesh adds a second event population — credit returns — to the
/// sharded engine, and its row-band partition must keep data launches,
/// credit launches, and the atomic multicast fork in the same canonical
/// order. Multicast traffic under DPM exercises the fork path hardest.
#[test]
fn vcmesh_runs_are_identical_at_every_shard_count() {
    let phases = Phases::new(Duration::from_ns(80), Duration::from_ns(800));
    for seed in SEEDS {
        let mut outcomes = Vec::new();
        for shards in SHARDS {
            let config = VcMeshConfig::new(MeshSize::new(4, 4).expect("4x4 is valid"))
                .with_seed(seed)
                .with_mcast(McastScheme::Dpm)
                .with_shards(shards);
            let network = VcMeshNetwork::new(config).expect("4x4 VC mesh builds");
            let mut stream = Fingerprint::new();
            let report = network
                .run_with_observers(Benchmark::Multicast10, 0.1, phases, &mut [&mut stream])
                .expect("run succeeds");
            assert_eq!(report.shards, shards, "seed {seed}: shard count echoed");
            assert_eq!(
                report.shard_events.iter().sum::<u64>(),
                report.events_processed,
                "seed {seed}: per-shard events must sum to the total"
            );
            outcomes.push((shards, stream.hash, stream.events, report));
        }
        let (_, serial_hash, serial_events, serial) = &outcomes[0];
        for (shards, hash, events, sharded) in &outcomes[1..] {
            assert_eq!(
                serial_events, events,
                "seed {seed} shards {shards}: event counts differ"
            );
            assert_eq!(
                serial_hash, hash,
                "seed {seed} shards {shards}: event streams diverged"
            );
            assert_eq!(serial.events_processed, sharded.events_processed);
            assert_eq!(serial.packets_measured, sharded.packets_measured);
            assert_eq!(serial.packets_incomplete, sharded.packets_incomplete);
            assert_eq!(serial.throughput, sharded.throughput);
            assert_eq!(serial.latency.count(), sharded.latency.count());
            assert_eq!(serial.latency.mean(), sharded.latency.mean());
            assert_eq!(serial.latency.min(), sharded.latency.min());
            assert_eq!(serial.latency.max(), sharded.latency.max());
            assert_eq!(serial.link_traversals, sharded.link_traversals);
            assert_eq!(serial.vc_pushes, sharded.vc_pushes);
            assert_eq!(serial.vc_peak, sharded.vc_peak);
            assert!((serial.mean_hops - sharded.mean_hops).abs() == 0.0);
        }
        assert!(serial.packets_measured > 0, "seed {seed}: degenerate run");
    }
}

/// Fault injection must survive sharding too: the armed-fault summary is
/// accumulated per shard and folded back, and the delivery ledger the
/// oracle judges is rebuilt from the same merged stream.
#[test]
fn mot_fault_outcomes_are_identical_at_every_shard_count() {
    let net = Network::new(
        NetworkConfig::new(
            asynoc::MotSize::new(8).expect("valid"),
            Architecture::BasicHybridSpeculative,
        )
        .with_seed(17),
    )
    .expect("8x8 network builds");
    let plan = FaultPlan::random(17, 0.02, &net.fault_domain());
    let phases = Phases::new(Duration::from_ns(20), Duration::from_ns(160));
    let mut outcomes = Vec::new();
    for shards in SHARDS {
        let run = RunConfig::new(Benchmark::Multicast5, 0.2)
            .expect("positive rate")
            .with_phases(phases)
            .with_shards(shards);
        let outcome = run_mot_outcome(&net, &run, Some(&plan)).expect("faulted run succeeds");
        outcomes.push((shards, outcome));
    }
    let (_, serial) = &outcomes[0];
    for (shards, sharded) in &outcomes[1..] {
        assert_eq!(
            serial.deliveries, sharded.deliveries,
            "shards {shards}: delivery log diverged"
        );
        assert_eq!(serial.mean_latency_ps, sharded.mean_latency_ps);
        assert_eq!(serial.packets_incomplete, sharded.packets_incomplete);
        assert_eq!(serial.summary, sharded.summary, "shards {shards}");
        assert_eq!(serial.ledger.total(), sharded.ledger.total());
        assert_eq!(serial.fault_affected_trees, sharded.fault_affected_trees);
        assert_eq!(serial.broken_trees, sharded.broken_trees);
    }
}

#[test]
fn mesh_fault_outcomes_are_identical_at_every_shard_count() {
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(400));
    let mut outcomes = Vec::new();
    for shards in SHARDS {
        let net = MeshNetwork::new(
            MeshConfig::new(MeshSize::new(4, 4).expect("4x4 is valid"))
                .with_seed(23)
                .with_shards(shards),
        )
        .expect("4x4 mesh builds");
        let plan = FaultPlan::random(23, 0.02, &net.fault_domain());
        let outcome = run_mesh_outcome(&net, Benchmark::UniformRandom, 0.2, phases, Some(&plan))
            .expect("faulted run succeeds");
        outcomes.push((shards, outcome));
    }
    let (_, serial) = &outcomes[0];
    for (shards, sharded) in &outcomes[1..] {
        assert_eq!(
            serial.deliveries, sharded.deliveries,
            "shards {shards}: delivery log diverged"
        );
        assert_eq!(serial.mean_latency_ps, sharded.mean_latency_ps);
        assert_eq!(serial.packets_incomplete, sharded.packets_incomplete);
        assert_eq!(serial.summary, sharded.summary, "shards {shards}");
        assert_eq!(serial.ledger.total(), sharded.ledger.total());
    }
}

/// Stall faults on a VC mesh land on credit-return channels as well as
/// data channels, so the sharded fold must reproduce the exact fault
/// firing order too.
#[test]
fn vcmesh_fault_outcomes_are_identical_at_every_shard_count() {
    let phases = Phases::new(Duration::from_ns(40), Duration::from_ns(400));
    let mut outcomes = Vec::new();
    for shards in SHARDS {
        let net = VcMeshNetwork::new(
            VcMeshConfig::new(MeshSize::new(4, 4).expect("4x4 is valid"))
                .with_seed(23)
                .with_mcast(McastScheme::XyTree)
                .with_shards(shards),
        )
        .expect("4x4 VC mesh builds");
        let plan = FaultPlan::random(23, 0.02, &net.fault_domain());
        let outcome = run_vcmesh_outcome(&net, Benchmark::Multicast5, 0.2, phases, Some(&plan))
            .expect("faulted run succeeds");
        outcomes.push((shards, outcome));
    }
    let (_, serial) = &outcomes[0];
    for (shards, sharded) in &outcomes[1..] {
        assert_eq!(
            serial.deliveries, sharded.deliveries,
            "shards {shards}: delivery log diverged"
        );
        assert_eq!(serial.mean_latency_ps, sharded.mean_latency_ps);
        assert_eq!(serial.packets_incomplete, sharded.packets_incomplete);
        assert_eq!(serial.summary, sharded.summary, "shards {shards}");
        assert_eq!(serial.ledger.total(), sharded.ledger.total());
    }
}
