//! `asynoc-telemetry` — composable, substrate-agnostic observers over the
//! engine's event stream.
//!
//! The simulators (the `asynoc` MoT, the `asynoc-mesh` 2D mesh) expose one
//! instrumentation point: the engine's `Observer<N>` trait, called
//! synchronously for every inject/forward/drop/deliver. Everything in this
//! crate is an implementation of that trait (or an export format for what
//! one collected), generic over the substrate's node type `N`:
//!
//! - [`LatencyHistograms`] — log-bucketed latency distributions
//!   (p50/p90/p99/p999), overall, per destination, and per hop count.
//! - [`TimeSeries`] — fixed-width time bins of throughput, in-flight
//!   flits, and per-level channel busy-fraction.
//! - [`SpeculationWaste`] — the per-node waste ledger: throttles absorbed,
//!   redundant copies created, wasted wire/drop energy priced with the
//!   substrate's own constants (reconciles with its energy ledger).
//! - [`FaultLedger`] — per-class/per-site counters of injected fault
//!   events, including the logical ids of packets lost at a source
//!   (reconciles with the fault oracle and span-tree analysis).
//! - [`TraceCollector`] / [`render_ndjson`] — flat trace records with
//!   NDJSON import/export shared by both substrates.
//! - [`ChromeTraceObserver`] / [`ChromeTrace`] — Chrome trace-event
//!   (Perfetto-loadable) export, with a [`validate_chrome`] checker.
//! - [`StreamSink`] — bounded-memory live export: `asynoc-stream-v1`
//!   NDJSON windows/traces/watchpoints flushed per simulated-time
//!   window, with [`fold_stream`] reconstructing the batch
//!   `asynoc-metrics-v1` document byte for byte from a finished stream.
//!
//! Registering none of these costs nothing: the engine's observer slice is
//! simply empty (`benches/observer_overhead.rs` in `asynoc-bench` guards
//! this). Serialization is hand-rolled JSON ([`JsonValue`]) because the
//! workspace is dependency-free.

#![deny(missing_docs)]

pub mod chrome;
pub mod fault_ledger;
pub mod histogram;
pub mod json;
pub mod latency;
pub mod stream;
pub mod timeseries;
pub mod trace;
pub mod waste;

pub use chrome::{chrome_from_records, validate_chrome, ChromeTrace, ChromeTraceObserver};
pub use fault_ledger::FaultLedger;
pub use histogram::LogHistogram;
pub use json::{JsonError, JsonValue};
pub use latency::{LatencyHistograms, LatencyWindow};
pub use stream::{
    fold_stream, StreamConfig, StreamFoldError, StreamSink, StreamSummary, WatchConfig,
    STREAM_SCHEMA,
};
pub use timeseries::{Bin, LevelSpec, TimeSeries};
pub use trace::{
    parse_ndjson, parse_trace, parse_trace_lenient, render_ndjson, render_trace, TraceCollector,
    TraceMeta, TraceParseError, TraceRecord, TRACE_SCHEMA,
};
pub use waste::{NodeWaste, SpeculationWaste};

/// The metrics report's schema identifier (`schema` field of the JSON
/// document `asynoc metrics` emits). Bump when the report shape changes.
pub const METRICS_SCHEMA: &str = "asynoc-metrics-v1";
