//! Log-bucketed histograms for streaming latency percentiles.
//!
//! [`asynoc_stats::LatencyStats`] keeps every exact sample, which is right
//! for the paper's headline numbers but wrong for always-on telemetry: a
//! per-destination × per-hop-count matrix of sample vectors would be
//! unbounded. A [`LogHistogram`] instead keeps log-linear buckets — 32
//! sub-buckets per octave, so any reported quantile is within ~3% of the
//! exact value — in a few kilobytes regardless of sample count.

use crate::json::JsonValue;

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// A log-linear histogram of `u64` samples (picoseconds, in practice).
///
/// Values below 32 get exact unit buckets; above that, each octave
/// `[2^e, 2^(e+1))` is split into 32 equal sub-buckets. Quantiles report a
/// bucket's *upper* edge, so they never understate the tail.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

fn bucket_of(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let exponent = 63 - value.leading_zeros();
        let sub = (value >> (exponent - SUB_BITS)) - SUB;
        (SUB as u32 + (exponent - SUB_BITS) * SUB as u32) as usize + sub as usize
    }
}

fn bucket_high(bucket: usize) -> u64 {
    if bucket < SUB as usize {
        bucket as u64
    } else {
        let octave = (bucket as u64 - SUB) / SUB + SUB_BITS as u64;
        let sub = (bucket as u64 - SUB) % SUB;
        let width = 1u64 << (octave - SUB_BITS as u64);
        (1u64 << octave) + (sub + 1) * width - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = bucket_of(value);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, if any samples were recorded.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0..=1.0`) by nearest rank, reported as the
    /// containing bucket's upper edge (clamped to the exact max).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_high(bucket).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The lossless sparse form used by streamed window deltas: exact
    /// `n`/`min`/`max`, the sum as a decimal string (it is a `u128`,
    /// which JSON numbers cannot carry exactly), and only the non-zero
    /// buckets as `[bucket, count]` pairs. Round-tripping through
    /// [`LogHistogram::from_delta_json`] and [`LogHistogram::merge`]
    /// reproduces the batch histogram bit-for-bit — the foundation of
    /// the stream fold's byte-identity guarantee.
    #[must_use]
    pub fn to_delta_json(&self) -> JsonValue {
        let buckets: Vec<JsonValue> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(bucket, &n)| {
                JsonValue::Array(vec![JsonValue::uint(bucket as u64), JsonValue::uint(n)])
            })
            .collect();
        JsonValue::Object(vec![
            ("n".to_string(), JsonValue::uint(self.count)),
            ("min".to_string(), JsonValue::uint(self.min)),
            ("max".to_string(), JsonValue::uint(self.max)),
            ("sum".to_string(), JsonValue::str(self.sum.to_string())),
            ("b".to_string(), JsonValue::Array(buckets)),
        ])
    }

    /// Parses the sparse delta form back into a histogram. Returns
    /// `None` for a malformed document.
    #[must_use]
    pub fn from_delta_json(json: &JsonValue) -> Option<LogHistogram> {
        let count = json.get("n").and_then(JsonValue::as_f64)? as u64;
        let min = json.get("min").and_then(JsonValue::as_f64)? as u64;
        let max = json.get("max").and_then(JsonValue::as_f64)? as u64;
        let sum: u128 = json.get("sum").and_then(JsonValue::as_str)?.parse().ok()?;
        let mut counts = Vec::new();
        for pair in json.get("b").and_then(JsonValue::as_array)? {
            let pair = pair.as_array()?;
            let bucket = pair.first().and_then(JsonValue::as_f64)? as usize;
            let n = pair.get(1).and_then(JsonValue::as_f64)? as u64;
            if bucket >= counts.len() {
                counts.resize(bucket + 1, 0);
            }
            counts[bucket] = n;
        }
        Some(LogHistogram {
            counts,
            count,
            sum,
            min,
            max,
        })
    }

    /// The standard percentile summary as a JSON object
    /// (`count`, `mean_ps`, `min_ps`, `p50_ps`, `p90_ps`, `p99_ps`,
    /// `p999_ps`, `max_ps`).
    #[must_use]
    pub fn summary_json(&self) -> JsonValue {
        let quantile = |q: f64| self.quantile(q).map_or(JsonValue::Null, JsonValue::uint);
        JsonValue::Object(vec![
            ("count".to_string(), JsonValue::uint(self.count)),
            (
                "mean_ps".to_string(),
                self.mean().map_or(JsonValue::Null, JsonValue::Number),
            ),
            (
                "min_ps".to_string(),
                self.min().map_or(JsonValue::Null, JsonValue::uint),
            ),
            ("p50_ps".to_string(), quantile(0.50)),
            ("p90_ps".to_string(), quantile(0.90)),
            ("p99_ps".to_string(), quantile(0.99)),
            ("p999_ps".to_string(), quantile(0.999)),
            (
                "max_ps".to_string(),
                self.max().map_or(JsonValue::Null, JsonValue::uint),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_line() {
        // Every bucket's upper edge must map back into that bucket, and the
        // next value must map to the next bucket.
        for bucket in 0..1024 {
            let high = bucket_high(bucket);
            assert_eq!(bucket_of(high), bucket, "upper edge of {bucket}");
            assert_eq!(bucket_of(high + 1), bucket + 1, "start of {}", bucket + 1);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(31));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
    }

    #[test]
    fn quantiles_track_exact_within_sub_bucket_error() {
        // A deterministic spread over three decades.
        let mut samples: Vec<u64> = (1..=1000u64).map(|k| 40 + k * k).collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.quantile(q).expect("samples") as f64;
            let relative = (approx - exact as f64) / exact as f64;
            assert!(
                (-0.001..=0.04).contains(&relative),
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn mean_and_count_are_exact() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Some(200.0));
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let values_a = [3u64, 700, 52_000];
        let values_b = [9u64, 1_000_000];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.25, 0.5, 0.75, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn delta_json_round_trips_bit_for_bit() {
        let mut h = LogHistogram::new();
        for v in [3u64, 700, 700, 52_000, u64::from(u32::MAX) * 8] {
            h.record(v);
        }
        let text = h.to_delta_json().render();
        let parsed = JsonValue::parse(&text).expect("valid JSON");
        let back = LogHistogram::from_delta_json(&parsed).expect("well-formed delta");
        assert_eq!(back.count(), h.count());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.sum, h.sum);
        assert_eq!(back.counts, h.counts);
        // The summary (what the fold renders) is byte-identical.
        assert_eq!(back.summary_json().render(), h.summary_json().render());
    }

    #[test]
    fn delta_json_rejects_malformed_documents() {
        assert!(LogHistogram::from_delta_json(&JsonValue::Null).is_none());
        let missing_sum = JsonValue::Object(vec![
            ("n".to_string(), JsonValue::uint(1)),
            ("min".to_string(), JsonValue::uint(1)),
            ("max".to_string(), JsonValue::uint(1)),
        ]);
        assert!(LogHistogram::from_delta_json(&missing_sum).is_none());
    }

    #[test]
    fn empty_histogram_reports_nulls() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary_json().get("p50_ps"), Some(&JsonValue::Null));
        assert_eq!(h.summary_json().get("count"), Some(&JsonValue::Number(0.0)));
    }

    #[test]
    fn summary_json_has_the_schema_fields() {
        let mut h = LogHistogram::new();
        h.record(52);
        let json = h.summary_json();
        for key in [
            "count", "mean_ps", "min_ps", "p50_ps", "p90_ps", "p99_ps", "p999_ps", "max_ps",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json.get("p99_ps").and_then(JsonValue::as_f64), Some(52.0));
    }
}
