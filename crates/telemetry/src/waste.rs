//! The speculation-waste ledger.
//!
//! The paper's defense of local speculation is that its waste — redundant
//! copies a speculative node broadcasts and a non-speculative neighbor
//! throttles — is "confined to small local regions". This observer turns
//! that claim into a checkable report: for every node it counts the
//! throttles it absorbed and the redundant copies it created, and prices
//! them in femtojoules with the same constants the power model uses, so
//! the ledger's totals reconcile exactly with the `EnergyLedger`'s
//! `Dropped` category.

use std::collections::BTreeMap;

use asynoc_engine::{Observer, SimEvent};
use asynoc_kernel::Time;

use crate::json::JsonValue;

/// Renders a substrate node as a stable display label.
pub type LabelFn<N> = Box<dyn Fn(N) -> String>;
/// Maps a throttling node to the node that *created* the redundant copy
/// (its upstream parent); `None` attributes the copy to the throttler.
pub type CreatorFn<N> = Box<dyn Fn(N) -> Option<N>>;

/// Per-node waste counters.
#[derive(Clone, Debug, Default)]
pub struct NodeWaste {
    /// Redundant copies this node throttled (absorbed).
    pub throttles: u64,
    /// Redundant copies this node created (its speculative broadcasts
    /// that a downstream neighbor threw away).
    pub redundant_created: u64,
    /// Drop-acknowledge energy spent at this node, fJ.
    pub drop_fj: f64,
    /// Wire energy of the launches that carried doomed copies here, fJ.
    pub wasted_wire_fj: f64,
}

/// The speculation-waste ledger observer.
///
/// Gated on the measurement window (like the power observer), so its
/// totals are comparable with the run's `PowerReport`.
pub struct SpeculationWaste<N> {
    wire_fj: f64,
    drop_fj: f64,
    label_of: LabelFn<N>,
    creator_of: CreatorFn<N>,
    per_node: BTreeMap<String, NodeWaste>,
    injected: u64,
    forward_copies: u64,
}

impl<N: Copy> SpeculationWaste<N> {
    /// Creates a ledger pricing drops at `drop_fj` and wire launches at
    /// `wire_fj` (use the substrate's `TimingModel` constants so totals
    /// reconcile with its energy ledger).
    #[must_use]
    pub fn new(wire_fj: f64, drop_fj: f64, label_of: LabelFn<N>, creator_of: CreatorFn<N>) -> Self {
        SpeculationWaste {
            wire_fj,
            drop_fj,
            label_of,
            creator_of,
            per_node: BTreeMap::new(),
            injected: 0,
            forward_copies: 0,
        }
    }

    /// A ledger labelling nodes by their `Debug` form, with waste
    /// attributed to the throttling node itself.
    #[must_use]
    pub fn generic(wire_fj: f64, drop_fj: f64) -> Self
    where
        N: std::fmt::Debug,
    {
        SpeculationWaste::new(
            wire_fj,
            drop_fj,
            Box::new(|node: N| format!("{node:?}")),
            Box::new(|_| None),
        )
    }

    /// Per-node records, ordered by label.
    #[must_use]
    pub fn per_node(&self) -> &BTreeMap<String, NodeWaste> {
        &self.per_node
    }

    /// Total copies throttled in the window.
    #[must_use]
    pub fn total_throttles(&self) -> u64 {
        self.per_node.values().map(|w| w.throttles).sum()
    }

    /// Total drop-acknowledge energy, fJ. Reconciles with the energy
    /// ledger's `Dropped` category over the same window.
    #[must_use]
    pub fn total_drop_fj(&self) -> f64 {
        self.per_node.values().map(|w| w.drop_fj).sum()
    }

    /// Total wire energy spent carrying copies that were then thrown
    /// away, fJ.
    #[must_use]
    pub fn total_wasted_wire_fj(&self) -> f64 {
        self.per_node.values().map(|w| w.wasted_wire_fj).sum()
    }

    /// Total wire energy of every launch in the window (injections plus
    /// forwarded copies), fJ — a denominator for waste fractions.
    #[must_use]
    pub fn total_wire_fj(&self) -> f64 {
        (self.injected + self.forward_copies) as f64 * self.wire_fj
    }

    /// The waste section of the metrics report. `total_dynamic_fj` is the
    /// run's dynamic energy over the same window (from its power report);
    /// the headline `waste_fraction_of_dynamic` is wasted wire + drop
    /// energy over that total.
    #[must_use]
    pub fn to_json(&self, total_dynamic_fj: f64) -> JsonValue {
        let wasted = self.total_drop_fj() + self.total_wasted_wire_fj();
        let fraction = if total_dynamic_fj > 0.0 {
            wasted / total_dynamic_fj
        } else {
            0.0
        };
        let per_node: Vec<JsonValue> = self
            .per_node
            .iter()
            .map(|(label, w)| {
                JsonValue::Object(vec![
                    ("node".to_string(), JsonValue::str(label.clone())),
                    ("throttles".to_string(), JsonValue::uint(w.throttles)),
                    (
                        "redundant_copies_created".to_string(),
                        JsonValue::uint(w.redundant_created),
                    ),
                    ("drop_fj".to_string(), JsonValue::Number(w.drop_fj)),
                    (
                        "wasted_wire_fj".to_string(),
                        JsonValue::Number(w.wasted_wire_fj),
                    ),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "total_throttles".to_string(),
                JsonValue::uint(self.total_throttles()),
            ),
            (
                "total_drop_fj".to_string(),
                JsonValue::Number(self.total_drop_fj()),
            ),
            (
                "total_wasted_wire_fj".to_string(),
                JsonValue::Number(self.total_wasted_wire_fj()),
            ),
            (
                "total_wire_fj".to_string(),
                JsonValue::Number(self.total_wire_fj()),
            ),
            (
                "waste_fraction_of_dynamic".to_string(),
                JsonValue::Number(fraction),
            ),
            ("per_node".to_string(), JsonValue::Array(per_node)),
        ])
    }
}

impl<N: Copy> Observer<N> for SpeculationWaste<N> {
    fn on_event(&mut self, _at: Time, in_window: bool, event: &SimEvent<'_, N>) {
        if !in_window {
            return;
        }
        match event {
            SimEvent::Inject { .. } => self.injected += 1,
            SimEvent::Forward { copies, .. } => self.forward_copies += u64::from(*copies),
            SimEvent::Drop { node, .. } => {
                let label = (self.label_of)(*node);
                let record = self.per_node.entry(label).or_default();
                record.throttles += 1;
                record.drop_fj += self.drop_fj;
                record.wasted_wire_fj += self.wire_fj;
                let creator = (self.creator_of)(*node).unwrap_or(*node);
                self.per_node
                    .entry((self.label_of)(creator))
                    .or_default()
                    .redundant_created += 1;
            }
            SimEvent::Deliver { .. } | SimEvent::Fault { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use asynoc_kernel::Duration;
    use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader};

    fn flit() -> Flit {
        Flit::new(
            Arc::new(PacketDescriptor::new(
                PacketId::new(1),
                0,
                DestSet::unicast(1),
                RouteHeader::for_tree(8),
                1,
                Time::ZERO,
            )),
            0,
        )
    }

    #[test]
    fn drops_price_and_attribute_to_the_parent() {
        // Node 5's parent is node 2 (creator closure below).
        let mut ledger: SpeculationWaste<usize> = SpeculationWaste::new(
            200.0,
            400.0,
            Box::new(|n| format!("n{n}")),
            Box::new(|n: usize| (n > 0).then(|| (n - 1) / 2)),
        );
        let f = flit();
        for _ in 0..3 {
            ledger.on_event(
                Time::from_ps(10),
                true,
                &SimEvent::Drop {
                    node: 5usize,
                    flit: &f,
                    busy: Duration::from_ps(80),
                },
            );
        }
        assert_eq!(ledger.total_throttles(), 3);
        assert_eq!(ledger.per_node()["n5"].throttles, 3);
        assert_eq!(ledger.per_node()["n5"].redundant_created, 0);
        assert_eq!(ledger.per_node()["n2"].redundant_created, 3);
        assert!((ledger.total_drop_fj() - 1200.0).abs() < 1e-9);
        assert!((ledger.total_wasted_wire_fj() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn warmup_events_are_ignored() {
        let mut ledger: SpeculationWaste<usize> = SpeculationWaste::generic(200.0, 400.0);
        let f = flit();
        ledger.on_event(
            Time::from_ps(10),
            false,
            &SimEvent::Drop {
                node: 1usize,
                flit: &f,
                busy: Duration::from_ps(80),
            },
        );
        assert_eq!(ledger.total_throttles(), 0);
        assert!(ledger.per_node().is_empty());
    }

    #[test]
    fn wire_total_counts_injections_and_copies() {
        let mut ledger: SpeculationWaste<usize> = SpeculationWaste::generic(200.0, 400.0);
        let f = flit();
        ledger.on_event(
            Time::from_ps(1),
            true,
            &SimEvent::Inject {
                source: 0,
                flit: &f,
            },
        );
        ledger.on_event(
            Time::from_ps(2),
            true,
            &SimEvent::Forward {
                node: 0usize,
                flit: &f,
                info: asynoc_engine::ForwardInfo::Arbitrated { input: 0 },
                copies: 2,
                busy: Duration::from_ps(52),
            },
        );
        assert!((ledger.total_wire_fj() - 3.0 * 200.0).abs() < 1e-9);
    }

    #[test]
    fn json_totals_match_accessors() {
        let mut ledger: SpeculationWaste<usize> = SpeculationWaste::generic(200.0, 400.0);
        let f = flit();
        ledger.on_event(
            Time::from_ps(10),
            true,
            &SimEvent::Drop {
                node: 3usize,
                flit: &f,
                busy: Duration::from_ps(80),
            },
        );
        let json = ledger.to_json(6000.0);
        assert_eq!(
            json.get("total_drop_fj").and_then(JsonValue::as_f64),
            Some(400.0)
        );
        // (400 drop + 200 wasted wire) / 6000 dynamic.
        assert!(
            (json
                .get("waste_fraction_of_dynamic")
                .and_then(JsonValue::as_f64)
                .unwrap()
                - 0.1)
                .abs()
                < 1e-12
        );
        let per_node = json.get("per_node").and_then(JsonValue::as_array).unwrap();
        assert_eq!(per_node.len(), 1);
        assert_eq!(
            per_node[0].get("node").and_then(JsonValue::as_str),
            Some("3")
        );
    }
}
