//! The fault ledger.
//!
//! The conformance oracle's first guarantee is that nothing injected is
//! ever *silent*: every fault hook the engine fires lands in this
//! ledger, and every packet discarded at a source is recorded by
//! logical id so the destination-multiset comparison and the span-tree
//! analysis can reconcile exactly with it. The ledger mirrors
//! [`SpeculationWaste`](crate::SpeculationWaste) in shape (per-site
//! counters, JSON report section) but is *ungated* by the measurement
//! window — a fault during warmup still corrupts state, so it must
//! still be accounted.

use std::collections::BTreeMap;

use asynoc_engine::{Observer, SimEvent};
use asynoc_kernel::{FaultClass, Time};

use crate::json::JsonValue;

/// Counts every fault event of a run, by class and by site.
///
/// Substrate-agnostic: the engine's fault events carry plain site
/// indices, labelled here exactly as the trace collector labels them
/// (`ch*` for stalls, `node*` for symbol overrides, `src*` for source
/// drops), so ledger rows join against trace records.
#[derive(Clone, Debug, Default)]
pub struct FaultLedger {
    by_class: [u64; FaultClass::ALL.len()],
    per_site: BTreeMap<String, u64>,
    lost_packets: Vec<u64>,
}

impl FaultLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        FaultLedger::default()
    }

    /// Events recorded for one class.
    #[must_use]
    pub fn count(&self, class: FaultClass) -> u64 {
        let index = FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class is in ALL");
        self.by_class[index]
    }

    /// Total fault events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_class.iter().sum()
    }

    /// Packets discarded at a source ([`FaultClass::PacketLost`]).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.count(FaultClass::PacketLost)
    }

    /// Logical ids of the discarded packets, in event order.
    #[must_use]
    pub fn lost_packets(&self) -> &[u64] {
        &self.lost_packets
    }

    /// Per-site event counts, keyed `"<site>:<class>"` (e.g.
    /// `"ch12:link-stall"`), ordered by key.
    #[must_use]
    pub fn per_site(&self) -> &BTreeMap<String, u64> {
        &self.per_site
    }

    /// The ledger as a report section.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let by_class: Vec<(String, JsonValue)> = FaultClass::ALL
            .iter()
            .map(|&class| {
                (
                    class.label().to_string(),
                    JsonValue::uint(self.count(class)),
                )
            })
            .collect();
        let per_site: Vec<JsonValue> = self
            .per_site
            .iter()
            .map(|(key, &count)| {
                JsonValue::Object(vec![
                    ("site".to_string(), JsonValue::str(key.clone())),
                    ("count".to_string(), JsonValue::uint(count)),
                ])
            })
            .collect();
        let lost: Vec<JsonValue> = self
            .lost_packets
            .iter()
            .map(|&p| JsonValue::uint(p))
            .collect();
        JsonValue::Object(vec![
            ("total".to_string(), JsonValue::uint(self.total())),
            ("by_class".to_string(), JsonValue::Object(by_class)),
            ("lost_packets".to_string(), JsonValue::Array(lost)),
            ("per_site".to_string(), JsonValue::Array(per_site)),
        ])
    }

    fn site_label(class: FaultClass, site: usize) -> String {
        match class {
            FaultClass::LinkStall => format!("ch{site}"),
            FaultClass::SymbolCorrupt | FaultClass::StuckBroadcast => format!("node{site}"),
            FaultClass::FlitDrop | FaultClass::PacketLost => format!("src{site}"),
        }
    }
}

impl<N> Observer<N> for FaultLedger {
    fn on_event(&mut self, _at: Time, _in_window: bool, event: &SimEvent<'_, N>) {
        let SimEvent::Fault { class, site, flit } = event else {
            return;
        };
        let index = FaultClass::ALL
            .iter()
            .position(|c| c == class)
            .expect("class is in ALL");
        self.by_class[index] += 1;
        let key = format!("{}:{}", Self::site_label(*class, *site), class.label());
        *self.per_site.entry(key).or_default() += 1;
        if *class == FaultClass::PacketLost {
            self.lost_packets
                .push(flit.descriptor().logical_id().as_u64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader};

    fn flit(id: u64) -> Flit {
        Flit::new(
            Arc::new(PacketDescriptor::new(
                PacketId::new(id),
                0,
                DestSet::unicast(1),
                RouteHeader::for_tree(8),
                1,
                Time::ZERO,
            )),
            0,
        )
    }

    #[test]
    fn counts_by_class_and_site() {
        let mut ledger = FaultLedger::new();
        let f = flit(7);
        let events: [SimEvent<'_, usize>; 3] = [
            SimEvent::Fault {
                class: FaultClass::LinkStall,
                site: 4,
                flit: &f,
            },
            SimEvent::Fault {
                class: FaultClass::LinkStall,
                site: 4,
                flit: &f,
            },
            SimEvent::Fault {
                class: FaultClass::SymbolCorrupt,
                site: 9,
                flit: &f,
            },
        ];
        for event in &events {
            ledger.on_event(Time::ZERO, false, event);
        }
        // Ungated: all three were outside the window yet counted.
        assert_eq!(ledger.total(), 3);
        assert_eq!(ledger.count(FaultClass::LinkStall), 2);
        assert_eq!(ledger.per_site().get("ch4:link-stall"), Some(&2));
        assert_eq!(ledger.per_site().get("node9:symbol-corrupt"), Some(&1));
        assert_eq!(ledger.lost(), 0);
    }

    #[test]
    fn lost_packets_are_recorded_by_logical_id() {
        let mut ledger = FaultLedger::new();
        let f = flit(42);
        let event: SimEvent<'_, usize> = SimEvent::Fault {
            class: FaultClass::PacketLost,
            site: 0,
            flit: &f,
        };
        ledger.on_event(Time::ZERO, true, &event);
        assert_eq!(ledger.lost(), 1);
        assert_eq!(ledger.lost_packets(), &[42]);
        let json = ledger.to_json().render();
        assert!(json.contains("packet-lost"));
        assert!(json.contains("src0:packet-lost"));
    }

    #[test]
    fn non_fault_events_are_ignored() {
        let mut ledger = FaultLedger::new();
        let f = flit(1);
        let event: SimEvent<'_, usize> = SimEvent::Inject {
            source: 0,
            flit: &f,
        };
        ledger.on_event(Time::ZERO, true, &event);
        assert_eq!(ledger.total(), 0);
    }
}
