//! Per-destination and per-hop-count latency distributions.

use std::collections::{BTreeMap, HashMap};

use asynoc_engine::{Observer, SimEvent};
use asynoc_kernel::Time;
use asynoc_stats::Phases;

use crate::histogram::LogHistogram;
use crate::json::JsonValue;

/// Streams header-delivery latencies into log-bucketed histograms:
/// one overall, one per destination, one per hop count.
///
/// The sample is *per delivered header copy* (creation → this copy's
/// arrival), gated on the packet being created inside the measurement
/// window — the same population the engine's `LatencyStats` draws from,
/// but broken out by where the copy landed and how many node traversals
/// its packet's header needed. Hop count is the number of `Forward`
/// events the physical packet's header generated: the exact path length
/// for unicast traffic, the replication-tree edge count for in-network
/// multicast.
pub struct LatencyHistograms {
    phases: Phases,
    overall: LogHistogram,
    per_dest: Vec<LogHistogram>,
    per_hops: BTreeMap<u32, LogHistogram>,
    header_forwards: HashMap<u64, u32>,
}

impl LatencyHistograms {
    /// An empty collector for a network with `endpoints` destinations,
    /// sampling packets created inside `phases`' measurement window.
    #[must_use]
    pub fn new(phases: Phases, endpoints: usize) -> Self {
        LatencyHistograms {
            phases,
            overall: LogHistogram::new(),
            per_dest: vec![LogHistogram::new(); endpoints],
            per_hops: BTreeMap::new(),
            header_forwards: HashMap::new(),
        }
    }

    /// The all-destinations histogram.
    #[must_use]
    pub fn overall(&self) -> &LogHistogram {
        &self.overall
    }

    /// Per-destination histograms, indexed by endpoint.
    #[must_use]
    pub fn per_dest(&self) -> &[LogHistogram] {
        &self.per_dest
    }

    /// Per-hop-count histograms.
    #[must_use]
    pub fn per_hops(&self) -> &BTreeMap<u32, LogHistogram> {
        &self.per_hops
    }

    /// The full latency section of the metrics report: the overall
    /// percentile summary plus `per_dest` / `per_hops` breakdowns
    /// (destinations and hop counts without samples are omitted).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let JsonValue::Object(mut members) = self.overall.summary_json() else {
            unreachable!("summary_json returns an object");
        };
        let per_dest: Vec<JsonValue> = self
            .per_dest
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(dest, h)| {
                let JsonValue::Object(mut fields) = h.summary_json() else {
                    unreachable!("summary_json returns an object");
                };
                fields.insert(0, ("dest".to_string(), JsonValue::uint(dest as u64)));
                JsonValue::Object(fields)
            })
            .collect();
        let per_hops: Vec<JsonValue> = self
            .per_hops
            .iter()
            .map(|(hops, h)| {
                let JsonValue::Object(mut fields) = h.summary_json() else {
                    unreachable!("summary_json returns an object");
                };
                fields.insert(0, ("hops".to_string(), JsonValue::uint(u64::from(*hops))));
                JsonValue::Object(fields)
            })
            .collect();
        members.push(("per_dest".to_string(), JsonValue::Array(per_dest)));
        members.push(("per_hops".to_string(), JsonValue::Array(per_hops)));
        JsonValue::Object(members)
    }
}

impl<N> Observer<N> for LatencyHistograms {
    fn on_event(&mut self, at: Time, _in_window: bool, event: &SimEvent<'_, N>) {
        match event {
            SimEvent::Forward { flit, .. } if flit.kind().is_header() => {
                *self
                    .header_forwards
                    .entry(flit.descriptor().id().as_u64())
                    .or_insert(0) += 1;
            }
            SimEvent::Deliver { dest, flit } if flit.kind().is_header() => {
                let created = flit.descriptor().created_at();
                if !self.phases.in_measurement(created) {
                    return;
                }
                let latency = at.saturating_since(created).as_ps();
                self.overall.record(latency);
                if let Some(h) = self.per_dest.get_mut(*dest) {
                    h.record(latency);
                }
                let hops = self
                    .header_forwards
                    .get(&flit.descriptor().id().as_u64())
                    .copied()
                    .unwrap_or(0);
                self.per_hops.entry(hops).or_default().record(latency);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use asynoc_kernel::Duration;
    use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader};

    fn header(id: u64, dest: usize, created: Time) -> Flit {
        Flit::new(
            Arc::new(PacketDescriptor::new(
                PacketId::new(id),
                0,
                DestSet::unicast(dest),
                RouteHeader::for_tree(8),
                2,
                created,
            )),
            0,
        )
    }

    fn phases() -> Phases {
        Phases::new(Duration::from_ns(100), Duration::from_ns(900))
    }

    #[test]
    fn samples_only_window_created_packets() {
        let mut collector = LatencyHistograms::new(phases(), 8);
        let early = header(1, 3, Time::from_ps(50_000)); // warmup
        let inside = header(2, 3, Time::from_ps(200_000)); // window
        for (flit, at) in [(&early, 60_000u64), (&inside, 200_700)] {
            let event: SimEvent<'_, usize> = SimEvent::Deliver { dest: 3, flit };
            collector.on_event(Time::from_ps(at), true, &event);
        }
        assert_eq!(collector.overall().count(), 1);
        assert_eq!(collector.overall().max(), Some(700));
        assert_eq!(collector.per_dest()[3].count(), 1);
        assert_eq!(collector.per_dest()[0].count(), 0);
    }

    #[test]
    fn hop_counts_key_the_breakdown() {
        let mut collector = LatencyHistograms::new(phases(), 8);
        let flit = header(7, 1, Time::from_ps(150_000));
        for k in 0..3u64 {
            let event: SimEvent<'_, usize> = SimEvent::Forward {
                node: 0,
                flit: &flit,
                info: asynoc_engine::ForwardInfo::Arbitrated { input: 0 },
                copies: 1,
                busy: Duration::from_ps(10),
            };
            collector.on_event(Time::from_ps(150_100 + k), true, &event);
        }
        let deliver: SimEvent<'_, usize> = SimEvent::Deliver {
            dest: 1,
            flit: &flit,
        };
        collector.on_event(Time::from_ps(151_000), true, &deliver);
        assert_eq!(collector.per_hops().len(), 1);
        assert_eq!(collector.per_hops()[&3].count(), 1);
    }

    #[test]
    fn json_skips_empty_destinations() {
        let mut collector = LatencyHistograms::new(phases(), 4);
        let flit = header(1, 2, Time::from_ps(150_000));
        let deliver: SimEvent<'_, usize> = SimEvent::Deliver {
            dest: 2,
            flit: &flit,
        };
        collector.on_event(Time::from_ps(150_052), true, &deliver);
        let json = collector.to_json();
        let per_dest = json.get("per_dest").and_then(JsonValue::as_array).unwrap();
        assert_eq!(per_dest.len(), 1);
        assert_eq!(
            per_dest[0].get("dest").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(json.get("p50_ps").and_then(JsonValue::as_f64), Some(52.0));
    }
}
