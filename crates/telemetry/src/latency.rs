//! Per-destination and per-hop-count latency distributions.

use std::collections::{BTreeMap, HashMap};

use asynoc_engine::{Observer, SimEvent};
use asynoc_kernel::Time;
use asynoc_stats::Phases;

use crate::histogram::LogHistogram;
use crate::json::JsonValue;

/// Streams header-delivery latencies into log-bucketed histograms:
/// one overall, one per destination, one per hop count.
///
/// The sample is *per delivered header copy* (creation → this copy's
/// arrival), gated on the packet being created inside the measurement
/// window — the same population the engine's `LatencyStats` draws from,
/// but broken out by where the copy landed and how many node traversals
/// its packet's header needed. Hop count is the number of `Forward`
/// events the physical packet's header generated: the exact path length
/// for unicast traffic, the replication-tree edge count for in-network
/// multicast.
pub struct LatencyHistograms {
    phases: Phases,
    overall: LogHistogram,
    per_dest: Vec<LogHistogram>,
    per_hops: BTreeMap<u32, LogHistogram>,
    header_forwards: HashMap<u64, u32>,
}

impl LatencyHistograms {
    /// An empty collector for a network with `endpoints` destinations,
    /// sampling packets created inside `phases`' measurement window.
    #[must_use]
    pub fn new(phases: Phases, endpoints: usize) -> Self {
        LatencyHistograms {
            phases,
            overall: LogHistogram::new(),
            per_dest: vec![LogHistogram::new(); endpoints],
            per_hops: BTreeMap::new(),
            header_forwards: HashMap::new(),
        }
    }

    /// A collector used purely as a fold accumulator: it never observes
    /// events (so the phase gate is irrelevant), only
    /// [`LatencyHistograms::absorb`]s drained windows and renders
    /// [`LatencyHistograms::to_json`].
    #[must_use]
    pub fn accumulator(endpoints: usize) -> Self {
        LatencyHistograms::new(
            Phases::new(
                asynoc_kernel::Duration::ZERO,
                asynoc_kernel::Duration::from_ps(1),
            ),
            endpoints,
        )
    }

    /// The all-destinations histogram.
    #[must_use]
    pub fn overall(&self) -> &LogHistogram {
        &self.overall
    }

    /// Per-destination histograms, indexed by endpoint.
    #[must_use]
    pub fn per_dest(&self) -> &[LogHistogram] {
        &self.per_dest
    }

    /// Per-hop-count histograms.
    #[must_use]
    pub fn per_hops(&self) -> &BTreeMap<u32, LogHistogram> {
        &self.per_hops
    }

    /// Number of destination slots the collector was built with.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.per_dest.len()
    }

    /// Drains the histograms accumulated since the last drain into a
    /// [`LatencyWindow`] delta, leaving the collector empty but keeping
    /// its persistent hop-count bookkeeping. Streaming sinks call this
    /// at every window boundary; the drained deltas [`absorb`]ed back
    /// in order reproduce the batch collector exactly (histogram merge
    /// is associative and lossless).
    ///
    /// [`absorb`]: LatencyHistograms::absorb
    #[must_use]
    pub fn drain_window(&mut self) -> LatencyWindow {
        let overall = std::mem::take(&mut self.overall);
        let per_dest: Vec<(u64, LogHistogram)> = self
            .per_dest
            .iter_mut()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(dest, h)| (dest as u64, std::mem::take(h)))
            .collect();
        let per_hops: Vec<(u32, LogHistogram)> =
            std::mem::take(&mut self.per_hops).into_iter().collect();
        LatencyWindow {
            overall,
            per_dest,
            per_hops,
        }
    }

    /// Folds a drained window delta back into the collector (the
    /// inverse of [`LatencyHistograms::drain_window`], used by the
    /// stream fold). Destinations outside the collector's range are
    /// ignored.
    pub fn absorb(&mut self, window: &LatencyWindow) {
        self.overall.merge(&window.overall);
        for (dest, h) in &window.per_dest {
            if let Some(mine) = self.per_dest.get_mut(*dest as usize) {
                mine.merge(h);
            }
        }
        for (hops, h) in &window.per_hops {
            self.per_hops.entry(*hops).or_default().merge(h);
        }
    }

    /// Releases the hop-count bookkeeping of a completed packet. The
    /// batch path never needs this (the map is dropped with the
    /// collector); streaming sinks call it when a packet's last copy
    /// leaves the network so that live memory stays proportional to
    /// in-flight traffic, not run length. Behavior-neutral: a finished
    /// packet generates no further events.
    pub fn forget_packet(&mut self, packet: u64) {
        self.header_forwards.remove(&packet);
    }

    /// The full latency section of the metrics report: the overall
    /// percentile summary plus `per_dest` / `per_hops` breakdowns
    /// (destinations and hop counts without samples are omitted).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let JsonValue::Object(mut members) = self.overall.summary_json() else {
            unreachable!("summary_json returns an object");
        };
        let per_dest: Vec<JsonValue> = self
            .per_dest
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(dest, h)| {
                let JsonValue::Object(mut fields) = h.summary_json() else {
                    unreachable!("summary_json returns an object");
                };
                fields.insert(0, ("dest".to_string(), JsonValue::uint(dest as u64)));
                JsonValue::Object(fields)
            })
            .collect();
        let per_hops: Vec<JsonValue> = self
            .per_hops
            .iter()
            .map(|(hops, h)| {
                let JsonValue::Object(mut fields) = h.summary_json() else {
                    unreachable!("summary_json returns an object");
                };
                fields.insert(0, ("hops".to_string(), JsonValue::uint(u64::from(*hops))));
                JsonValue::Object(fields)
            })
            .collect();
        members.push(("per_dest".to_string(), JsonValue::Array(per_dest)));
        members.push(("per_hops".to_string(), JsonValue::Array(per_hops)));
        JsonValue::Object(members)
    }
}

/// One window's worth of drained latency histograms: the overall delta
/// plus only the destinations and hop counts that saw samples.
///
/// Serialized into `window` records of the `asynoc-stream-v1` NDJSON
/// stream; parsing and [`LatencyHistograms::absorb`]ing every window of
/// a run rebuilds the batch latency section byte-for-byte.
#[derive(Debug, Default)]
pub struct LatencyWindow {
    /// Delta of the all-destinations histogram.
    pub overall: LogHistogram,
    /// Sparse per-destination deltas (`(dest, histogram)`).
    pub per_dest: Vec<(u64, LogHistogram)>,
    /// Sparse per-hop-count deltas (`(hops, histogram)`).
    pub per_hops: Vec<(u32, LogHistogram)>,
}

impl LatencyWindow {
    /// Returns `true` if the window recorded no samples at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overall.count() == 0
    }

    /// The window's JSON form (sparse histograms keyed by destination
    /// and hop count).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let keyed = |key: &str, id: u64, h: &LogHistogram| {
            JsonValue::Object(vec![
                (key.to_string(), JsonValue::uint(id)),
                ("h".to_string(), h.to_delta_json()),
            ])
        };
        JsonValue::Object(vec![
            ("overall".to_string(), self.overall.to_delta_json()),
            (
                "per_dest".to_string(),
                JsonValue::Array(
                    self.per_dest
                        .iter()
                        .map(|(dest, h)| keyed("dest", *dest, h))
                        .collect(),
                ),
            ),
            (
                "per_hops".to_string(),
                JsonValue::Array(
                    self.per_hops
                        .iter()
                        .map(|(hops, h)| keyed("hops", u64::from(*hops), h))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the JSON form back; `None` for a malformed document.
    #[must_use]
    pub fn from_json(json: &JsonValue) -> Option<LatencyWindow> {
        let overall = LogHistogram::from_delta_json(json.get("overall")?)?;
        let mut per_dest = Vec::new();
        for entry in json.get("per_dest").and_then(JsonValue::as_array)? {
            let dest = entry.get("dest").and_then(JsonValue::as_f64)? as u64;
            per_dest.push((dest, LogHistogram::from_delta_json(entry.get("h")?)?));
        }
        let mut per_hops = Vec::new();
        for entry in json.get("per_hops").and_then(JsonValue::as_array)? {
            let hops = entry.get("hops").and_then(JsonValue::as_f64)? as u32;
            per_hops.push((hops, LogHistogram::from_delta_json(entry.get("h")?)?));
        }
        Some(LatencyWindow {
            overall,
            per_dest,
            per_hops,
        })
    }
}

impl<N> Observer<N> for LatencyHistograms {
    fn on_event(&mut self, at: Time, _in_window: bool, event: &SimEvent<'_, N>) {
        match event {
            SimEvent::Forward { flit, .. } if flit.kind().is_header() => {
                *self
                    .header_forwards
                    .entry(flit.descriptor().id().as_u64())
                    .or_insert(0) += 1;
            }
            SimEvent::Deliver { dest, flit } if flit.kind().is_header() => {
                let created = flit.descriptor().created_at();
                if !self.phases.in_measurement(created) {
                    return;
                }
                let latency = at.saturating_since(created).as_ps();
                self.overall.record(latency);
                if let Some(h) = self.per_dest.get_mut(*dest) {
                    h.record(latency);
                }
                let hops = self
                    .header_forwards
                    .get(&flit.descriptor().id().as_u64())
                    .copied()
                    .unwrap_or(0);
                self.per_hops.entry(hops).or_default().record(latency);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use asynoc_kernel::Duration;
    use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader};

    fn header(id: u64, dest: usize, created: Time) -> Flit {
        Flit::new(
            Arc::new(PacketDescriptor::new(
                PacketId::new(id),
                0,
                DestSet::unicast(dest),
                RouteHeader::for_tree(8),
                2,
                created,
            )),
            0,
        )
    }

    fn phases() -> Phases {
        Phases::new(Duration::from_ns(100), Duration::from_ns(900))
    }

    #[test]
    fn samples_only_window_created_packets() {
        let mut collector = LatencyHistograms::new(phases(), 8);
        let early = header(1, 3, Time::from_ps(50_000)); // warmup
        let inside = header(2, 3, Time::from_ps(200_000)); // window
        for (flit, at) in [(&early, 60_000u64), (&inside, 200_700)] {
            let event: SimEvent<'_, usize> = SimEvent::Deliver { dest: 3, flit };
            collector.on_event(Time::from_ps(at), true, &event);
        }
        assert_eq!(collector.overall().count(), 1);
        assert_eq!(collector.overall().max(), Some(700));
        assert_eq!(collector.per_dest()[3].count(), 1);
        assert_eq!(collector.per_dest()[0].count(), 0);
    }

    #[test]
    fn hop_counts_key_the_breakdown() {
        let mut collector = LatencyHistograms::new(phases(), 8);
        let flit = header(7, 1, Time::from_ps(150_000));
        for k in 0..3u64 {
            let event: SimEvent<'_, usize> = SimEvent::Forward {
                node: 0,
                flit: &flit,
                info: asynoc_engine::ForwardInfo::Arbitrated { input: 0 },
                copies: 1,
                busy: Duration::from_ps(10),
            };
            collector.on_event(Time::from_ps(150_100 + k), true, &event);
        }
        let deliver: SimEvent<'_, usize> = SimEvent::Deliver {
            dest: 1,
            flit: &flit,
        };
        collector.on_event(Time::from_ps(151_000), true, &deliver);
        assert_eq!(collector.per_hops().len(), 1);
        assert_eq!(collector.per_hops()[&3].count(), 1);
    }

    #[test]
    fn drained_windows_absorb_back_to_the_batch_document() {
        // Run the same event stream through a batch collector and a
        // windowed one (drained every few events); absorbing the drained
        // windows into an accumulator must reproduce the batch JSON
        // byte-for-byte.
        let mut batch = LatencyHistograms::new(phases(), 8);
        let mut windowed = LatencyHistograms::new(phases(), 8);
        let mut accumulator = LatencyHistograms::accumulator(8);
        let mut drained = Vec::new();
        for k in 0..40u64 {
            let flit = header(k, (k % 8) as usize, Time::from_ps(150_000 + k * 17));
            let deliver: SimEvent<'_, usize> = SimEvent::Deliver {
                dest: (k % 8) as usize,
                flit: &flit,
            };
            let at = Time::from_ps(150_000 + k * 17 + 311 + (k % 5) * 37);
            batch.on_event(at, true, &deliver);
            windowed.on_event(at, true, &deliver);
            if k % 7 == 6 {
                drained.push(windowed.drain_window());
            }
        }
        drained.push(windowed.drain_window());
        for window in &drained {
            // Serde round-trip on the way, as the stream would.
            let parsed = JsonValue::parse(&window.to_json().render()).expect("valid JSON");
            let back = LatencyWindow::from_json(&parsed).expect("well-formed window");
            accumulator.absorb(&back);
        }
        assert_eq!(accumulator.to_json().render(), batch.to_json().render());
    }

    #[test]
    fn forget_packet_releases_hop_bookkeeping() {
        let mut collector = LatencyHistograms::new(phases(), 8);
        let flit = header(9, 1, Time::from_ps(150_000));
        let forward: SimEvent<'_, usize> = SimEvent::Forward {
            node: 0,
            flit: &flit,
            info: asynoc_engine::ForwardInfo::Arbitrated { input: 0 },
            copies: 1,
            busy: Duration::from_ps(10),
        };
        collector.on_event(Time::from_ps(150_100), true, &forward);
        assert_eq!(collector.header_forwards.len(), 1);
        collector.forget_packet(9);
        assert!(collector.header_forwards.is_empty());
    }

    #[test]
    fn json_skips_empty_destinations() {
        let mut collector = LatencyHistograms::new(phases(), 4);
        let flit = header(1, 2, Time::from_ps(150_000));
        let deliver: SimEvent<'_, usize> = SimEvent::Deliver {
            dest: 2,
            flit: &flit,
        };
        collector.on_event(Time::from_ps(150_052), true, &deliver);
        let json = collector.to_json();
        let per_dest = json.get("per_dest").and_then(JsonValue::as_array).unwrap();
        assert_eq!(per_dest.len(), 1);
        assert_eq!(
            per_dest[0].get("dest").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(json.get("p50_ps").and_then(JsonValue::as_f64), Some(52.0));
    }
}
