//! Windowed time-series sampling of throughput, in-flight flits, and
//! per-level channel busy-fraction.
//!
//! Saturation onset becomes *observable*: instead of inferring a knee from
//! bisection over whole-window averages, the time-series shows injected vs
//! delivered rates diverging and in-flight flit count climbing, bin by bin.

use asynoc_engine::{Observer, SimEvent};
use asynoc_kernel::{Duration, Time};

use crate::json::JsonValue;

/// Maps a substrate node to one of the named level groups (`None` leaves
/// the event out of the busy-fraction accounting).
pub type LevelFn<N> = Box<dyn Fn(N) -> Option<usize>>;

/// One named group of nodes whose busy time is aggregated per bin —
/// a tree level on the MoT, the whole router array on the mesh.
#[derive(Clone, Debug)]
pub struct LevelSpec {
    /// Display name, e.g. `"fanout-L1"`.
    pub label: String,
    /// Number of nodes in the group (the busy-fraction denominator).
    pub nodes: usize,
}

/// Counters for one time bin.
#[derive(Clone, Debug, Default)]
pub struct Bin {
    /// Flits injected by sources during this bin.
    pub injected: u64,
    /// Flits consumed by sinks during this bin.
    pub delivered: u64,
    /// Redundant copies throttled during this bin.
    pub dropped: u64,
    /// Node firings (forward events) during this bin.
    pub forwards: u64,
    /// Flit copies in the network at the end of the bin.
    pub in_flight: i64,
    busy_ps: Vec<u64>,
}

/// A substrate-agnostic time-series observer with fixed-width bins.
///
/// All phases are recorded (the warmup ramp and post-window drain are part
/// of the story); each event's node-busy duration is attributed to the bin
/// containing the event instant.
pub struct TimeSeries<N> {
    bin: Duration,
    levels: Vec<LevelSpec>,
    level_of: LevelFn<N>,
    bins: Vec<Bin>,
    in_flight: i64,
    cap: usize,
}

impl<N: Copy> TimeSeries<N> {
    /// Creates a time-series with `bin`-wide buckets over the given level
    /// groups. `level_of` assigns each firing node to a group.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    #[must_use]
    pub fn new(bin: Duration, levels: Vec<LevelSpec>, level_of: LevelFn<N>) -> Self {
        assert!(!bin.is_zero(), "bin width must be non-zero");
        TimeSeries {
            bin,
            levels,
            level_of,
            bins: Vec::new(),
            in_flight: 0,
            cap: 1 << 16,
        }
    }

    /// A single-group series covering `nodes` interchangeable nodes —
    /// the right shape for the mesh, where every router is one level.
    #[must_use]
    pub fn single_level(bin: Duration, label: &str, nodes: usize) -> Self {
        TimeSeries::new(
            bin,
            vec![LevelSpec {
                label: label.to_string(),
                nodes,
            }],
            Box::new(|_| Some(0)),
        )
    }

    /// The bin width.
    #[must_use]
    pub fn bin_width(&self) -> Duration {
        self.bin
    }

    /// The recorded bins, oldest first.
    #[must_use]
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Busy fraction of level `level` during bin `index`: accumulated
    /// node-busy time over the group's total node-time in the bin.
    #[must_use]
    pub fn busy_fraction(&self, index: usize, level: usize) -> f64 {
        let busy = self.bins[index].busy_ps.get(level).copied().unwrap_or(0);
        let capacity = self.bin.as_ps() * self.levels[level].nodes.max(1) as u64;
        busy as f64 / capacity as f64
    }

    fn bin_at(&mut self, at: Time) -> Option<usize> {
        let index = (at.as_ps() / self.bin.as_ps()) as usize;
        if index >= self.cap {
            return None;
        }
        while self.bins.len() <= index {
            // Bins between events inherit the running in-flight level.
            self.bins.push(Bin {
                in_flight: self.in_flight,
                busy_ps: vec![0; self.levels.len()],
                ..Bin::default()
            });
        }
        Some(index)
    }

    fn add_busy(&mut self, index: usize, node: N, busy: Duration) {
        if let Some(level) = (self.level_of)(node) {
            if let Some(slot) = self.bins[index].busy_ps.get_mut(level) {
                *slot += busy.as_ps();
            }
        }
    }

    /// Number of bins materialized so far (bins exist lazily, up to the
    /// latest event seen).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Returns `true` if no bins have been materialized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The level labels, in busy-fraction array order.
    #[must_use]
    pub fn level_labels(&self) -> Vec<String> {
        self.levels.iter().map(|l| l.label.clone()).collect()
    }

    /// Materializes every bin covering instants strictly before `at`
    /// (gap bins inherit the running in-flight level, exactly as a
    /// later event would create them). Streaming sinks call this at a
    /// window boundary so the bins below it are final and can be
    /// emitted; batch collectors never need it because the triggering
    /// event itself backfills the same bins.
    pub fn backfill_before(&mut self, at: Time) {
        if at == Time::ZERO {
            return;
        }
        let _ = self.bin_at(Time::from_ps(at.as_ps() - 1));
    }

    /// One bin's JSON object, exactly as it appears in the batch
    /// report's `bins` array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn bin_json(&self, index: usize) -> JsonValue {
        let bin = &self.bins[index];
        let busy: Vec<JsonValue> = (0..self.levels.len())
            .map(|level| JsonValue::Number(self.busy_fraction(index, level)))
            .collect();
        JsonValue::Object(vec![
            (
                "t_ps".to_string(),
                JsonValue::uint(index as u64 * self.bin.as_ps()),
            ),
            ("injected".to_string(), JsonValue::uint(bin.injected)),
            ("delivered".to_string(), JsonValue::uint(bin.delivered)),
            ("dropped".to_string(), JsonValue::uint(bin.dropped)),
            ("forwards".to_string(), JsonValue::uint(bin.forwards)),
            ("in_flight".to_string(), JsonValue::int(bin.in_flight)),
            ("busy_fraction".to_string(), JsonValue::Array(busy)),
        ])
    }

    /// The time-series section of the metrics report: bin width, level
    /// labels, and one object per bin with counters and per-level busy
    /// fractions.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let labels: Vec<JsonValue> = self
            .levels
            .iter()
            .map(|l| JsonValue::str(l.label.clone()))
            .collect();
        let bins: Vec<JsonValue> = (0..self.bins.len()).map(|i| self.bin_json(i)).collect();
        JsonValue::Object(vec![
            ("bin_ps".to_string(), JsonValue::uint(self.bin.as_ps())),
            ("levels".to_string(), JsonValue::Array(labels)),
            ("bins".to_string(), JsonValue::Array(bins)),
        ])
    }
}

impl<N: Copy> Observer<N> for TimeSeries<N> {
    fn on_event(&mut self, at: Time, _in_window: bool, event: &SimEvent<'_, N>) {
        let Some(index) = self.bin_at(at) else {
            return;
        };
        match event {
            SimEvent::Inject { .. } => {
                self.bins[index].injected += 1;
                self.in_flight += 1;
            }
            SimEvent::Forward {
                node, copies, busy, ..
            } => {
                self.bins[index].forwards += 1;
                // One input copy consumed, `copies` output copies launched.
                self.in_flight += i64::from(*copies) - 1;
                self.add_busy(index, *node, *busy);
            }
            SimEvent::Drop { node, busy, .. } => {
                self.bins[index].dropped += 1;
                self.in_flight -= 1;
                self.add_busy(index, *node, *busy);
            }
            SimEvent::Deliver { .. } => {
                self.bins[index].delivered += 1;
                self.in_flight -= 1;
            }
            // Fault hooks fire alongside the flit's normal lifecycle
            // events (a stalled launch still Arrives; a dropped header
            // was never Injected), so they move no in-flight tokens.
            SimEvent::Fault { .. } => {}
        }
        self.bins[index].in_flight = self.in_flight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use asynoc_packet::{DestSet, Flit, PacketDescriptor, PacketId, RouteHeader};

    fn flit() -> Flit {
        Flit::new(
            Arc::new(PacketDescriptor::new(
                PacketId::new(1),
                0,
                DestSet::unicast(1),
                RouteHeader::for_tree(8),
                1,
                Time::ZERO,
            )),
            0,
        )
    }

    fn series() -> TimeSeries<usize> {
        TimeSeries::single_level(Duration::from_ns(1), "nodes", 4)
    }

    #[test]
    fn events_land_in_their_bins_and_gaps_carry_in_flight() {
        let mut ts = series();
        let f = flit();
        ts.on_event(
            Time::from_ps(100),
            false,
            &SimEvent::Inject {
                source: 0,
                flit: &f,
            },
        );
        // Two empty bins pass, then delivery in bin 3.
        ts.on_event(
            Time::from_ps(3_500),
            true,
            &SimEvent::Deliver { dest: 1, flit: &f },
        );
        assert_eq!(ts.bins().len(), 4);
        assert_eq!(ts.bins()[0].injected, 1);
        assert_eq!(ts.bins()[0].in_flight, 1);
        assert_eq!(ts.bins()[1].in_flight, 1, "gap bins carry the level");
        assert_eq!(ts.bins()[2].in_flight, 1);
        assert_eq!(ts.bins()[3].delivered, 1);
        assert_eq!(ts.bins()[3].in_flight, 0);
    }

    #[test]
    fn replication_and_drops_move_in_flight() {
        let mut ts = series();
        let f = flit();
        ts.on_event(
            Time::from_ps(10),
            true,
            &SimEvent::Inject {
                source: 0,
                flit: &f,
            },
        );
        ts.on_event(
            Time::from_ps(20),
            true,
            &SimEvent::Forward {
                node: 0usize,
                flit: &f,
                info: asynoc_engine::ForwardInfo::Arbitrated { input: 0 },
                copies: 2,
                busy: Duration::from_ps(100),
            },
        );
        assert_eq!(ts.bins()[0].in_flight, 2, "a broadcast added a copy");
        ts.on_event(
            Time::from_ps(30),
            true,
            &SimEvent::Drop {
                node: 1usize,
                flit: &f,
                busy: Duration::from_ps(80),
            },
        );
        assert_eq!(ts.bins()[0].in_flight, 1, "the throttle removed it");
        assert_eq!(ts.bins()[0].dropped, 1);
        // 100 + 80 ps of busy over 4 nodes x 1000 ps.
        assert!((ts.busy_fraction(0, 0) - 180.0 / 4000.0).abs() < 1e-12);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut ts = series();
        let f = flit();
        ts.on_event(
            Time::from_ps(10),
            true,
            &SimEvent::Inject {
                source: 0,
                flit: &f,
            },
        );
        let json = ts.to_json();
        assert_eq!(json.get("bin_ps").and_then(JsonValue::as_f64), Some(1000.0));
        let bins = json.get("bins").and_then(JsonValue::as_array).unwrap();
        assert_eq!(bins.len(), 1);
        let busy = bins[0]
            .get("busy_fraction")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(busy.len(), 1);
    }
}
