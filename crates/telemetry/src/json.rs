//! A minimal JSON value tree, writer, and parser.
//!
//! The workspace is dependency-free, so the telemetry layer carries its own
//! JSON support: enough to render the metrics report and trace exports, and
//! to parse them back in tests (NDJSON round-trips, Chrome-trace validation,
//! golden schema diffs). Object keys keep insertion order so every render is
//! deterministic.

use std::error::Error;
use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are rendered without a decimal point).
    Number(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object, keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Wraps a string slice.
    #[must_use]
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Wraps an unsigned integer.
    #[must_use]
    pub fn uint(v: u64) -> JsonValue {
        JsonValue::Number(v as f64)
    }

    /// Wraps a signed integer.
    #[must_use]
    pub fn int(v: i64) -> JsonValue {
        JsonValue::Number(v as f64)
    }

    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders indented multi-line JSON (two-space indent).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Object(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (key, value) = &members[i];
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, d);
                });
            }
        }
    }

    /// Reduces the value to its *schema skeleton*: leaves become their type
    /// name, arrays keep only their first element's schema. Two reports with
    /// identical structure (but different measurements) have identical
    /// skeletons — the basis of the golden schema check in `scripts/check.sh`.
    #[must_use]
    pub fn schema(&self) -> JsonValue {
        match self {
            JsonValue::Null => JsonValue::str("null"),
            JsonValue::Bool(_) => JsonValue::str("bool"),
            JsonValue::Number(_) => JsonValue::str("number"),
            JsonValue::Str(_) => JsonValue::str("string"),
            JsonValue::Array(items) => {
                JsonValue::Array(items.first().map(JsonValue::schema).into_iter().collect())
            }
            JsonValue::Object(members) => JsonValue::Object(
                members
                    .iter()
                    .map(|(k, v)| (k.clone(), v.schema()))
                    .collect(),
            ),
        }
    }

    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest round-trip Display never uses exponent notation
        // in this range, so the output is always valid JSON.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Unpaired surrogates are replaced, not rejected:
                            // our own writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // boundary arithmetic is always valid).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let value = JsonValue::Object(vec![
            ("b".to_string(), JsonValue::uint(2)),
            ("a".to_string(), JsonValue::Array(vec![JsonValue::Null])),
        ]);
        assert_eq!(value.render(), r#"{"b":2,"a":[null]}"#);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::uint(52).render(), "52");
        assert_eq!(JsonValue::Number(0.25).render(), "0.25");
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}ü";
        let rendered = JsonValue::str(original).render();
        let parsed = JsonValue::parse(&rendered).expect("parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parse_round_trips_nested_documents() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x"}"#;
        let value = JsonValue::parse(text).expect("parses");
        assert_eq!(JsonValue::parse(&value.render()), Ok(value.clone()));
        assert_eq!(
            value.get("a").and_then(|a| a.as_array()).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            value.get("b").and_then(|b| b.get("c")),
            Some(&JsonValue::Bool(true))
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let value = JsonValue::Object(vec![(
            "xs".to_string(),
            JsonValue::Array(vec![JsonValue::uint(1), JsonValue::uint(2)]),
        )]);
        let pretty = value.render_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(JsonValue::parse(&pretty), Ok(value));
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in ["{", "[1,", "\"open", "tru", "{\"a\" 1}", "1 2"] {
            let err = JsonValue::parse(bad).expect_err(bad);
            assert!(err.at <= bad.len(), "{bad}: {err}");
        }
    }

    #[test]
    fn schema_skeleton_reduces_leaves_and_arrays() {
        let text = r#"{"n":3,"s":"x","xs":[{"a":1},{"a":2}],"empty":[]}"#;
        let schema = JsonValue::parse(text).expect("parses").schema();
        assert_eq!(
            schema.render(),
            r#"{"n":"number","s":"string","xs":[{"a":"number"}],"empty":[]}"#
        );
        // Same structure, different values: identical skeleton.
        let other = r#"{"n":99,"s":"y","xs":[{"a":7}],"empty":[]}"#;
        assert_eq!(JsonValue::parse(other).expect("parses").schema(), schema);
    }
}
